"""Design-choice ablation: sequential-analysis precision vs the PS-PDG gap.

DESIGN.md claims the PDG-vs-PS-PDG gap comes from declared parallel
semantics, not from sequential analysis precision.  This bench checks it:
we rebuild the PDG with the affine dependence tests disabled (every
subscript treated as unknown, maximally conservative) and verify the
PS-PDG's Fig. 14 advantage persists — the gap is robust to analysis
precision, because no precision recovers threadprivate buffers, orderless
criticals, or private arrays.
"""

import pytest

from repro import Session
from repro.analysis import subscripts


@pytest.fixture
def conservative_subscripts(monkeypatch):
    """Disable affine subscript extraction (all offsets unknown)."""
    monkeypatch.setattr(
        subscripts, "affine_offset", lambda pointer, ivs: None
    )
    # memdep imported the symbol directly; patch there too.
    from repro.analysis import memdep

    monkeypatch.setattr(memdep, "affine_offset", lambda pointer, ivs: None)


@pytest.mark.parametrize("name", ["IS", "MG"])
def test_gap_survives_conservative_analysis(
    name, conservative_subscripts, benchmark, capsys
):
    def run():
        # A fresh session per run: the patched analysis must flow into
        # the PDG build, so the shared cached sessions cannot be used.
        return Session.from_kernel(name).critical_paths()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[ablation: no affine tests] {name}: "
            f"PDG={results['PDG']['speedup']:.3f} "
            f"PS-PDG={results['PS-PDG']['speedup']:.3f}"
        )
    # Even with a maximally conservative sequential analysis, the
    # PS-PDG's declared semantics keep it at or above the source plan
    # and strictly above the PDG.
    assert results["PS-PDG"]["speedup"] >= 0.999
    assert (
        results["PS-PDG"]["speedup"] > results["PDG"]["speedup"]
    )
