"""Backend scaling sweep: workers x schedule x backend on the NAS kernels.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_scaling.py -q -s

``test_backend_scaling_table`` prints the full sweep;
``test_processes_beat_simulated_at_four_workers`` is the acceptance
check that real parallel execution pays off: at 4 workers, the
``processes`` backend must beat the ``simulated`` interleaver's
wall-clock on at least one NAS kernel (EP/FT-style kernels win by
roughly 1.5-2x even on one core, because the oracle pays a seeded
scheduler decision per dynamic instruction while pool workers run at
plain-interpreter speed).
"""

import time

import pytest

from repro.runtime import run_plan

#: Kernels swept: EP (flat parallel loop), IS (criticals + threadprivate),
#: FT/BT (many planned loops).  LU is deliberately included as the
#: adverse case for processes (many tiny regions, serialization-bound).
KERNELS = ("EP", "IS", "FT", "BT", "LU")
BACKENDS = ("simulated", "threads", "processes")
SCHEDULES = ("static", "dynamic", "guided")
WORKER_COUNTS = (1, 2, 4)
REPETITIONS = 3


def _best_of(session, plan, repetitions=REPETITIONS, **kwargs):
    best = None
    for _ in range(repetitions):
        started = time.perf_counter()
        run_plan(session.module, session.pspdg, plan, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


@pytest.fixture(scope="module")
def warm_pool(nas_sessions):
    """One throwaway processes run so pool startup isn't measured."""
    session = nas_sessions["EP"]
    run_plan(session.module, session.pspdg, session.plan("PS-PDG"),
             workers=2, backend="processes")


def test_backend_scaling_table(nas_sessions, warm_pool):
    print()
    header = (
        f"{'kernel':7} {'backend':10} {'schedule':8} "
        + " ".join(f"W={w:>5}" for w in WORKER_COUNTS)
    )
    print(header)
    print("-" * len(header))
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plan = session.plan("PS-PDG")
        for backend in BACKENDS:
            for schedule in SCHEDULES:
                cells = []
                for workers in WORKER_COUNTS:
                    seconds = _best_of(
                        session, plan, repetitions=1,
                        workers=workers, backend=backend,
                        schedule=schedule,
                    )
                    cells.append(f"{seconds * 1000:6.1f}ms")
                print(
                    f"{kernel:7} {backend:10} {schedule:8} "
                    + " ".join(cells)
                )


def test_processes_beat_simulated_at_four_workers(nas_sessions, warm_pool):
    wins = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plan = session.plan("PS-PDG")
        simulated = _best_of(session, plan, workers=4, backend="simulated")
        processes = _best_of(session, plan, workers=4, backend="processes")
        wins[kernel] = (processes, simulated)
        print(
            f"{kernel}: processes {processes * 1000:.1f}ms vs "
            f"simulated {simulated * 1000:.1f}ms "
            f"({'WIN' if processes < simulated else 'loss'})"
        )
    assert any(
        processes < simulated for processes, simulated in wins.values()
    ), f"processes never beat simulated at 4 workers: {wins}"


def test_threads_beat_simulated_somewhere(nas_sessions, warm_pool):
    """Shared-memory real threads must beat the stepping oracle.

    Locally threads win on every kernel by ~2x; the assertion only
    demands one win so that CPU-steal spikes on shared CI runners
    cannot turn an environment hiccup into a red build.
    """
    wins = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plan = session.plan("PS-PDG")
        simulated = _best_of(session, plan, workers=4, backend="simulated")
        threads = _best_of(session, plan, workers=4, backend="threads")
        wins[kernel] = (threads, simulated)
    assert any(
        threads < simulated for threads, simulated in wins.values()
    ), f"threads never beat simulated at 4 workers: {wins}"
