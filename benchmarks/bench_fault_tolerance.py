"""Fault-tolerance gate: supervision overhead and crash recovery on LU.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_tolerance.py -q -s

The supervised dispatch path (``REPRO_SUPERVISE``) wraps every
processes-backend region in the retry loop: fault-plan consultation,
infra/program failure classification, and the recovery bookkeeping.  On
a fault-free run all of that must be near-free — the region payloads and
worker execution are untouched — so the gate pins the supervised
wall-clock to within **5%** of the legacy fail-fast path on the
sequential-heavy LU kernel at ``-O2`` (best-of-N on a warm pool).

The crash-recovery row then injects a deterministic worker crash
(``crash:region=0:worker=0``) and asserts the supervised run recovers to
**byte-identical** output with the recovery visible in the region stats
(``retries``/``faults_injected``/``recovery_ms``).

Rows land in ``BENCH_fault_tolerance.json``; ``seconds`` is report-only
in the baseline gate (CI machines vary), the 5% overhead gate is
enforced here where both measurements share one machine.
"""

import statistics
import time

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.runtime import backends, faults, knobs, run_plan

KERNEL = "LU"
BACKEND = "processes"
WORKERS = 4
REPETITIONS = 10
OVERHEAD_GATE = 1.05
CRASH_SPEC = "crash:region=0:worker=0"


@pytest.fixture(scope="module")
def monkeypatch_module():
    patcher = pytest.MonkeyPatch()
    yield patcher
    patcher.undo()


@pytest.fixture(scope="module")
def lu_plan(nas_sessions):
    session = nas_sessions[KERNEL]
    return optimize_plan(
        session.function, session.module, session.pdg,
        session.pspdg, session.plan("PS-PDG"), OptLevel.O2,
    ).plan


def _run(session, plan):
    return run_plan(
        session.module, session.pspdg, plan,
        workers=WORKERS, backend=BACKEND,
    )


def _measure_interleaved(session, plan, repetitions=REPETITIONS):
    """Per-rep paired timings, modes alternated run by run.

    Interleaving makes the comparison differential: CPU frequency
    drift, cache state, and the pool's region-dispatch age hit both
    modes equally instead of whichever phase ran second.  The overhead
    estimate is the *median of the paired per-rep ratios* — LU's
    per-region thread pools make any single run's wall-clock noisy
    (±7% locally), so a best-of floor comparison across modes is an
    unstable estimator while the paired median converges quickly.
    """
    times = {"unsupervised": [], "supervised": []}
    last = {"unsupervised": None, "supervised": None}
    for _ in range(repetitions):
        for mode, supervise in (("unsupervised", False),
                                ("supervised", True)):
            knobs.REPRO_SUPERVISE.value = supervise
            started = time.perf_counter()
            last[mode] = _run(session, plan)
            times[mode].append(time.perf_counter() - started)
    knobs.REPRO_SUPERVISE.refresh()
    ratios = sorted(
        on / off
        for on, off in zip(times["supervised"], times["unsupervised"])
    )
    overhead = statistics.median(ratios)
    best = {mode: min(series) for mode, series in times.items()}
    return best, overhead, last


@pytest.fixture(scope="module")
def fault_rows(nas_sessions, lu_plan, monkeypatch_module):
    session = nas_sessions[KERNEL]
    identity = {
        "kernel": KERNEL, "backend": BACKEND, "opt": "-O2",
        "workers": WORKERS,
    }
    rows = []

    knobs.refresh()
    faults.reset()
    # A mid-measurement pool recycle is a fork-and-rebroadcast spike
    # attributed to whichever mode drew it; park it out of range.
    monkeypatch_module.setattr(
        backends, "POOL_RECYCLE_REGIONS", 1_000_000
    )
    backends._reset_chunk_pool()
    _run(session, lu_plan)  # warm the chunk pool out of the timings

    best, overhead, last = _measure_interleaved(session, lu_plan)
    baseline = last["unsupervised"]
    rows.append(dict(
        identity, mode="unsupervised", seconds=best["unsupervised"],
    ))
    rows.append(dict(
        identity, mode="supervised", seconds=best["supervised"],
        overhead=overhead,
    ))

    faults.reset()
    knobs.REPRO_FAULTS.value = CRASH_SPEC
    started = time.perf_counter()
    recovered = _run(session, lu_plan)
    crash_seconds = time.perf_counter() - started
    knobs.refresh()
    faults.reset()
    backends._reset_chunk_pool()
    rows.append(dict(
        identity, mode="crash_recovery", seconds=crash_seconds,
        retries=sum(r["retries"] for r in recovered.parallel_regions),
        faults_injected=sum(
            r["faults_injected"] for r in recovered.parallel_regions
        ),
        recovery_ms=sum(
            r["recovery_ms"] for r in recovered.parallel_regions
        ),
        identical=recovered.output == baseline.output,
    ))
    return rows, baseline, recovered


def test_fault_tolerance_table(fault_rows, bench_json):
    rows, _baseline, _recovered = fault_rows
    path = bench_json("fault_tolerance", rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'mode':16} {'seconds':>9} {'overhead':>9} "
        f"{'rtry':>5} {'flt':>4} {'rec-ms':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        overhead = (f"{row['overhead']:>8.3f}x"
                    if "overhead" in row else f"{'':9}")
        print(
            f"{row['kernel']:7} {row['mode']:16} {row['seconds']:>9.4f} "
            f"{overhead} {row.get('retries', ''):>5} "
            f"{row.get('faults_injected', ''):>4} "
            f"{row.get('recovery_ms', 0.0):>8.2f}"
        )


def test_supervision_overhead_within_gate(fault_rows):
    """Fault-free supervised dispatch costs at most 5% over legacy."""
    rows, _baseline, _recovered = fault_rows
    by_mode = {row["mode"]: row for row in rows}
    overhead = by_mode["supervised"]["overhead"]
    print(
        f"\n{KERNEL} -O2 {BACKEND} W={WORKERS}: unsupervised best "
        f"{by_mode['unsupervised']['seconds'] * 1000:.1f}ms, supervised "
        f"best {by_mode['supervised']['seconds'] * 1000:.1f}ms, paired "
        f"median overhead {overhead:.3f}x"
    )
    assert overhead <= OVERHEAD_GATE, (
        f"supervised dispatch {overhead:.3f}x slower than fail-fast "
        f"(paired median of {REPETITIONS} reps) — gate is "
        f"{OVERHEAD_GATE}x"
    )


def test_crash_recovery_is_byte_identical(fault_rows):
    """The injected crash recovers exactly, and the stats prove it ran."""
    rows, baseline, recovered = fault_rows
    assert recovered.output == baseline.output
    crash = next(row for row in rows if row["mode"] == "crash_recovery")
    assert crash["identical"] is True
    assert crash["retries"] >= 1
    assert crash["faults_injected"] >= 1
    assert crash["recovery_ms"] > 0
