"""Fig. 11 — the necessity ablations as a measured experiment.

For each PS-PDG feature, the fast/slow program pair is compiled, both
PS-PDGs built, and the full and feature-ablated canonical signatures
compared.  The bench measures the end-to-end demonstration and asserts the
paper's result: full representations differ, ablated ones collapse.
"""

import pytest

from repro.workloads import PAIRS
from repro.workloads.necessity import demonstrate


@pytest.mark.parametrize("pair", PAIRS, ids=[p.key for p in PAIRS])
def test_fig11_necessity(pair, benchmark, capsys):
    full_equal, reduced_equal = benchmark.pedantic(
        demonstrate, args=(pair,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(
            f"\n[Fig 11-{pair.key}] {pair.feature}: "
            f"full_equal={full_equal} reduced_equal={reduced_equal}"
        )
    assert not full_equal
    assert reduced_equal
