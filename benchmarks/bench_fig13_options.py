"""Fig. 13 — parallelization options available to the compiler.

Regenerates the paper's bar chart as a table: per NAS benchmark, the total
number of parallelization options under OpenMP-as-written, PDG, J&K, and
PS-PDG on the 56-core/8-chunk machine model.  The assertions pin the
figure's qualitative shape; the printed rows are the series.
"""

import pytest

from repro.planner import format_fig13_row
from repro.workloads import kernel_names

_ORDER = ["OpenMP", "PDG", "J&K", "PS-PDG"]


@pytest.mark.parametrize("name", kernel_names())
def test_fig13_rows(nas_sessions, name, benchmark, capsys):
    session = nas_sessions[name]
    report = benchmark.pedantic(session.options, rounds=1, iterations=1)
    row = format_fig13_row(report)
    with capsys.disabled():
        cells = " ".join(f"{k}={row[k]:>6}" for k in _ORDER)
        print(f"\n[Fig 13] {name:4} {cells}")

    # Shape assertions (who wins):
    assert row["PS-PDG"] >= row["J&K"] >= 0
    assert row["PS-PDG"] >= row["PDG"]
    assert row["PS-PDG"] >= row["OpenMP"]
    if name == "EP":
        # Paper: "for benchmarks with few loops which are parallelized
        # well by the programmer (e.g., EP), the increase in options
        # stays low."
        assert row["PS-PDG"] == row["OpenMP"]
    if name == "MG":
        # Paper: workshare-improved dependence analysis is insufficient
        # to match the PS-PDG on MG.
        assert row["PS-PDG"] > row["J&K"]
