"""Fig. 14 — critical-path reduction over OpenMP on an ideal machine.

Regenerates the paper's log-scale series: per NAS benchmark, the ratio of
the OpenMP plan's critical path to the best plan each abstraction (PDG,
J&K, PS-PDG) can select.  Shape assertions pin who wins and where the
crossovers fall; the printed rows are the series.
"""

import pytest

from repro.planner import format_fig14_row
from repro.workloads import kernel_names

_ORDER = ["PDG", "J&K", "PS-PDG"]


@pytest.mark.parametrize("name", kernel_names())
def test_fig14_rows(nas_sessions, name, benchmark, capsys):
    session = nas_sessions[name]
    results = benchmark.pedantic(
        session.critical_paths, rounds=1, iterations=1
    )
    row = format_fig14_row(results)
    with capsys.disabled():
        cells = " ".join(f"{k}={row[k]:>8.3f}" for k in _ORDER)
        print(f"\n[Fig 14] {name:4} {cells}")

    # The PS-PDG never loses programmer-expressed parallelism.
    assert row["PS-PDG"] >= 0.999
    # And dominates the weaker abstractions.
    assert row["PS-PDG"] >= row["J&K"] - 1e-9
    assert row["PS-PDG"] >= row["PDG"] - 1e-9
    if name == "EP":
        assert row["PDG"] == pytest.approx(1.0, rel=0.05)
    if name in ("IS", "MG", "SP", "BT", "FT", "LU"):
        # Outer-loop-only PDG planning falls below the source plan on
        # benchmarks whose hot loops are inner.
        assert row["PDG"] < 1.0
    if name in ("IS", "MG"):
        assert row["PS-PDG"] > row["J&K"]
