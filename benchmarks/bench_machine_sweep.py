"""Ablation: Fig. 13 option counts as a function of the machine model.

The paper fixes a 56-core machine with 8 chunk sizes; this sweep verifies
the enumeration scales the way §6.2's formulas dictate (linearly in cores
for DOALL/HELIX, capped stages for DSWP) and that the abstraction ordering
(PS-PDG >= J&K >= PDG) is machine-independent.  Each machine re-enumerates
options against the *same* cached graphs — only the ``options`` stage of
every session reruns.
"""

import pytest

from repro.planner import MachineModel
from repro.workloads import kernel_names

MACHINES = {
    "8-core": MachineModel(cores=8, chunk_sizes=(1, 2, 4, 8)),
    "56-core": MachineModel(),
    "192-core": MachineModel(
        cores=192, chunk_sizes=(1, 2, 4, 8, 16, 32, 64, 128)
    ),
}


@pytest.mark.parametrize("machine_name", list(MACHINES))
def test_option_scaling(nas_sessions, machine_name, benchmark, capsys):
    machine = MACHINES[machine_name]

    def sweep():
        return {
            name: nas_sessions[name].options(machine).totals
            for name in kernel_names()
        }

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        total_pspdg = sum(t["PS-PDG"] for t in totals.values())
        print(
            f"\n[machine sweep] {machine_name}: "
            f"sum(PS-PDG options)={total_pspdg}"
        )
    for name, row in totals.items():
        assert row["PS-PDG"] >= row["J&K"], (machine_name, name)
        assert row["PS-PDG"] >= row["PDG"], (machine_name, name)


def test_doall_options_linear_in_cores(nas_sessions):
    ep = nas_sessions["EP"]
    small = ep.options(MachineModel(cores=7, chunk_sizes=(1, 2))).totals
    large = ep.options(MachineModel(cores=14, chunk_sizes=(1, 2))).totals
    # EP is one DOALL loop: options = cores x chunks exactly.
    assert small["PS-PDG"] == 14
    assert large["PS-PDG"] == 28


def test_machine_sweep_reuses_graphs(nas_sessions):
    """The sweep's whole point: no graph stage reruns across machines."""
    session = nas_sessions["EP"]
    session.options(MACHINES["8-core"])
    session.options(MACHINES["192-core"])
    assert session.diagnostics.runs("pspdg") == 1
    assert session.diagnostics.runs("pdg") == 1
    assert session.diagnostics.runs("profile") == 1
