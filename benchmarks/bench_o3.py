"""``-O3`` gate: LU and SP on the ``processes`` backend, ``-O2`` vs ``-O3``.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_o3.py -q -s

The two kernels exercise the two ways the ``-O3`` tier pays off:

* **SP** — three trip-20 DOALL regions whose per-worker chunks are far
  below the machine model's efficient grain.  Tiling caps each dispatch
  at ``ceil(trip / tile)`` partitions, so at 8 workers the region ships
  fewer, fatter payloads.
* **LU** — the SSOR wavefront.  Interchange speculates on the
  non-affine anti-diagonal subscript, the oracle vetoes it (the
  dependence really is carried), and the reverted inner loop must then
  be serialized exactly as ``-O2`` would — while the surviving regions
  tile.  ``-O3`` must keep LU's ``-O2`` serialization win *and* add the
  tiling win on top.

The payload-count assertions are the deterministic gate; wall-clock is
recorded for the trajectory file but asserted only with a generous
tolerance (``-O3`` must not be measurably slower).
"""

import time

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.runtime import run_plan

KERNELS = ("LU", "SP")
LEVELS = (OptLevel.O2, OptLevel.O3)
WORKERS = 8
REPETITIONS = 3


@pytest.fixture(scope="module")
def opt_plans(nas_sessions):
    """kernel -> {level -> optimized PS-PDG plan}."""
    plans = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plan = session.plan("PS-PDG")
        plans[kernel] = {
            level: optimize_plan(
                session.function, session.module, session.pdg,
                session.pspdg, plan, level, loops=session.loops,
            ).plan
            for level in LEVELS
        }
    return plans


@pytest.fixture(scope="module")
def warm_pool(nas_sessions):
    """One throwaway processes run so pool startup isn't measured."""
    session = nas_sessions["EP"]
    run_plan(session.module, session.pspdg, session.plan("PS-PDG"),
             workers=2, backend="processes")


def _measure(session, plan, repetitions=REPETITIONS):
    """(payloads, payload bytes, best wall-clock) on ``processes``."""
    payloads = None
    payload_bytes = None
    best = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = run_plan(
            session.module, session.pspdg, plan,
            workers=WORKERS, backend="processes",
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        payloads = sum(
            region["payloads"] for region in result.parallel_regions
        )
        payload_bytes = sum(
            region["payload_bytes"] for region in result.parallel_regions
        )
    return payloads, payload_bytes, best


def test_o3_table(nas_sessions, opt_plans, warm_pool, bench_json):
    print()
    header = (
        f"{'kernel':7} "
        + " ".join(f"{level.flag + ' payloads':>12}" for level in LEVELS)
        + " "
        + " ".join(f"{level.flag + ' bytes':>11}" for level in LEVELS)
        + " "
        + " ".join(f"{level.flag + ' time':>11}" for level in LEVELS)
    )
    print(header)
    print("-" * len(header))
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        row = {
            level: _measure(session, opt_plans[kernel][level])
            for level in LEVELS
        }
        for level in LEVELS:
            payloads, payload_bytes, seconds = row[level]
            rows.append({
                "kernel": kernel,
                "backend": "processes",
                "opt": level.flag,
                "workers": WORKERS,
                "payloads": payloads,
                "payload_bytes": payload_bytes,
                "seconds": seconds,
            })
        print(
            f"{kernel:7} "
            + " ".join(f"{row[level][0]:>12}" for level in LEVELS)
            + " "
            + " ".join(f"{row[level][1]:>11}" for level in LEVELS)
            + " "
            + " ".join(
                f"{row[level][2] * 1000:>9.1f}ms" for level in LEVELS
            )
        )
    path = bench_json("o3", rows)
    print(f"wrote {path}")


def test_o3_beats_o2_on_lu_and_sp(nas_sessions, opt_plans, warm_pool):
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        payloads_o2, bytes_o2, seconds_o2 = _measure(
            session, opt_plans[kernel][OptLevel.O2]
        )
        payloads_o3, bytes_o3, seconds_o3 = _measure(
            session, opt_plans[kernel][OptLevel.O3]
        )
        print(
            f"\n{kernel} processes W={WORKERS}: "
            f"-O2 {payloads_o2} payloads / {bytes_o2} B / "
            f"{seconds_o2 * 1000:.1f}ms, "
            f"-O3 {payloads_o3} payloads / {bytes_o3} B / "
            f"{seconds_o3 * 1000:.1f}ms"
        )
        # The deterministic gate: tiling must cut the dispatch count
        # (at 8 workers every trip-20 region drops from 8 chunks to
        # ceil(20/tile)), and the wire must carry fewer bytes with it.
        assert payloads_o3 < payloads_o2, (
            f"{kernel}: -O3 ships {payloads_o3} payloads vs "
            f"-O2's {payloads_o2}"
        )
        assert bytes_o3 < bytes_o2, (
            f"{kernel}: -O3 ships {bytes_o3} B vs -O2's {bytes_o2} B"
        )
        # Wall-clock must not regress; generous tolerance so CI noise
        # cannot flake it (locally -O3 wins outright on both kernels).
        assert seconds_o3 <= seconds_o2 * 1.25, (
            f"{kernel}: -O3 slower than -O2: "
            f"{seconds_o3:.4f}s vs {seconds_o2:.4f}s"
        )


def test_results_identical_across_levels(nas_sessions, opt_plans):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
    from support.conformance import outputs_close

    for kernel in KERNELS:
        session = nas_sessions[kernel]
        expected = session.execution.output
        for level in LEVELS:
            result = run_plan(
                session.module, session.pspdg, opt_plans[kernel][level],
                workers=WORKERS, backend="processes",
            )
            assert outputs_close(result.output, expected), (kernel, level)
