"""Optimization-level gate: LU on the ``processes`` backend.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_opt_levels.py -q -s

LU is the roadmap's adverse case for real process execution: its SSOR
wavefront dispatches 72 tiny (18-iteration) inner regions per run, each
paying per-worker frame pickling.  The ``-O2`` pipeline serializes those
regions (and reroutes the remaining small ones off the pool), so the
acceptance check demands that at ``-O2`` LU dispatches *measurably*
fewer process-pool payloads than ``-O0`` — and is no slower doing it.
``test_opt_levels_table`` prints the full payload/wall-clock sweep.
"""

import time

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.runtime import run_plan

KERNELS = ("LU", "IS", "CG", "EP")
LEVELS = (OptLevel.O0, OptLevel.O2)
WORKERS = 4
REPETITIONS = 3


@pytest.fixture(scope="module")
def opt_plans(nas_sessions):
    """kernel -> {level -> optimized PS-PDG plan}."""
    plans = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plan = session.plan("PS-PDG")
        plans[kernel] = {
            level: optimize_plan(
                session.function, session.module, session.pdg,
                session.pspdg, plan, level,
            ).plan
            for level in LEVELS
        }
    return plans


@pytest.fixture(scope="module")
def warm_pool(nas_sessions):
    """One throwaway processes run so pool startup isn't measured."""
    session = nas_sessions["EP"]
    run_plan(session.module, session.pspdg, session.plan("PS-PDG"),
             workers=2, backend="processes")


def _measure(session, plan, repetitions=REPETITIONS):
    """(payloads, payload bytes, best wall-clock) on ``processes``."""
    payloads = None
    payload_bytes = None
    best = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = run_plan(
            session.module, session.pspdg, plan,
            workers=WORKERS, backend="processes",
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        payloads = sum(
            region["payloads"] for region in result.parallel_regions
        )
        payload_bytes = sum(
            region["payload_bytes"] for region in result.parallel_regions
        )
    return payloads, payload_bytes, best


def test_opt_levels_table(nas_sessions, opt_plans, warm_pool, bench_json):
    print()
    header = (
        f"{'kernel':7} "
        + " ".join(f"{level.flag + ' payloads':>12}" for level in LEVELS)
        + " "
        + " ".join(f"{level.flag + ' bytes':>11}" for level in LEVELS)
        + " "
        + " ".join(f"{level.flag + ' time':>11}" for level in LEVELS)
    )
    print(header)
    print("-" * len(header))
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        row = {
            level: _measure(session, opt_plans[kernel][level],
                            repetitions=1)
            for level in LEVELS
        }
        for level in LEVELS:
            payloads, payload_bytes, seconds = row[level]
            rows.append({
                "kernel": kernel,
                "backend": "processes",
                "opt": level.flag,
                "workers": WORKERS,
                "payloads": payloads,
                "payload_bytes": payload_bytes,
                "seconds": seconds,
            })
        print(
            f"{kernel:7} "
            + " ".join(f"{row[level][0]:>12}" for level in LEVELS)
            + " "
            + " ".join(f"{row[level][1]:>11}" for level in LEVELS)
            + " "
            + " ".join(
                f"{row[level][2] * 1000:>9.1f}ms" for level in LEVELS
            )
        )
    path = bench_json("opt_levels", rows)
    print(f"wrote {path}")


def test_lu_o2_dispatches_fewer_payloads_and_is_no_slower(
    nas_sessions, opt_plans, warm_pool
):
    session = nas_sessions["LU"]
    payloads_o0, bytes_o0, seconds_o0 = _measure(
        session, opt_plans["LU"][OptLevel.O0]
    )
    payloads_o2, bytes_o2, seconds_o2 = _measure(
        session, opt_plans["LU"][OptLevel.O2]
    )
    print(
        f"\nLU processes W={WORKERS}: "
        f"-O0 {payloads_o0} payloads / {bytes_o0} B / "
        f"{seconds_o0 * 1000:.1f}ms, "
        f"-O2 {payloads_o2} payloads / {bytes_o2} B / "
        f"{seconds_o2 * 1000:.1f}ms"
    )
    # "Measurably fewer": at least half the dispatches must be gone
    # (in practice -O2 removes the 72 wavefront regions entirely and
    # reroutes the small remainder, cutting payloads by >90%).
    assert payloads_o2 <= payloads_o0 // 2, (
        f"-O2 still dispatches {payloads_o2} of {payloads_o0} payloads"
    )
    # And wall-clock no worse.  The payload count above is the
    # deterministic gate; this timing check gets a 25% tolerance so
    # noisy-neighbor spikes on shared CI runners cannot flake it (-O2
    # wins by ~4x locally, far outside the tolerance).
    assert seconds_o2 <= seconds_o0 * 1.25, (
        f"-O2 slower than -O0: {seconds_o2:.4f}s vs {seconds_o0:.4f}s"
    )


def test_results_identical_across_levels(nas_sessions, opt_plans):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
    from support.conformance import outputs_close

    for kernel in KERNELS:
        session = nas_sessions[kernel]
        expected = session.execution.output
        for level in LEVELS:
            result = run_plan(
                session.module, session.pspdg, opt_plans[kernel][level],
                workers=WORKERS, backend="processes",
            )
            assert outputs_close(result.output, expected), (kernel, level)
