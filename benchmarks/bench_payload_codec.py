"""Payload codec gates: bytes-on-wire vs the naive and v1 encodings.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_payload_codec.py -q -s

The seed's ``processes`` backend shipped every worker one
self-contained ``pickle.dumps(dict)`` — module, full shared storage,
frame — per dispatch.  Wire format v1 (PR 4) replaced that with one
shared prelude per region plus per-worker memo deltas, and shipped the
module's bytes at most once per pool epoch.  Wire format v2 (this
codec) keeps the decoded shared state *resident* in the pool workers
and ships dirty-slot deltas between dispatches.

Two acceptance gates, both on LU and CG at ``-O0`` with 4 workers (the
roadmap's serialization-bound cases: many small dispatches):

* the codec puts **at most half** the naive bytes on the wire, and
* warm regions (pool workers hold the stream resident) ship **at most
  a third** of what full-state-per-region (the v1-equivalent
  ``RESIDENT_PRELUDE=0`` mode) ships.

The table rows land in ``BENCH_payload_codec.json`` (schema-stamped)
so the trajectory is tracked — and regression-gated against
``benchmarks/baselines/`` — across PRs.
"""

import time

import pytest

from repro import Session
from repro.runtime import backends, run_plan
from repro.runtime import payload as payload_codec

KERNELS = ("LU", "CG", "IS", "MG", "EP")
GATED = ("LU", "CG")
WORKERS = 4
REPETITIONS = 3


@pytest.fixture(scope="module", autouse=True)
def fresh_codec_state():
    """Cold codec caches so module broadcasts are measured, not elided."""
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    yield
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()


@pytest.fixture(scope="module")
def warm_pool(nas_sessions):
    """One throwaway processes run so pool startup isn't timed."""
    session = nas_sessions["EP"]
    run_plan(session.module, session.pspdg, session.plan("PS-PDG"),
             workers=2, backend="processes")


def _bytes_run(session):
    """One -O0 processes run with naive-bytes measurement enabled."""
    payload_codec.MEASURE_NAIVE = True
    try:
        result = run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
    finally:
        payload_codec.MEASURE_NAIVE = False
    regions = result.parallel_regions
    return {
        "payloads": sum(r["payloads"] for r in regions),
        "payload_bytes": sum(r["payload_bytes"] for r in regions),
        "naive_payload_bytes": sum(
            r["naive_payload_bytes"] for r in regions
        ),
        "dirty_slots": sum(r["dirty_slots"] for r in regions),
    }


def _timed_run(session, repetitions=REPETITIONS):
    best = None
    for _ in range(repetitions):
        started = time.perf_counter()
        run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _warm_run_bytes(kernel, resident):
    """Warm-run wire bytes with the resident protocol on or off.

    Cold pool and codec caches, one priming run (cold stream + module
    broadcast), then the measured run: with ``resident`` every region
    rides the resident path (the session's codec hands the stream over
    across runs); without it every region re-ships the full state —
    the v1-equivalent wire cost.
    """
    previous = payload_codec.RESIDENT_PRELUDE
    payload_codec.RESIDENT_PRELUDE = resident
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    try:
        session = Session.from_kernel(kernel)
        session.run("PS-PDG", workers=WORKERS, backend="processes")
        result = session.run("PS-PDG", workers=WORKERS, backend="processes")
        regions = result.parallel_regions
        total = sum(r["payload_bytes"] for r in regions)
        retried = sum(r["retry_payload_bytes"] for r in regions)
        return {
            # The gated metric excludes miss-retry round-trips: how
            # often pool scheduling let a worker fall behind is machine
            # timing, not a property of the wire format.
            "payload_bytes": total - retried,
            "retried_payload_bytes": retried,
            "payloads": sum(r["payloads"] for r in regions),
            "prelude_hits": sum(r["prelude_hits"] for r in regions),
            "prelude_misses": sum(r["prelude_misses"] for r in regions),
            "prelude_bytes_saved": sum(
                r["prelude_bytes_saved"] for r in regions
            ),
        }
    finally:
        payload_codec.RESIDENT_PRELUDE = previous
        backends._reset_chunk_pool()
        payload_codec.reset_codec_caches()


@pytest.fixture(scope="module")
def codec_rows(nas_sessions, warm_pool):
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        row = {
            "kernel": kernel,
            "backend": "processes",
            "opt": "-O0",
            "workers": WORKERS,
            "mode": "naive-vs-codec",
        }
        row.update(_bytes_run(session))
        row["seconds"] = _timed_run(session)
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def warm_rows():
    rows = []
    for kernel in GATED:
        for resident in (True, False):
            row = {
                "kernel": kernel,
                "backend": "processes",
                "opt": "-O0",
                "workers": WORKERS,
                "mode": "warm-resident" if resident else "warm-full",
            }
            row.update(_warm_run_bytes(kernel, resident))
            rows.append(row)
    return rows


def test_payload_codec_table(codec_rows, warm_rows, bench_json):
    path = bench_json("payload_codec", codec_rows + warm_rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'payloads':>8} {'bytes':>10} {'naive':>10} "
        f"{'ratio':>6} {'dirty':>6} {'seconds':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in codec_rows:
        ratio = row["naive_payload_bytes"] / max(row["payload_bytes"], 1)
        print(
            f"{row['kernel']:7} {row['payloads']:>8} "
            f"{row['payload_bytes']:>10} {row['naive_payload_bytes']:>10} "
            f"{ratio:>5.1f}x {row['dirty_slots']:>6} "
            f"{row['seconds']:>9.4f}"
        )
    header = (
        f"{'kernel':7} {'mode':14} {'bytes':>10} {'payloads':>8} "
        f"{'phit':>5} {'pmiss':>5} {'saved':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in warm_rows:
        print(
            f"{row['kernel']:7} {row['mode']:14} "
            f"{row['payload_bytes']:>10} {row['payloads']:>8} "
            f"{row['prelude_hits']:>5} {row['prelude_misses']:>5} "
            f"{row['prelude_bytes_saved']:>10}"
        )


def test_lu_and_cg_ship_at_most_half_the_naive_bytes(codec_rows):
    by_kernel = {row["kernel"]: row for row in codec_rows}
    for kernel in GATED:
        row = by_kernel[kernel]
        assert row["payload_bytes"] * 2 <= row["naive_payload_bytes"], (
            f"{kernel}: codec ships {row['payload_bytes']} of "
            f"{row['naive_payload_bytes']} naive bytes — less than a "
            f"2x reduction"
        )


def test_warm_regions_ship_at_most_a_third_of_full_state(warm_rows):
    """The resident-prelude acceptance gate: on warm LU/CG runs the
    dirty-delta wire must be <= 1/3 of full-state-per-region (v1)."""
    by_key = {(row["kernel"], row["mode"]): row for row in warm_rows}
    for kernel in GATED:
        resident = by_key[(kernel, "warm-resident")]["payload_bytes"]
        full = by_key[(kernel, "warm-full")]["payload_bytes"]
        assert resident * 3 <= full, (
            f"{kernel}: resident path ships {resident} bytes on a warm "
            f"run vs {full} full-state bytes — less than a 3x reduction"
        )


def test_steady_state_regions_ship_no_module_bytes(nas_sessions):
    """After the broadcast, a whole run's wire carries only deltas:
    re-running CG must ship strictly fewer bytes than its first
    (broadcasting) run, by at least the module's size."""
    session = nas_sessions["CG"]
    codec = payload_codec.module_codec(session.module)

    def run_bytes():
        result = run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
        return sum(r["payload_bytes"] for r in result.parallel_regions)

    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    first = run_bytes()
    second = run_bytes()
    assert first >= second + len(codec.module_bytes)
