"""Payload codec gate: bytes-on-wire vs the seed's naive encoding.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_payload_codec.py -q -s

The seed's ``processes`` backend shipped every worker one
self-contained ``pickle.dumps(dict)`` — module, full shared storage,
frame — per dispatch.  The payload codec replaces that with one shared
prelude per region plus per-worker memo deltas, and ships the module's
bytes at most once per pool epoch.  The acceptance gate demands that LU
and CG at ``-O0`` (the roadmap's serialization-bound cases: many small
dispatches) put **at most half** the naive bytes on the wire, with
wall-clock no worse; the table rows land in ``BENCH_payload_codec.json``
so the trajectory is tracked across PRs.
"""

import time

import pytest

from repro.runtime import backends, run_plan
from repro.runtime import payload as payload_codec

KERNELS = ("LU", "CG", "IS", "MG", "EP")
GATED = ("LU", "CG")
WORKERS = 4
REPETITIONS = 3


@pytest.fixture(scope="module", autouse=True)
def fresh_codec_state():
    """Cold codec caches so module broadcasts are measured, not elided."""
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    yield
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()


@pytest.fixture(scope="module")
def warm_pool(nas_sessions):
    """One throwaway processes run so pool startup isn't timed."""
    session = nas_sessions["EP"]
    run_plan(session.module, session.pspdg, session.plan("PS-PDG"),
             workers=2, backend="processes")


def _bytes_run(session):
    """One -O0 processes run with naive-bytes measurement enabled."""
    payload_codec.MEASURE_NAIVE = True
    try:
        result = run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
    finally:
        payload_codec.MEASURE_NAIVE = False
    regions = result.parallel_regions
    return {
        "payloads": sum(r["payloads"] for r in regions),
        "payload_bytes": sum(r["payload_bytes"] for r in regions),
        "naive_payload_bytes": sum(
            r["naive_payload_bytes"] for r in regions
        ),
        "dirty_slots": sum(r["dirty_slots"] for r in regions),
    }


def _timed_run(session, repetitions=REPETITIONS):
    best = None
    for _ in range(repetitions):
        started = time.perf_counter()
        run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


@pytest.fixture(scope="module")
def codec_rows(nas_sessions, warm_pool):
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        row = {
            "kernel": kernel,
            "backend": "processes",
            "opt": "-O0",
            "workers": WORKERS,
        }
        row.update(_bytes_run(session))
        row["seconds"] = _timed_run(session)
        rows.append(row)
    return rows


def test_payload_codec_table(codec_rows, bench_json):
    path = bench_json("payload_codec", codec_rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'payloads':>8} {'bytes':>10} {'naive':>10} "
        f"{'ratio':>6} {'dirty':>6} {'seconds':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in codec_rows:
        ratio = row["naive_payload_bytes"] / max(row["payload_bytes"], 1)
        print(
            f"{row['kernel']:7} {row['payloads']:>8} "
            f"{row['payload_bytes']:>10} {row['naive_payload_bytes']:>10} "
            f"{ratio:>5.1f}x {row['dirty_slots']:>6} "
            f"{row['seconds']:>9.4f}"
        )


def test_lu_and_cg_ship_at_most_half_the_naive_bytes(codec_rows):
    by_kernel = {row["kernel"]: row for row in codec_rows}
    for kernel in GATED:
        row = by_kernel[kernel]
        assert row["payload_bytes"] * 2 <= row["naive_payload_bytes"], (
            f"{kernel}: codec ships {row['payload_bytes']} of "
            f"{row['naive_payload_bytes']} naive bytes — less than a "
            f"2x reduction"
        )


def test_steady_state_regions_ship_no_module_bytes(nas_sessions):
    """After the broadcast, a whole run's wire carries only preludes
    and deltas: re-running CG must ship strictly fewer bytes than its
    first (broadcasting) run, by at least the module's size."""
    session = nas_sessions["CG"]
    codec = payload_codec.module_codec(session.module)

    def run_bytes():
        result = run_plan(
            session.module, session.pspdg, session.plan("PS-PDG"),
            workers=WORKERS, backend="processes",
        )
        return sum(r["payload_bytes"] for r in result.parallel_regions)

    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    first = run_bytes()
    second = run_bytes()
    assert first >= second + len(codec.module_bytes)
