"""§6.1 — generating the PS-PDG for existing OpenMP benchmarks.

The paper's first result is the pipeline itself: the PS-PDG is constructed
for every NAS benchmark.  This bench measures graph-construction time per
kernel — alias + PDG + PS-PDG over a pre-compiled module, via a fresh
session each round so nothing is cached — and prints the feature
statistics of the resulting graphs (hierarchical nodes, contexts, traits,
undirected edges, selectors, variables, relaxations).
"""

import pytest

from repro import Session
from repro.workloads import build_kernel, kernel_names


@pytest.mark.parametrize("name", kernel_names())
def test_pspdg_construction(name, benchmark, capsys):
    module = build_kernel(name)  # frontend compile stays untimed

    def construct():
        return Session.from_module(module, name=name).pspdg

    graph = benchmark.pedantic(construct, rounds=2, iterations=1)
    stats = graph.statistics()
    with capsys.disabled():
        cells = " ".join(
            f"{key}={stats[key]}"
            for key in (
                "instruction_nodes",
                "hierarchical_nodes",
                "contexts",
                "traits",
                "undirected_edges",
                "selector_edges",
                "variables",
                "relaxations",
            )
        )
        print(f"\n[PS-PDG stats] {name:4} {cells}")

    assert stats["hierarchical_nodes"] > 0
    assert stats["contexts"] > 0
    assert stats["relaxations"] > 0
