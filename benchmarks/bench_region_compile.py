"""Region-compilation gate: LU at ``-O2`` on the ``processes`` backend.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_region_compile.py -q -s

The region-body compiler (``repro.codegen``) lowers each DOALL chunk to
an exec-compiled Python function, so workers run native bytecode
instead of the per-instruction interpreter loop.  LU at ``-O2`` is the
roadmap's compute-bound case once the wavefront regions are serialized:
wall-clock is dominated by chunk execution, which is exactly what
compilation accelerates.

Two acceptance gates:

* every chunk of the LU ``-O2`` run must actually take the compiled
  path (zero interpreter fallbacks — deterministic, timing-free), and
* the compiled run must be **at least 2x** faster than the interpreted
  run (wall-clock, best-of-N on the same warm pool; locally the win is
  ~2.7x, so the 2x line has headroom against runner noise).

Rows land in ``BENCH_region_compile.json`` with ``mode`` set to
``compiled``/``interpreted`` per row; ``check_baselines.py`` gates the
byte fields and treats ``seconds`` as report-only, same as every other
bench.
"""

import time

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.runtime import run_plan

KERNELS = ("LU", "CG", "EP")
GATED = "LU"
BACKENDS = ("processes", "threads")
WORKERS = 4
REPETITIONS = 3


@pytest.fixture(scope="module")
def o2_plans(nas_sessions):
    """kernel -> the ``-O2``-optimized PS-PDG plan."""
    plans = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plans[kernel] = optimize_plan(
            session.function, session.module, session.pdg,
            session.pspdg, session.plan("PS-PDG"), OptLevel.O2,
        ).plan
    return plans


@pytest.fixture(scope="module")
def warm_pool(nas_sessions, o2_plans):
    """Throwaway runs so pool startup and child-side compiles (cached
    per pool epoch) aren't billed to the measured runs."""
    for backend in BACKENDS:
        run_plan(
            nas_sessions["LU"].module, nas_sessions["LU"].pspdg,
            o2_plans["LU"], workers=WORKERS, backend=backend,
            compile_regions=True,
        )


def _measure(session, plan, backend, compile_regions,
             repetitions=REPETITIONS):
    best = None
    last = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = run_plan(
            session.module, session.pspdg, plan,
            workers=WORKERS, backend=backend,
            compile_regions=compile_regions,
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        last = result
    regions = last.parallel_regions
    return {
        "seconds": best,
        "payloads": sum(r.get("payloads", 0) for r in regions),
        "payload_bytes": sum(r.get("payload_bytes", 0) for r in regions),
        "compiled_chunks": sum(r["compiled_chunks"] for r in regions),
        "interpreted_chunks": sum(
            r["interpreted_chunks"] for r in regions
        ),
    }


@pytest.fixture(scope="module")
def compile_rows(nas_sessions, o2_plans, warm_pool):
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        for backend in BACKENDS:
            for compiled in (False, True):
                row = {
                    "kernel": kernel,
                    "backend": backend,
                    "opt": "-O2",
                    "workers": WORKERS,
                    "mode": "compiled" if compiled else "interpreted",
                }
                row.update(_measure(
                    session, o2_plans[kernel], backend, compiled,
                ))
                rows.append(row)
    return rows


def test_region_compile_table(compile_rows, bench_json):
    path = bench_json("region_compile", compile_rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'backend':10} {'mode':12} {'cc':>5} {'ic':>5} "
        f"{'bytes':>8} {'seconds':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    by_key = {
        (row["kernel"], row["backend"], row["mode"]): row
        for row in compile_rows
    }
    for row in compile_rows:
        speedup = ""
        if row["mode"] == "compiled":
            base = by_key[(row["kernel"], row["backend"], "interpreted")]
            speedup = f"{base['seconds'] / row['seconds']:>7.2f}x"
        print(
            f"{row['kernel']:7} {row['backend']:10} {row['mode']:12} "
            f"{row['compiled_chunks']:>5} {row['interpreted_chunks']:>5} "
            f"{row['payload_bytes']:>8} {row['seconds']:>9.4f} {speedup:>8}"
        )


def test_every_lu_chunk_takes_the_compiled_path(compile_rows):
    """Deterministic gate: the lowering must cover all of LU -O2 —
    a single silent interpreter fallback would erode the speedup
    without failing any conformance test."""
    for row in compile_rows:
        if row["kernel"] != GATED or row["mode"] != "compiled":
            continue
        assert row["compiled_chunks"] > 0, (
            f"{row['backend']}: no chunk compiled"
        )
        assert row["interpreted_chunks"] == 0, (
            f"{row['backend']}: {row['interpreted_chunks']} chunk(s) "
            "fell back to the interpreter"
        )


def test_lu_o2_compiled_is_at_least_2x_faster(compile_rows):
    """The acceptance gate: LU -O2 on processes, compiled vs
    interpreted wall-clock.  Locally ~2.7x; the 2x line leaves noise
    headroom, and the byte fields (gated by check_baselines.py) pin
    that both modes ship the identical wire traffic."""
    by_mode = {
        row["mode"]: row
        for row in compile_rows
        if row["kernel"] == GATED and row["backend"] == "processes"
    }
    interpreted = by_mode["interpreted"]["seconds"]
    compiled = by_mode["compiled"]["seconds"]
    print(
        f"\nLU -O2 processes W={WORKERS}: interpreted "
        f"{interpreted * 1000:.1f}ms, compiled {compiled * 1000:.1f}ms "
        f"({interpreted / compiled:.2f}x)"
    )
    assert compiled * 2 <= interpreted, (
        f"compiled LU -O2 only {interpreted / compiled:.2f}x faster "
        f"({compiled:.4f}s vs {interpreted:.4f}s) — gate is 2x"
    )
    assert (
        by_mode["compiled"]["payload_bytes"]
        == by_mode["interpreted"]["payload_bytes"]
    ), "compilation changed the wire bytes"
