"""Adaptive-replanning gate: recovery from a mis-calibrated model on LU.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replanning.py -q -s

The planner is handed a machine model whose coefficients are ~100x off
(``payload_cost_per_byte=1e-9``, dispatch bars of 1/2 steps: "every
region is worth process-pool dispatch, bytes are free"), so the -O2
plan for LU pays dozens of pointless pool round-trips.  Two gates:

* **Recovery**: the adaptive run — same mis-calibrated plan, divergence
  detection + mid-run replanning on — must finish at least **1.3x**
  faster than the non-adaptive run (paired median over interleaved
  reps, same machine, warm pool).
* **Convergence**: after 3 calibrated runs, the profile's coefficient
  EWMAs must land within **2x** of an independently measured fresh
  reference, and a *warm session* loading that profile must plan from
  the measured (not the mis-calibrated) coefficients.

Rows land in ``BENCH_replanning.json``; ``seconds`` and the recovery
ratio are report-only in the baseline gate (CI machines vary), while
the non-adaptive row's ``payload_bytes`` — a fixed static plan's wire
traffic — is gated like every other bench.  The 1.3x/2x gates are
enforced here, where both measurements share one machine.
"""

import statistics
import time

import pytest

from repro import Session
from repro.planner.calibration import CalibrationStore
from repro.planner.machine import MachineModel
from repro.runtime import backends, knobs

KERNEL = "LU"
BACKEND = "processes"
WORKERS = 4
OPT = 2
REPETITIONS = 7
RECOVERY_GATE = 1.3
CONVERGENCE_FACTOR = 2.0
CALIBRATION_RUNS = 3

#: ~100x-off coefficients: wire bytes claimed free, dispatch bars of
#: 1/2 steps so the small-region pass never serializes anything.
MISCALIBRATED = MachineModel(
    serial_region_cost=1,
    threads_region_cost=2,
    payload_cost_per_byte=1e-9,
)


def _session(**overrides):
    return Session.from_kernel(
        KERNEL, opt_level=OPT, backend=BACKEND, workers=WORKERS,
        machine=MISCALIBRATED, **overrides,
    )


@pytest.fixture(scope="module")
def monkeypatch_module():
    patcher = pytest.MonkeyPatch()
    yield patcher
    patcher.undo()


@pytest.fixture(scope="module")
def measured(monkeypatch_module):
    """Interleaved non-adaptive vs adaptive timings on a warm pool."""
    knobs.refresh()
    monkeypatch_module.setattr(backends, "POOL_RECYCLE_REGIONS", 1_000_000)
    backends._reset_chunk_pool()

    plain = _session()
    adaptive = _session()
    # Warm pool + caches.  The first adaptive run is the one where the
    # divergence detector fires and re-prices the plan; the adopted
    # overrides persist in the session's cached plan, so later reps
    # measure the recovered steady state.
    first = {
        "nonadaptive": plain.run("PS-PDG"),
        "adaptive": adaptive.run("PS-PDG", adaptive=True),
    }
    times = {"nonadaptive": [], "adaptive": []}
    last = dict(first)
    for _ in range(REPETITIONS):
        for mode, session, on in (("nonadaptive", plain, False),
                                  ("adaptive", adaptive, True)):
            started = time.perf_counter()
            last[mode] = session.run("PS-PDG", adaptive=on)
            times[mode].append(time.perf_counter() - started)
    recovery = statistics.median(
        off / on for off, on in zip(times["nonadaptive"], times["adaptive"])
    )
    best = {mode: min(series) for mode, series in times.items()}
    return best, recovery, first, last


@pytest.fixture(scope="module")
def calibrated(tmp_path_factory, measured):
    """3 calibrated runs into a profile, then a warm session over it."""
    profile = str(tmp_path_factory.mktemp("profiles") / "replanning.json")
    store = CalibrationStore(profile)
    for _ in range(CALIBRATION_RUNS):
        # Cold pool each run, and every run executes the *same*
        # mis-calibrated storm plan: the gate measures whether the
        # estimator converges, so the operating point (75 dispatches,
        # full payloads) must stay fixed across runs.  The re-planning
        # behavior of calibrate-enabled sessions is covered by the
        # warm-session test below.
        backends._reset_chunk_pool()
        run_session = _session()
        store.observe_run(
            run_session.run("PS-PDG").parallel_regions,
            program_key=run_session.program_key(),
        )
    store.save()

    # Independent fresh reference: one more storm run's stats distilled
    # into a brand-new store (no EWMA history), same conditions.
    backends._reset_chunk_pool()
    reference = CalibrationStore()
    reference.observe_run(_session().run("PS-PDG").parallel_regions)

    backends._reset_chunk_pool()
    warm = _session(calibrate=True, profile_path=profile)
    warm_result = warm.run("PS-PDG")
    return store, reference, warm, warm_result


@pytest.fixture(scope="module")
def replanning_rows(measured, calibrated):
    best, recovery, first, last = measured
    _calibrated, _reference, warm, warm_result = calibrated
    identity = {
        "bench": "replanning", "kernel": KERNEL, "backend": BACKEND,
        "opt": f"-O{OPT}", "workers": WORKERS,
    }
    plain_result = last["nonadaptive"]
    adaptive_result = last["adaptive"]
    rows = [
        dict(
            identity, mode="nonadaptive", seconds=best["nonadaptive"],
            dispatches=len(plain_result.parallel_regions),
            # Gated in check_baselines: the cold first run ships the
            # static plan's full payloads, which is deterministic;
            # warm repeats ship history-dependent prelude deltas.
            payload_bytes=sum(
                r.get("payload_bytes", 0)
                for r in first["nonadaptive"].parallel_regions
            ),
        ),
        dict(
            identity, mode="adaptive", seconds=best["adaptive"],
            recovery=recovery,
            replans=len(first["adaptive"].replan_events),
            dispatches=len(adaptive_result.parallel_regions),
            # Timing-dependent (how soon the replan fires), so named
            # outside the gated payload_bytes field on purpose.
            wire_bytes=sum(
                r.get("payload_bytes", 0)
                for r in adaptive_result.parallel_regions
            ),
        ),
        dict(
            identity, mode="calibrated_warm",
            dispatches=len(warm_result.parallel_regions),
            # Also timing-dependent: whether a borderline region lands
            # above or below the measured dispatch bar varies per run.
            wire_bytes=sum(
                r.get("payload_bytes", 0)
                for r in warm_result.parallel_regions
            ),
            coefficients=len(warm.calibration.measured_coefficients()),
        ),
    ]
    return rows


def test_replanning_table(replanning_rows, bench_json):
    path = bench_json("replanning", replanning_rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'mode':16} {'seconds':>9} {'recov':>7} "
        f"{'rpl':>4} {'disp':>5} {'bytes':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in replanning_rows:
        recovery = (f"{row['recovery']:>6.2f}x"
                    if "recovery" in row else f"{'':7}")
        print(
            f"{row['kernel']:7} {row['mode']:16} "
            f"{row.get('seconds', 0.0):>9.4f} {recovery} "
            f"{row.get('replans', ''):>4} {row.get('dispatches', ''):>5} "
            f"{row.get('payload_bytes', row.get('wire_bytes', '')):>9}"
        )


def test_adaptive_recovers_from_miscalibration(measured):
    """Mid-run replanning claws back >=1.3x of the mispricing's cost."""
    best, recovery, first, _last = measured
    print(
        f"\n{KERNEL} -O{OPT} {BACKEND} W={WORKERS}: non-adaptive best "
        f"{best['nonadaptive'] * 1000:.1f}ms, adaptive best "
        f"{best['adaptive'] * 1000:.1f}ms, paired median recovery "
        f"{recovery:.2f}x"
    )
    assert first["adaptive"].replan_events, "divergence never fired"
    assert recovery >= RECOVERY_GATE, (
        f"adaptive run only {recovery:.2f}x faster than non-adaptive "
        f"under a 100x-miscalibrated model — gate is {RECOVERY_GATE}x"
    )


def test_adaptive_output_identical(measured):
    _best, _recovery, first, last = measured
    assert first["adaptive"].formatted_output() == \
        first["nonadaptive"].formatted_output()
    assert last["adaptive"].formatted_output() == \
        last["nonadaptive"].formatted_output()


def test_calibration_converges_within_factor(calibrated):
    """After 3 runs the EWMAs agree with a fresh measurement within 2x."""
    store, reference, _warm, _warm_result = calibrated
    converged = dict(store.measured_coefficients())
    fresh = dict(reference.measured_coefficients())
    shared = set(converged) & set(fresh)
    assert shared, "no coefficient measured by both stores"
    for name in sorted(shared):
        value, _ = converged[name]
        target, _ = fresh[name]
        ratio = value / target
        print(f"{name}: converged {value:.4g} vs fresh {target:.4g} "
              f"({ratio:.2f}x)")
        assert 1.0 / CONVERGENCE_FACTOR <= ratio <= CONVERGENCE_FACTOR, (
            f"{name} drifted {ratio:.2f}x from the fresh measurement "
            f"after {CALIBRATION_RUNS} runs — gate is "
            f"{CONVERGENCE_FACTOR}x"
        )


def test_warm_session_plans_from_measured_coefficients(measured, calibrated):
    """A profile-loading session plans from measured numbers: the
    calibrate stage hands the optimizer the profile's machine and the
    per-region wire feedback, not the mis-calibrated constructor input."""
    _best, _recovery, first, _last = measured
    _calibrated, _reference, warm, warm_result = calibrated
    machine = warm.calibrated["machine"]
    assert machine != MISCALIBRATED
    assert machine == warm.calibration.calibrated_machine(MISCALIBRATED)
    # The wire is no longer priced as free, and the dispatch bars
    # reflect pool round-trips actually paid for.
    assert machine.payload_cost_per_byte > \
        MISCALIBRATED.payload_cost_per_byte * 100
    assert machine.threads_region_cost > MISCALIBRATED.threads_region_cost
    assert machine.serial_region_cost > MISCALIBRATED.serial_region_cost
    # Per-region bytes-on-wire feedback reached the planner too.
    assert warm.calibrated["payload_bytes"]
    # And planning from measured numbers never perturbs the results.
    assert warm_result.formatted_output() == \
        first["nonadaptive"].formatted_output()
