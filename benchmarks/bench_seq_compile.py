"""Sequential-stretch compilation gate: LU/BT at ``-O2`` on threads.

Run explicitly (bench files are not collected by the default suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_seq_compile.py -q -s

The sequence compiler (``repro.codegen.seq``) lowers everything *around*
the parallel regions — function bodies, inter-region block runs, and
the loops the ``-O2`` small-region pass serialized — to exec-compiled
state machines.  LU and BT at ``-O2`` are the sequential-heavy cases:
the wavefront/solver loops leave the parallel path entirely, so most of
the run's steps retire in the stretches the sequence compiler owns.

Acceptance gates:

* whole-program coverage on the gated kernel is deterministic — every
  region chunk compiles (zero interpreter fallbacks) *and* the
  function-body stretch takes the compiled path, and
* the compiled run is **at least 1.5x** faster than the interpreted run
  (wall-clock, best-of-N; locally LU is ~3x and BT ~10x, so the 1.5x
  line has ample headroom against runner noise).

Rows land in ``BENCH_seq_compile.json`` with ``mode`` set to
``compiled``/``interpreted`` per row.  ``steps`` must match between the
modes (checked here — a bench that quietly diverged would be measuring
two different programs).  The ``feedback`` rows carry the measured
per-region ``compiled_speedup`` that ``diagnostics.payload_feedback()``
derives from runs like these and ``optimize_plan`` consumes in place of
the machine model's prior.
"""

import time

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.pipeline.diagnostics import Diagnostics
from repro.runtime import run_plan

KERNELS = ("LU", "BT")
GATED = "LU"
BACKEND = "threads"
WORKERS = 4
REPETITIONS = 3
GATE = 1.5


@pytest.fixture(scope="module")
def o2_plans(nas_sessions):
    """kernel -> the ``-O2``-optimized PS-PDG plan."""
    plans = {}
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        plans[kernel] = optimize_plan(
            session.function, session.module, session.pdg,
            session.pspdg, session.plan("PS-PDG"), OptLevel.O2,
        ).plan
    return plans


def _measure(session, plan, compile_regions, repetitions=REPETITIONS):
    best = None
    last = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = run_plan(
            session.module, session.pspdg, plan,
            workers=WORKERS, backend=BACKEND,
            compile_regions=compile_regions,
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        last = result
    return {
        "seconds": best,
        "steps": last.steps,
        "seq_compiled": last.sequence_stats.get("compiled", 0),
        "seq_interpreted": last.sequence_stats.get("interpreted", 0),
        "compiled_chunks": sum(
            r["compiled_chunks"] for r in last.parallel_regions
        ),
        "interpreted_chunks": sum(
            r["interpreted_chunks"] for r in last.parallel_regions
        ),
    }, last


@pytest.fixture(scope="module")
def seq_rows(nas_sessions, o2_plans):
    rows = []
    for kernel in KERNELS:
        session = nas_sessions[kernel]
        diagnostics = Diagnostics()
        for compiled in (False, True):
            row = {
                "kernel": kernel,
                "backend": BACKEND,
                "opt": "-O2",
                "workers": WORKERS,
                "mode": "compiled" if compiled else "interpreted",
            }
            measured, result = _measure(
                session, o2_plans[kernel], compiled,
            )
            row.update(measured)
            rows.append(row)
            for region in result.parallel_regions:
                diagnostics.record_parallel(region)
        # Close the model loop: the same feedback channel the planner
        # consumes, measured from the two runs above.
        _bytes, _warm, speedup, _recovery = diagnostics.payload_feedback()
        for label, ratio in sorted(speedup.items()):
            rows.append({
                "kernel": kernel,
                "backend": BACKEND,
                "opt": "-O2",
                "workers": WORKERS,
                "mode": f"feedback:{label}",
                "compiled_speedup": ratio,
            })
    return rows


def test_seq_compile_table(seq_rows, bench_json):
    path = bench_json("seq_compile", seq_rows)
    print(f"\nwrote {path}")
    header = (
        f"{'kernel':7} {'mode':22} {'sc':>3} {'si':>3} {'cc':>5} "
        f"{'ic':>5} {'steps':>9} {'seconds':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    by_key = {(row["kernel"], row["mode"]): row for row in seq_rows}
    for row in seq_rows:
        if "seconds" not in row:
            print(
                f"{row['kernel']:7} {row['mode']:22} "
                f"{'':3} {'':3} {'':5} {'':5} {'':9} {'':9} "
                f"{row['compiled_speedup']:>7.2f}x"
            )
            continue
        speedup = ""
        if row["mode"] == "compiled":
            base = by_key[(row["kernel"], "interpreted")]
            speedup = f"{base['seconds'] / row['seconds']:>7.2f}x"
        print(
            f"{row['kernel']:7} {row['mode']:22} "
            f"{row['seq_compiled']:>3} {row['seq_interpreted']:>3} "
            f"{row['compiled_chunks']:>5} {row['interpreted_chunks']:>5} "
            f"{row['steps']:>9} {row['seconds']:>9.4f} {speedup:>8}"
        )


def test_whole_program_coverage_is_deterministic(seq_rows):
    """Every kernel's compiled run covers stretches *and* chunks.

    A silent fallback anywhere — one refused chunk, one interpreted
    function body — erodes the speedup without failing a conformance
    test; this pins coverage independently of timing.
    """
    for row in seq_rows:
        if row["mode"] != "compiled":
            continue
        label = f"{row['kernel']} {BACKEND}"
        assert row["seq_compiled"] > 0, (
            f"{label}: no sequential stretch compiled"
        )
        assert row["seq_interpreted"] == 0, (
            f"{label}: {row['seq_interpreted']} stretch(es) fell back"
        )
        assert row["interpreted_chunks"] == 0, (
            f"{label}: {row['interpreted_chunks']} chunk(s) fell back"
        )


def test_modes_retire_identical_steps(seq_rows):
    """Compiled and interpreted runs must be the same computation."""
    by_key = {(row["kernel"], row["mode"]): row for row in seq_rows}
    for kernel in KERNELS:
        assert (
            by_key[(kernel, "compiled")]["steps"]
            == by_key[(kernel, "interpreted")]["steps"]
        ), f"{kernel}: step counts diverged between modes"


def test_gated_kernel_compiled_is_at_least_1_5x_faster(seq_rows):
    """The acceptance gate: LU -O2 on threads, whole-run wall-clock."""
    by_mode = {
        row["mode"]: row
        for row in seq_rows
        if row["kernel"] == GATED and "seconds" in row
    }
    interpreted = by_mode["interpreted"]["seconds"]
    compiled = by_mode["compiled"]["seconds"]
    print(
        f"\n{GATED} -O2 {BACKEND} W={WORKERS}: interpreted "
        f"{interpreted * 1000:.1f}ms, compiled {compiled * 1000:.1f}ms "
        f"({interpreted / compiled:.2f}x)"
    )
    assert compiled * GATE <= interpreted, (
        f"compiled {GATED} -O2 only {interpreted / compiled:.2f}x faster "
        f"({compiled:.4f}s vs {interpreted:.4f}s) — gate is {GATE}x"
    )
