"""Session cache: cold vs warm planning on the same session.

The hot path of every benchmark in this directory is "plan the same
workload again".  Before :class:`repro.Session`, each call re-ran
interpretation, alias analysis, and both graph builds; now the first
``plan()`` materializes the pipeline and every later query is a cache
hit.  This bench quantifies the gap and asserts the API's core promise:
a warm ``plan()`` performs **zero** interpreter/PDG/PS-PDG rebuilds and
is at least 5x faster than the cold one (in practice it is orders of
magnitude).
"""

import time

import pytest

from repro import Session
from repro.workloads import kernel_names

_GRAPH_STAGES = ("module", "profile", "alias", "pdg", "pspdg", "views")


@pytest.mark.parametrize("name", kernel_names())
def test_warm_plan_hits_cache(name, capsys):
    session = Session.from_kernel(name)

    started = time.perf_counter()
    cold_plan = session.plan()
    cold = time.perf_counter() - started

    started = time.perf_counter()
    warm_plan = session.plan()
    warm = time.perf_counter() - started

    with capsys.disabled():
        ratio = cold / warm if warm else float("inf")
        print(
            f"\n[session cache] {name:4} cold={cold * 1e3:9.2f}ms "
            f"warm={warm * 1e6:8.1f}us speedup={ratio:10.0f}x"
        )

    assert warm_plan is cold_plan
    # Zero rebuilds on the warm path: every stage ran exactly once.
    for stage in _GRAPH_STAGES:
        assert session.diagnostics.runs(stage) == 1, stage
    assert session.diagnostics.runs("critical_paths") == 1
    # The acceptance bar is 5x; real ratios are 1000x+.
    assert cold >= 5 * warm, (cold, warm)


def test_warm_options_hit_cache(capsys):
    session = Session.from_kernel("IS")

    started = time.perf_counter()
    first = session.options()
    cold = time.perf_counter() - started

    started = time.perf_counter()
    second = session.options()
    warm = time.perf_counter() - started

    with capsys.disabled():
        print(
            f"\n[session cache] IS options cold={cold * 1e3:.2f}ms "
            f"warm={warm * 1e6:.1f}us"
        )
    assert second is first
    assert session.diagnostics.runs("options") == 1
    assert cold >= 5 * warm, (cold, warm)
