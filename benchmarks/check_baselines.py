"""Perf gate: compare fresh ``BENCH_*.json`` files against baselines.

Usage (CI runs this after the benchmark steps)::

    python benchmarks/check_baselines.py [--fresh-dir .] \
        [--baseline-dir benchmarks/baselines] [--tolerance 1.25]

``--update`` regenerates the baselines in place instead of gating:
every fresh ``BENCH_*.json`` in ``--fresh-dir`` is copied over its
baseline (new files included), so refreshing after an intentional perf
change is one command::

    python -m pytest benchmarks -q && \
        python benchmarks/check_baselines.py --update

For every baseline file with a fresh counterpart, rows are matched on
their identity fields (kernel, backend, opt level, workers, mode).
``payload_bytes`` — the bytes the codec actually puts on the wire —
**fails** the gate when the fresh value exceeds baseline x tolerance;
wall-clock fields (``seconds``) are report-only, since CI machines
vary far more in speed than in what the codec ships.  Other byte
fields (``naive_payload_bytes`` measures the seed's encoding,
``prelude_bytes_saved`` is larger-is-better) are informational only.
Rows or files present on only one side are reported but never fail
(benchmarks grow).

Exits non-zero on any gated regression.
"""

import argparse
import json
import sys
from pathlib import Path

#: Numeric fields that gate (fresh > baseline * tolerance fails).
#: Deliberately a whitelist: most ``*_bytes`` stats are measurements of
#: *other* encodings or larger-is-better savings counters.
GATED_FIELDS = {"payload_bytes"}

#: Numeric fields reported but never gated.
REPORT_ONLY = {"seconds"}

#: Identity fields: rows are matched on these when present.
IDENTITY_FIELDS = ("bench", "kernel", "backend", "opt", "workers", "mode")


def load_rows(path):
    data = json.loads(path.read_text())
    if isinstance(data, dict):  # schema >= 2 envelope
        return data.get("rows", [])
    return data  # schema 1: bare row list


def row_key(row):
    return tuple(
        (field, row[field]) for field in IDENTITY_FIELDS if field in row
    )


def compare_file(name, baseline_rows, fresh_rows, tolerance):
    failures = []
    notes = []
    fresh_by_key = {row_key(row): row for row in fresh_rows}
    for row in baseline_rows:
        key = row_key(row)
        fresh = fresh_by_key.get(key)
        label = f"{name} {dict(key)}"
        if fresh is None:
            notes.append(f"  [gone] {label}: no fresh row")
            continue
        for field, base_value in row.items():
            if not isinstance(base_value, (int, float)):
                continue
            fresh_value = fresh.get(field)
            if not isinstance(fresh_value, (int, float)):
                continue
            if field in REPORT_ONLY:
                if base_value and fresh_value > base_value * tolerance:
                    notes.append(
                        f"  [slow] {label} {field}: "
                        f"{fresh_value:.4f} vs {base_value:.4f} "
                        "(report-only)"
                    )
                continue
            if field not in GATED_FIELDS:
                continue
            if fresh_value > base_value * tolerance:
                failures.append(
                    f"  [FAIL] {label} {field}: {fresh_value} vs "
                    f"baseline {base_value} (> {tolerance}x)"
                )
            elif base_value and fresh_value * tolerance < base_value:
                notes.append(
                    f"  [win]  {label} {field}: {fresh_value} vs "
                    f"baseline {base_value} — consider refreshing the "
                    "baseline"
                )
    return failures, notes


def update_baselines(fresh_dir, baseline_dir):
    """Copy every fresh ``BENCH_*.json`` over its baseline, verbatim.

    Fresh files with no existing baseline are added; baselines with no
    fresh counterpart are left untouched (a partial bench run must not
    wipe the rest of the suite's history).
    """
    fresh_files = sorted(Path(fresh_dir).glob("BENCH_*.json"))
    if not fresh_files:
        print(f"no fresh BENCH_*.json under {fresh_dir}; nothing to update")
        return 1
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for fresh_path in fresh_files:
        data = json.loads(fresh_path.read_text())  # refuse malformed files
        target = baseline_dir / fresh_path.name
        verb = "update" if target.exists() else "add"
        target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        rows = data.get("rows", data) if isinstance(data, dict) else data
        print(f"[{verb}] {target.name}: {len(rows)} row(s)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh-dir", default=".", type=Path)
    parser.add_argument(
        "--baseline-dir",
        default=Path(__file__).resolve().parent / "baselines",
        type=Path,
    )
    parser.add_argument("--tolerance", default=1.25, type=float)
    parser.add_argument(
        "--update", action="store_true",
        help="copy every fresh BENCH_*.json over its baseline (adding "
             "new ones) instead of gating",
    )
    args = parser.parse_args(argv)

    if args.update:
        return update_baselines(args.fresh_dir, args.baseline_dir)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baseline_dir}; nothing to gate")
        return 0
    all_failures = []
    compared = 0
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"[skip] {baseline_path.name}: no fresh file")
            continue
        compared += 1
        failures, notes = compare_file(
            baseline_path.name,
            load_rows(baseline_path),
            load_rows(fresh_path),
            args.tolerance,
        )
        status = "FAIL" if failures else "ok"
        print(f"[{status}] {baseline_path.name}")
        for line in failures + notes:
            print(line)
        all_failures.extend(failures)
    if not compared:
        print("no fresh BENCH_*.json matched any baseline; nothing gated")
        return 0
    if all_failures:
        print(
            f"\n{len(all_failures)} payload-bytes regression(s) beyond "
            f"{args.tolerance}x tolerance"
        )
        return 1
    print(f"\nall gated byte metrics within {args.tolerance}x of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
