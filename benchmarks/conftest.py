"""Shared session-scoped pipeline state so each kernel is built once.

Every benchmark rides one :class:`repro.Session` per NAS kernel: the
first query compiles, profiles, and builds the graphs; every later query
(across all bench files in the run) hits the session cache.

Benchmarks that track the perf trajectory across PRs emit
machine-readable ``BENCH_<name>.json`` files (via the ``bench_json``
fixture) into the working directory — or ``$BENCH_OUT_DIR`` — which CI
uploads as workflow artifacts.
"""

import datetime
import json
import os
import subprocess
from pathlib import Path

import pytest

from repro import Session
from repro.workloads import kernel_names

#: Version of the BENCH_*.json envelope.  2 added the provenance header
#: (schema / git_sha / generated_utc) around the previously-bare row
#: list, so the perf trajectory across PRs is attributable.
BENCH_SCHEMA = 2


def _git_sha():
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


@pytest.fixture(scope="session")
def nas_sessions():
    """One lazily-materialized pipeline session per NAS mini-kernel."""
    return {name: Session.from_kernel(name) for name in kernel_names()}


@pytest.fixture(scope="session")
def bench_json():
    """Writer for machine-readable benchmark results.

    ``bench_json(name, rows)`` wraps ``rows`` (a list of flat dicts —
    kernel, backend, payload counts, bytes, wall-clock seconds …) in a
    provenance envelope (schema version, git SHA, UTC timestamp), dumps
    it to ``BENCH_<name>.json``, and returns the path.
    """

    def write(name, rows):
        out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        envelope = {
            "schema": BENCH_SCHEMA,
            "bench": name,
            "git_sha": _git_sha(),
            "generated_utc": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "rows": rows,
        }
        path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def nas_setups(nas_sessions):
    """The sessions' artifacts as typed :class:`BenchmarkSetup` snapshots."""
    return {
        name: session.benchmark_setup()
        for name, session in nas_sessions.items()
    }
