"""Shared session-scoped setups so each kernel is profiled once."""

import pytest

from repro.planner import prepare_benchmark
from repro.workloads import build_kernel, kernel_names


@pytest.fixture(scope="session")
def nas_setups():
    """Profiled pipeline state for every NAS mini-kernel."""
    return {
        name: prepare_benchmark(name, build_kernel(name))
        for name in kernel_names()
    }
