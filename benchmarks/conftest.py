"""Shared session-scoped pipeline state so each kernel is built once.

Every benchmark rides one :class:`repro.Session` per NAS kernel: the
first query compiles, profiles, and builds the graphs; every later query
(across all bench files in the run) hits the session cache.

Benchmarks that track the perf trajectory across PRs emit
machine-readable ``BENCH_<name>.json`` files (via the ``bench_json``
fixture) into the working directory — or ``$BENCH_OUT_DIR`` — which CI
uploads as workflow artifacts.
"""

import json
import os
from pathlib import Path

import pytest

from repro import Session
from repro.workloads import kernel_names


@pytest.fixture(scope="session")
def nas_sessions():
    """One lazily-materialized pipeline session per NAS mini-kernel."""
    return {name: Session.from_kernel(name) for name in kernel_names()}


@pytest.fixture(scope="session")
def bench_json():
    """Writer for machine-readable benchmark results.

    ``bench_json(name, rows)`` dumps ``rows`` (a list of flat dicts —
    kernel, backend, payload counts, bytes, wall-clock seconds …) to
    ``BENCH_<name>.json`` and returns the path.
    """

    def write(name, rows):
        out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def nas_setups(nas_sessions):
    """The sessions' artifacts as typed :class:`BenchmarkSetup` snapshots."""
    return {
        name: session.benchmark_setup()
        for name, session in nas_sessions.items()
    }
