"""Shared session-scoped pipeline state so each kernel is built once.

Every benchmark rides one :class:`repro.Session` per NAS kernel: the
first query compiles, profiles, and builds the graphs; every later query
(across all bench files in the run) hits the session cache.
"""

import pytest

from repro import Session
from repro.workloads import kernel_names


@pytest.fixture(scope="session")
def nas_sessions():
    """One lazily-materialized pipeline session per NAS mini-kernel."""
    return {name: Session.from_kernel(name) for name in kernel_names()}


@pytest.fixture(scope="session")
def nas_setups(nas_sessions):
    """The sessions' artifacts as typed :class:`BenchmarkSetup` snapshots."""
    return {
        name: session.benchmark_setup()
        for name, session in nas_sessions.items()
    }
