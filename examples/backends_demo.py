"""Execution backends demo: one plan, three ways to run it.

The same PS-PDG-chosen plan executes on

* ``simulated`` — the seeded virtual-thread interleaver (the oracle:
  wrong plans show up as nondeterminism across seeds),
* ``threads``   — real OS threads sharing the interpreter's memory,
* ``processes`` — real OS processes with serialized per-worker frames,

all consuming the same static/dynamic/guided chunk partition, so every
backend produces the sequential result (floats may reassociate).  The
per-region, per-worker table at the end comes from
``session.diagnostics.parallel_report()``.

Run:  python examples/backends_demo.py
"""

import time

from repro import Session

KERNEL = "EP"
WORKERS = 4


def main():
    session = Session.from_kernel(KERNEL)
    plan = session.plan("PS-PDG")
    expected = session.execution.output
    print(f"{KERNEL}: sequential output {expected}")
    print(plan.describe())
    print()

    for backend in ("simulated", "threads", "processes"):
        for schedule in ("static", "dynamic", "guided"):
            started = time.perf_counter()
            result = session.run(
                plan, workers=WORKERS, backend=backend, schedule=schedule
            )
            elapsed = (time.perf_counter() - started) * 1000
            status = "ok" if len(result.output) == len(expected) else "??"
            print(
                f"  {backend:10} {schedule:8} {elapsed:7.1f}ms  "
                f"[{status}] {result.output}"
            )

    print()
    print(session.diagnostics.parallel_report())


if __name__ == "__main__":
    main()
