"""Appendix A: the Cilk programming model on the PS-PDG.

Compiles a Cilk-style fibonacci (spawn/sync) and a cilk_for loop with a
hyperobject reducer, shows the PS-PDG features each construct produces
(spawn -> hierarchical SESE node, sync -> sync edges, hyperobject ->
reducible parallel semantic variable), and runs both programs — all
through per-program :class:`repro.Session` objects.

Run:  python examples/cilk_fib.py
"""

from repro import Session

FIB = """
func fib(n: int) -> int {
  if (n < 2) { return n; }
  var a: int = 0;
  var b: int = 0;
  spawn a = fib(n - 1);
  b = fib(n - 2);
  sync;
  return a + b;
}

func main() {
  print("fib(12) =", fib(12));
}
"""

REDUCER = """
global values: int[32];

func main() {
  for s in 0..32 {
    values[s] = (s * 11 + 5) % 23;
  }
  var total: int reducer(+) = 0;
  cilk_for i in 0..32 {
    total = total + values[i];
  }
  print("total =", total);
}
"""


def describe(session):
    graph = session.pspdg
    function = session.function
    print(f"  @{function.name}: {graph.statistics()}")
    for annotation in function.annotations:
        print(f"    {annotation.directive.describe()}")
    for variable in graph.variables:
        print(
            f"    variable {variable.name}: {variable.semantics}"
            + (f" ({variable.reducer_op})" if variable.reducer_op else "")
        )


def main():
    print("=== cilk_spawn / cilk_sync (fib) ===")
    fib = Session.from_source(FIB, name="cilk-fib", function_name="fib")
    describe(fib)  # PS-PDG of @fib (spawn/sync edges)
    fib.reconfigure(function_name="main")  # run the program entry point
    print(f"  output: {fib.execution.formatted_output()}\n")

    print("=== cilk_for + hyperobject reducer ===")
    reducer = Session.from_source(REDUCER, name="cilk-reducer")
    describe(reducer)
    print(f"  output: {reducer.execution.formatted_output()}")


if __name__ == "__main__":
    main()
