"""The paper's Section 2 narrative on IS: re-planning the parallelization.

The NAS IS kernel (paper Fig. 3) encodes one specific plan: per-thread
private buffers, one workshared ranking loop, a sequential prefix pass,
and a critical merge.  This example shows what each abstraction can do
with it:

* the OpenMP plan is what the programmer wrote;
* the PDG-based compiler (outermost loops, sequential analysis) loses the
  programmer's parallelism — the indirect histogram update and the
  critical defeat it;
* the PS-PDG sees the precise constraints (threadprivate buffer ->
  privatizable, critical -> orderless, merge loop -> independent) and
  selects a strictly better plan, the paper's headline claim.

Run:  python examples/is_replanning.py
"""

from repro import Session
from repro.workloads.nas import is_


def main():
    print("IS kernel (mini scale), original OpenMP structure:")
    for line in is_.SOURCE.strip().splitlines():
        print(f"    {line}")
    print()

    session = Session.from_kernel("IS")
    print(f"sequential execution: {session.execution.steps} dynamic instructions")
    print(f"program output:       {session.execution.formatted_output()}")
    print()

    results = session.critical_paths()
    print("ideal-machine critical paths and plans:")
    for name in ("Sequential", "OpenMP", "PDG", "J&K", "PS-PDG"):
        entry = results[name]
        plan = entry.get("plan")
        techniques = (
            {h: lp.technique for h, lp in plan.loop_plans.items()}
            if plan is not None
            else {}
        )
        speedup = entry["speedup"]
        ratio = f"{speedup:6.3f}x" if speedup else "  --  "
        print(f"  {name:10} CP={entry['critical_path']:>7}  {ratio}  {techniques}")
    print()

    pdg_speedup = results["PDG"]["speedup"]
    ps_speedup = results["PS-PDG"]["speedup"]
    print(
        f"-> The PDG-based plan reaches {pdg_speedup:.2f}x of the OpenMP "
        f"plan (it loses the programmer's parallelism),"
    )
    print(
        f"   while the PS-PDG plan reaches {ps_speedup:.2f}x — the "
        f"compiler found a better plan than the source encoded."
    )


if __name__ == "__main__":
    main()
