"""The paper's Section 2 narrative on IS: re-planning the parallelization.

The NAS IS kernel (paper Fig. 3) encodes one specific plan: per-thread
private buffers, one workshared ranking loop, a sequential prefix pass,
and a critical merge.  This example shows what each abstraction can do
with it:

* the OpenMP plan is what the programmer wrote;
* the PDG-based compiler (outermost loops, sequential analysis) loses the
  programmer's parallelism — the indirect histogram update and the
  critical defeat it;
* the PS-PDG sees the precise constraints (threadprivate buffer ->
  privatizable, critical -> orderless, merge loop -> independent) and
  selects a strictly better plan, the paper's headline claim.

The second half then *re-plans at run time*: the session is given a
deliberately mis-calibrated machine model (per-byte wire cost claimed
to be ~free), runs IS on the process pool with ``adaptive=True``, and
prints the replan events the divergence detector fired plus the
coefficients the calibration store measured along the way.

Run:  python examples/is_replanning.py
"""

from repro import Session
from repro.planner.machine import DEFAULT_MACHINE, MachineModel
from repro.workloads.nas import is_


def main():
    print("IS kernel (mini scale), original OpenMP structure:")
    for line in is_.SOURCE.strip().splitlines():
        print(f"    {line}")
    print()

    session = Session.from_kernel("IS")
    print(f"sequential execution: {session.execution.steps} dynamic instructions")
    print(f"program output:       {session.execution.formatted_output()}")
    print()

    results = session.critical_paths()
    print("ideal-machine critical paths and plans:")
    for name in ("Sequential", "OpenMP", "PDG", "J&K", "PS-PDG"):
        entry = results[name]
        plan = entry.get("plan")
        techniques = (
            {h: lp.technique for h, lp in plan.loop_plans.items()}
            if plan is not None
            else {}
        )
        speedup = entry["speedup"]
        ratio = f"{speedup:6.3f}x" if speedup else "  --  "
        print(f"  {name:10} CP={entry['critical_path']:>7}  {ratio}  {techniques}")
    print()

    pdg_speedup = results["PDG"]["speedup"]
    ps_speedup = results["PS-PDG"]["speedup"]
    print(
        f"-> The PDG-based plan reaches {pdg_speedup:.2f}x of the OpenMP "
        f"plan (it loses the programmer's parallelism),"
    )
    print(
        f"   while the PS-PDG plan reaches {ps_speedup:.2f}x — the "
        f"compiler found a better plan than the source encoded."
    )
    print()
    replan_demo()


def replan_demo():
    """Run IS adaptively under a mis-calibrated machine model."""
    print("adaptive replanning demo: plan with a machine model whose")
    print("dispatch/wire costs are ~100x too optimistic, then let the")
    print("runtime's divergence detector re-price the remaining regions:")
    print()

    miscalibrated = MachineModel(
        serial_region_cost=1,       # "every region is worth dispatching"
        threads_region_cost=2,
        payload_cost_per_byte=1e-9,  # "bytes on the wire are free"
    )
    session = Session.from_kernel(
        "IS", opt_level=2, backend="processes", workers=4,
        machine=miscalibrated,
    )
    result = session.run("PS-PDG", adaptive=True)
    print(f"program output: {result.formatted_output()}")
    print(f"replan events:  {len(result.replan_events)}")
    for event in result.replan_events:
        reasons = ", ".join(
            f"{reason['kind']}={reason['ratio']}x"
            for reason in event["reasons"]
        )
        for change in event["changes"]:
            before, after = change["backend_override"]
            print(
                f"  after {event['after']}: {reasons} -> "
                f"{change['region']} backend {before or 'processes'} "
                f"-> {after or 'processes'}"
            )
    print()
    print("coefficients the run measured (vs. the mis-calibrated input):")
    print(session.calibration.describe(miscalibrated))
    print()
    print("static defaults, for comparison:")
    print(
        f"  payload_cost_per_byte={DEFAULT_MACHINE.payload_cost_per_byte} "
        f"threads_region_cost={DEFAULT_MACHINE.threads_region_cost} "
        f"serial_region_cost={DEFAULT_MACHINE.serial_region_cost}"
    )


if __name__ == "__main__":
    main()
