"""Regenerate both evaluation figures (13 and 14) for all NAS kernels.

Prints the two tables the paper's evaluation reports: parallelization
options per abstraction (Fig. 13) and critical-path reduction over the
OpenMP plan (Fig. 14).

Run:  python examples/nas_report.py
"""

from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    format_fig13_row,
    format_fig14_row,
    prepare_benchmark,
)
from repro.workloads import build_kernel, kernel_names


def main():
    setups = {}
    print("preparing kernels (compile + profile + PDG + PS-PDG)...")
    for name in kernel_names():
        setups[name] = prepare_benchmark(name, build_kernel(name))
        print(f"  {name}: {setups[name].execution.steps} dynamic instructions")

    print("\nFig. 13 — total parallelization options considered")
    header = f"{'bench':6} {'OpenMP':>8} {'PDG':>8} {'J&K':>8} {'PS-PDG':>8}"
    print(header)
    print("-" * len(header))
    for name, setup in setups.items():
        row = format_fig13_row(fig13_options(setup))
        print(
            f"{name:6} {row['OpenMP']:>8} {row['PDG']:>8} "
            f"{row['J&K']:>8} {row['PS-PDG']:>8}"
        )

    print("\nFig. 14 — critical-path reduction over OpenMP (ideal machine)")
    header = f"{'bench':6} {'PDG':>9} {'J&K':>9} {'PS-PDG':>9}"
    print(header)
    print("-" * len(header))
    for name, setup in setups.items():
        row = format_fig14_row(fig14_critical_paths(setup))
        print(
            f"{name:6} {row['PDG']:>9.3f} {row['J&K']:>9.3f} "
            f"{row['PS-PDG']:>9.3f}"
        )


if __name__ == "__main__":
    main()
