"""Regenerate both evaluation figures (13 and 14) for all NAS kernels.

Prints the two tables the paper's evaluation reports: parallelization
options per abstraction (Fig. 13) and critical-path reduction over the
OpenMP plan (Fig. 14).  One :class:`repro.Session` per kernel carries
the shared pipeline state; both figures reuse the same cached graphs.

Run:  python examples/nas_report.py
"""

from repro import Session
from repro.planner import format_fig13_row, format_fig14_row
from repro.workloads import kernel_names


def main():
    sessions = {}
    print("preparing kernels (compile + profile + PDG + PS-PDG)...")
    for name in kernel_names():
        session = Session.from_kernel(name)
        sessions[name] = session
        print(f"  {name}: {session.execution.steps} dynamic instructions")

    print("\nFig. 13 — total parallelization options considered")
    header = f"{'bench':6} {'OpenMP':>8} {'PDG':>8} {'J&K':>8} {'PS-PDG':>8}"
    print(header)
    print("-" * len(header))
    for name, session in sessions.items():
        row = format_fig13_row(session.options())
        print(
            f"{name:6} {row['OpenMP']:>8} {row['PDG']:>8} "
            f"{row['J&K']:>8} {row['PS-PDG']:>8}"
        )

    print("\nFig. 14 — critical-path reduction over OpenMP (ideal machine)")
    header = f"{'bench':6} {'PDG':>9} {'J&K':>9} {'PS-PDG':>9}"
    print(header)
    print("-" * len(header))
    for name, session in sessions.items():
        row = format_fig14_row(session.critical_paths())
        print(
            f"{name:6} {row['PDG']:>9.3f} {row['J&K']:>9.3f} "
            f"{row['PS-PDG']:>9.3f}"
        )

    total = sum(s.diagnostics.total_seconds() for s in sessions.values())
    print(f"\npipeline time across kernels: {total:.2f}s "
          f"(every stage built exactly once per kernel)")


if __name__ == "__main__":
    main()
