"""Fig. 11 as an executable gallery: every PS-PDG feature is necessary.

For each feature (A: hierarchical nodes + undirected edges, B: traits,
C: contexts, D: data selectors, E: parallel semantic variables) two
semantically different programs are compiled; their full PS-PDGs differ,
and removing the feature collapses them to the same representation.

Run:  python examples/necessity_gallery.py
"""

from repro.workloads import PAIRS
from repro.workloads.necessity import demonstrate


def main():
    print("Fig. 11 — necessity of each PS-PDG extension\n")
    print(f"{'pair':4} {'feature':42} {'full differs':>12} {'w/o collapses':>14}")
    print("-" * 78)
    all_hold = True
    for pair in PAIRS:
        full_equal, reduced_equal = demonstrate(pair)
        holds = (not full_equal) and reduced_equal
        all_hold = all_hold and holds
        print(
            f"{pair.key:4} {pair.feature:42} "
            f"{str(not full_equal):>12} {str(reduced_equal):>14}"
        )
    print("-" * 78)
    verdict = "every feature is necessary" if all_hold else "VIOLATION"
    print(f"\n=> {verdict}: removing any feature conflates programs with "
          f"different parallel semantics.")


if __name__ == "__main__":
    main()
