"""Quickstart: compile an OpenMP program, build its PS-PDG, plan, and run.

Walks the whole pipeline of the paper (Fig. 12) on a small histogram
program: MiniOMP source -> annotated IR -> PDG -> PS-PDG -> parallelization
options -> best plan by ideal-machine critical path -> validated execution
on the simulated parallel runtime.

Run:  python examples/quickstart.py
"""

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.ir import print_module
from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)
from repro.runtime import run_source_plan

SOURCE = """
global data: int[128];
global hist: int[16];

func main() {
  for s in 0..128 {
    data[s] = (s * 29 + 7) % 97;
  }
  var total: int = 0;
  pragma omp parallel
  {
    pragma omp for
    for i in 0..128 {
      var b: int = data[i] % 16;
      pragma omp critical
      { hist[b] = hist[b] + 1; }
    }
    pragma omp for reduction(+: total)
    for j in 0..16 {
      total = total + hist[j] * hist[j];
    }
  }
  print("checksum", total);
}
"""


def main():
    print("=== 1. Compile (MiniOMP -> annotated IR) ===")
    module = compile_source(SOURCE, "quickstart")
    text = print_module(module)
    print("\n".join(text.splitlines()[:12]))
    print(f"... ({len(text.splitlines())} lines total)\n")

    print("=== 2. Profile + build PDG and PS-PDG ===")
    setup = prepare_benchmark("quickstart", module)
    print(f"dynamic instructions: {setup.execution.steps}")
    print(f"PDG:    {setup.pdg.statistics()}")
    print(f"PS-PDG: {setup.pspdg.statistics()}\n")

    print("=== 3. Parallelization options (Fig. 13 machinery) ===")
    report = fig13_options(setup)
    for header, row in report.rows():
        print(f"  loop {header}: {row}")
    print(f"  totals: {report.totals}\n")

    print("=== 4. Plan selection by critical path (Fig. 14 machinery) ===")
    results = fig14_critical_paths(setup)
    for name in ("Sequential", "OpenMP", "PDG", "J&K", "PS-PDG"):
        entry = results[name]
        speedup = entry["speedup"]
        suffix = f"  ({speedup:.2f}x vs OpenMP)" if speedup else ""
        print(f"  {name:10} critical path = {entry['critical_path']:>7}{suffix}")
    print()

    print("=== 5. Validate the source plan on the simulated machine ===")
    sequential = run_module(compile_source(SOURCE)).formatted_output()
    for seed in (0, 1, 2):
        parallel = run_source_plan(
            compile_source(SOURCE), workers=4, seed=seed
        )
        outcome = (
            "matches" if parallel.formatted_output() == sequential
            else "MISMATCH"
        )
        print(f"  seed={seed}: {parallel.formatted_output()} ({outcome})")


if __name__ == "__main__":
    main()
