"""Quickstart: source to a validated parallel plan through one Session.

The whole pipeline of the paper (Fig. 12) — MiniOMP source -> annotated
IR -> PDG -> PS-PDG -> parallelization options -> best plan by
ideal-machine critical path -> validated execution on the simulated
parallel runtime — is four API calls on one :class:`repro.Session`::

    s = Session.from_source(SOURCE, name="quickstart")
    s.options()       # Fig. 13 enumeration
    plan = s.plan()   # best PS-PDG plan (Fig. 14 machinery)
    s.run(plan)       # simulated-parallel execution

Each call materializes only the stages it needs; nothing runs twice
(see the diagnostics table printed at the end).

Run:  python examples/quickstart.py
"""

from repro import Session

SOURCE = """
global data: int[128];
global hist: int[16];

func main() {
  for s in 0..128 {
    data[s] = (s * 29 + 7) % 97;
  }
  var total: int = 0;
  pragma omp parallel
  {
    pragma omp for
    for i in 0..128 {
      var b: int = data[i] % 16;
      pragma omp critical
      { hist[b] = hist[b] + 1; }
    }
    pragma omp for reduction(+: total)
    for j in 0..16 {
      total = total + hist[j] * hist[j];
    }
  }
  print("checksum", total);
}
"""


def main():
    session = Session.from_source(SOURCE, name="quickstart")

    print("=== 1. Parallelization options (Fig. 13 machinery) ===")
    report = session.options()  # compiles, profiles, builds both graphs
    for header, row in report.rows():
        print(f"  loop {header}: {row}")
    print(f"  totals: {report.totals}\n")

    print("=== 2. Plan selection by critical path (Fig. 14 machinery) ===")
    results = session.critical_paths()
    for name in ("Sequential", "OpenMP", "PDG", "J&K", "PS-PDG"):
        entry = results[name]
        speedup = entry["speedup"]
        suffix = f"  ({speedup:.2f}x vs OpenMP)" if speedup else ""
        print(f"  {name:10} critical path = {entry['critical_path']:>7}{suffix}")
    plan = session.plan()  # the PS-PDG winner, straight from the cache
    print(f"  chosen: {plan.describe()}\n")

    print("=== 3. Validate plans on the simulated machine ===")
    sequential = session.execution.formatted_output()
    for label, chosen in (("source", None), ("PS-PDG", plan)):
        for seed in (0, 1, 2):
            parallel = session.run(chosen, workers=4, seed=seed)
            outcome = (
                "matches" if parallel.formatted_output() == sequential
                else "MISMATCH"
            )
            print(
                f"  {label:7} seed={seed}: "
                f"{parallel.formatted_output()} ({outcome})"
            )
    print()

    print("=== 4. Where the time went (each stage ran exactly once) ===")
    print(session.describe())


if __name__ == "__main__":
    main()
