"""repro — a reproduction of "The Parallel Semantics Program Dependence Graph".

The package implements the paper's full pipeline (Fig. 12):

1. :mod:`repro.frontend` — MiniOMP (OpenMP-style pragmas) and Cilk
   constructs, lowered to
2. :mod:`repro.ir` — a small LLVM-flavoured IR with parallel-region
   metadata, analyzed by
3. :mod:`repro.analysis` — dominators, control/memory dependence, affine
   subscript tests, reductions, privatization — feeding
4. :mod:`repro.pdg` — the sequential PDG — and
5. :mod:`repro.core` — **the PS-PDG** (Table 1 model, builder, Section 4
   ablations, Section 5 sufficiency), consumed by
6. :mod:`repro.planner` — DOALL/HELIX/DSWP classification, Fig. 13 option
   enumeration, Fig. 14 ideal-machine critical paths — with
7. :mod:`repro.emulator` / :mod:`repro.runtime` — a reference interpreter
   with loop-nest profiling and a deterministic simulated-parallel
   executor that validates plans, over
8. :mod:`repro.workloads` — mini NAS kernels and the Fig. 11 necessity
   gallery.

Quick start::

    from repro.frontend import compile_source
    from repro.planner import prepare_benchmark, fig13_options

    module = compile_source(source_text)
    setup = prepare_benchmark("demo", module)
    print(fig13_options(setup).totals)
"""

from repro.core import build_pspdg
from repro.emulator import run_module, run_source
from repro.frontend import compile_source
from repro.pdg import build_pdg
from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "build_pspdg",
    "build_pdg",
    "compile_source",
    "run_module",
    "run_source",
    "prepare_benchmark",
    "fig13_options",
    "fig14_critical_paths",
    "__version__",
]
