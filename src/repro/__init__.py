"""repro — a reproduction of "The Parallel Semantics Program Dependence Graph".

The package implements the paper's full pipeline (Fig. 12):

1. :mod:`repro.frontend` — MiniOMP (OpenMP-style pragmas) and Cilk
   constructs, lowered to
2. :mod:`repro.ir` — a small LLVM-flavoured IR with parallel-region
   metadata, analyzed by
3. :mod:`repro.analysis` — dominators, control/memory dependence, affine
   subscript tests, reductions, privatization — feeding
4. :mod:`repro.pdg` — the sequential PDG — and
5. :mod:`repro.core` — **the PS-PDG** (Table 1 model, builder, Section 4
   ablations, Section 5 sufficiency), consumed by
6. :mod:`repro.planner` — DOALL/HELIX/DSWP classification, Fig. 13 option
   enumeration, Fig. 14 ideal-machine critical paths — with
7. :mod:`repro.emulator` / :mod:`repro.runtime` — a reference interpreter
   with loop-nest profiling and a deterministic simulated-parallel
   executor that validates plans, over
8. :mod:`repro.workloads` — mini NAS kernels and the Fig. 11 necessity
   gallery.

The whole pipeline is driven through :class:`repro.Session`, which
materializes each stage lazily, exactly once, behind a content-hash
keyed cache.  Quick start — source to chosen plan in four calls::

    from repro import Session

    s = Session.from_source(source_text, name="demo")
    print(s.options().totals)          # Fig. 13 enumeration
    plan = s.plan()                    # best PS-PDG plan (Fig. 14)
    result = s.run(plan)               # validated parallel execution

The same pipeline is scriptable from the shell::

    python -m repro plan examples/histogram.mop
"""

import warnings as _warnings

from repro.core import build_pspdg
from repro.emulator import run_module, run_source
from repro.opt import OptLevel, optimize_plan
from repro.pdg import build_pdg
from repro.pipeline import Diagnostics, PipelineCache, SessionConfig
from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)
from repro.session import Session

__version__ = "1.1.0"


def compile_source(source, module_name="miniomp"):
    """Compile MiniOMP source text to a verified, annotated IR module.

    .. deprecated:: use ``Session.from_source(source).module`` (cached)
        or :func:`repro.frontend.compile_source` (direct).
    """
    _warnings.warn(
        "repro.compile_source() is deprecated; use "
        "repro.Session.from_source(...).module or "
        "repro.frontend.compile_source()",
        DeprecationWarning,
        stacklevel=2,
    )
    return Session.from_source(source, name=module_name).module


__all__ = [
    "Session",
    "SessionConfig",
    "Diagnostics",
    "PipelineCache",
    "OptLevel",
    "optimize_plan",
    "build_pspdg",
    "build_pdg",
    "compile_source",
    "run_module",
    "run_source",
    "prepare_benchmark",
    "fig13_options",
    "fig14_critical_paths",
    "__version__",
]
