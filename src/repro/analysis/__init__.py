"""repro.analysis — sequential program analyses feeding the PDG/PS-PDG."""

from repro.analysis.alias import (
    CONSOLE,
    AliasAnalysis,
    AllocaObject,
    ArgumentObject,
    ConsoleObject,
    GlobalObject,
    MemoryObject,
)
from repro.analysis.cfg import (
    can_reach,
    instruction_order_key,
    predecessors_map,
    reachable_blocks,
    reverse_postorder,
    successors_map,
)
from repro.analysis.controldep import (
    compute_control_dependence,
    controlling_branch_instructions,
)
from repro.analysis.deptests import (
    LevelDependence,
    constant_trip_count,
    loop_iv_range,
    test_level,
)
from repro.analysis.dominators import (
    DominatorTree,
    compute_dominator_tree,
    compute_postdominator_tree,
)
from repro.analysis.liveness import (
    blocks_after_loop,
    live_out_objects,
    objects_accessed_in_loop,
)
from repro.analysis.loops import (
    Loop,
    common_loops,
    enclosing_loops,
    find_natural_loops,
    loop_of_block,
)
from repro.analysis.memdep import (
    MemoryAccess,
    MemoryDependence,
    MemoryDependenceAnalysis,
    collect_accesses,
    compute_memory_dependences,
)
from repro.analysis.reductions import (
    REDUCIBLE_OPS,
    ScalarReduction,
    find_scalar_reductions,
)
from repro.analysis.scc import condensation, strongly_connected_components
from repro.analysis.subscripts import (
    AffineExpr,
    affine_offset,
    induction_alloca_map,
)

__all__ = [
    "CONSOLE",
    "AliasAnalysis",
    "AllocaObject",
    "ArgumentObject",
    "ConsoleObject",
    "GlobalObject",
    "MemoryObject",
    "can_reach",
    "instruction_order_key",
    "predecessors_map",
    "reachable_blocks",
    "reverse_postorder",
    "successors_map",
    "compute_control_dependence",
    "controlling_branch_instructions",
    "LevelDependence",
    "constant_trip_count",
    "loop_iv_range",
    "test_level",
    "DominatorTree",
    "compute_dominator_tree",
    "compute_postdominator_tree",
    "blocks_after_loop",
    "live_out_objects",
    "objects_accessed_in_loop",
    "Loop",
    "common_loops",
    "enclosing_loops",
    "find_natural_loops",
    "loop_of_block",
    "MemoryAccess",
    "MemoryDependence",
    "MemoryDependenceAnalysis",
    "collect_accesses",
    "compute_memory_dependences",
    "REDUCIBLE_OPS",
    "ScalarReduction",
    "find_scalar_reductions",
    "condensation",
    "strongly_connected_components",
    "AffineExpr",
    "affine_offset",
    "induction_alloca_map",
]
