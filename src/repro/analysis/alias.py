"""Alias analysis: memory objects, pointer provenance, call mod/ref summaries.

The memory model is object-based.  Every ``alloca`` and every global is a
distinct *memory object*; ``getelementptr`` never escapes its base object.
Distinct pointer arguments of a function are treated as distinct objects
("restrict" semantics) — the paper's motivating example (§2.2) explicitly
relies on developer knowledge that arrays do not alias, and our frontend
only ever passes whole distinct arrays.

Calls are summarized bottom-up over the call graph with a fixpoint (so
recursion converges): for each function we compute which argument positions
and globals it may read/write, then translate the summary through each call
site's actual arguments.  ``print`` serializes through a distinguished
console object.
"""

from repro.ir.instructions import Alloca, Call, GetElementPtr, Load, Print, Store
from repro.ir.values import Argument, GlobalVariable
from repro.util.errors import AnalysisError


class MemoryObject:
    """Base class for abstract memory objects."""

    def is_scalar(self):
        return False


class AllocaObject(MemoryObject):
    """The stack object created by one alloca.

    Objects compare by the underlying IR entity, so two AliasAnalysis
    instances over the same module agree on object identity.
    """

    def __init__(self, alloca):
        self.alloca = alloca

    def is_scalar(self):
        return self.alloca.allocated_type.is_scalar()

    @property
    def display_name(self):
        return self.alloca.var_name or f"%{self.alloca.uid}"

    def __eq__(self, other):
        return isinstance(other, AllocaObject) and other.alloca is self.alloca

    def __hash__(self):
        return hash(id(self.alloca))

    def __repr__(self):
        return f"<obj alloca {self.display_name}>"


class GlobalObject(MemoryObject):
    """The module-level object behind one global variable."""

    def __init__(self, gvar):
        self.gvar = gvar

    def is_scalar(self):
        return self.gvar.value_type.is_scalar()

    @property
    def display_name(self):
        return f"@{self.gvar.name}"

    def __eq__(self, other):
        return isinstance(other, GlobalObject) and other.gvar is self.gvar

    def __hash__(self):
        return hash(id(self.gvar))

    def __repr__(self):
        return f"<obj global @{self.gvar.name}>"


class ArgumentObject(MemoryObject):
    """The object a pointer argument refers to, seen from inside the callee."""

    def __init__(self, argument):
        self.argument = argument

    def is_scalar(self):
        return self.argument.type.pointee.is_scalar()

    @property
    def display_name(self):
        return f"%{self.argument.name}"

    def __eq__(self, other):
        return (
            isinstance(other, ArgumentObject)
            and other.argument is self.argument
        )

    def __hash__(self):
        return hash(id(self.argument))

    def __repr__(self):
        return f"<obj arg %{self.argument.name}>"


class ConsoleObject(MemoryObject):
    """Distinguished object serializing observable output (print)."""

    display_name = "<console>"

    def __eq__(self, other):
        return isinstance(other, ConsoleObject)

    def __hash__(self):
        return hash("console")

    def __repr__(self):
        return "<obj console>"


CONSOLE = ConsoleObject()


class AliasAnalysis:
    """Per-module alias information with call summaries.

    Usage::

        aa = AliasAnalysis(module)
        obj = aa.base_object(pointer_value, function)
        reads, writes = aa.call_effects(call_inst, function)
    """

    def __init__(self, module):
        self.module = module
        self._alloca_objects = {}
        self._global_objects = {}
        self._argument_objects = {}
        self._summaries = self._compute_summaries()

    # -- object interning ----------------------------------------------------

    def object_for_alloca(self, alloca):
        if alloca not in self._alloca_objects:
            self._alloca_objects[alloca] = AllocaObject(alloca)
        return self._alloca_objects[alloca]

    def object_for_global(self, gvar):
        if gvar not in self._global_objects:
            self._global_objects[gvar] = GlobalObject(gvar)
        return self._global_objects[gvar]

    def object_for_argument(self, argument):
        if argument not in self._argument_objects:
            self._argument_objects[argument] = ArgumentObject(argument)
        return self._argument_objects[argument]

    # -- provenance --------------------------------------------------------

    def base_object(self, pointer, function):
        """The unique memory object a pointer value refers to.

        Our IR cannot store pointers to memory and GEP preserves its base,
        so provenance always resolves to exactly one object.
        """
        value = pointer
        while isinstance(value, GetElementPtr):
            value = value.pointer
        if isinstance(value, Alloca):
            return self.object_for_alloca(value)
        if isinstance(value, GlobalVariable):
            return self.object_for_global(value)
        if isinstance(value, Argument):
            return self.object_for_argument(value)
        raise AnalysisError(f"cannot resolve pointer provenance of {value!r}")

    def may_alias(self, obj_a, obj_b):
        """Whether two objects can overlap.  Distinct objects never do."""
        return obj_a is obj_b

    # -- call summaries --------------------------------------------------------

    def _compute_summaries(self):
        """Fixpoint mod/ref per function over {arg index, global, console}.

        Summary keys: ``("arg", index)``, ``("global", name)``,
        ``("console",)``.
        """
        summaries = {
            name: {"reads": set(), "writes": set()}
            for name in self.module.functions
        }
        changed = True
        while changed:
            changed = False
            for name, function in self.module.functions.items():
                reads, writes = self._direct_effects(function, summaries)
                summary = summaries[name]
                if reads != summary["reads"] or writes != summary["writes"]:
                    summary["reads"] = reads
                    summary["writes"] = writes
                    changed = True
        return summaries

    def _abstract_key(self, obj, function):
        if isinstance(obj, ArgumentObject):
            return ("arg", obj.argument.index)
        if isinstance(obj, GlobalObject):
            return ("global", obj.gvar.name)
        if isinstance(obj, ConsoleObject):
            return ("console",)
        return None  # local alloca: invisible to callers

    def _direct_effects(self, function, summaries):
        reads = set()
        writes = set()
        for inst in function.instructions():
            if isinstance(inst, Load):
                key = self._abstract_key(
                    self.base_object(inst.pointer, function), function
                )
                if key:
                    reads.add(key)
            elif isinstance(inst, Store):
                key = self._abstract_key(
                    self.base_object(inst.pointer, function), function
                )
                if key:
                    writes.add(key)
            elif isinstance(inst, Print):
                writes.add(("console",))
            elif isinstance(inst, Call):
                callee_summary = summaries[inst.callee.name]
                for kind, bucket in (("reads", reads), ("writes", writes)):
                    for key in callee_summary[kind]:
                        translated = self._translate_key(key, inst, function)
                        if translated:
                            bucket.add(translated)
        return reads, writes

    def _translate_key(self, key, call, function):
        """Map a callee summary key into the caller's abstract space."""
        if key[0] in ("global", "console"):
            return key
        index = key[1]
        actual = call.operands[index]
        obj = self.base_object(actual, function)
        return self._abstract_key(obj, function)

    def call_effects(self, call, function):
        """Concrete (reads, writes) object sets for one call site."""
        summary = self._summaries[call.callee.name]
        reads = set()
        writes = set()
        for kind, bucket in (("reads", reads), ("writes", writes)):
            for key in summary[kind]:
                obj = self._concretize_key(key, call, function)
                if obj is not None:
                    bucket.add(obj)
        return reads, writes

    def _concretize_key(self, key, call, function):
        if key == ("console",):
            return CONSOLE
        if key[0] == "global":
            return self.object_for_global(self.module.globals[key[1]])
        index = key[1]
        actual = call.operands[index]
        return self.base_object(actual, function)

    def function_summary(self, name):
        """The abstract mod/ref summary of a function (for tests)."""
        return self._summaries[name]
