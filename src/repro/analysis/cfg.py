"""Control-flow-graph utilities shared by the other analyses."""

from repro.util.orderedset import OrderedSet


def successors_map(function):
    """Map each block to its successor list."""
    return {block: block.successors() for block in function.blocks}


def predecessors_map(function):
    """Map each block to its predecessor list (insertion order)."""
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reverse_postorder(entry, successors):
    """Blocks in reverse postorder from ``entry`` (the dataflow-friendly order).

    ``successors`` is a mapping block -> successor list.  Unreachable blocks
    are omitted.  Iterative DFS keeps recursion depth independent of CFG size.
    """
    postorder = []
    visited = set()
    # Stack entries are (block, iterator over remaining successors).
    stack = [(entry, iter(successors.get(entry, [])))]
    visited.add(entry)
    while stack:
        block, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(successors.get(succ, []))))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder


def reachable_blocks(entry, successors):
    """Set of blocks reachable from ``entry``."""
    seen = OrderedSet([entry])
    worklist = [entry]
    while worklist:
        block = worklist.pop()
        for succ in successors.get(block, []):
            if succ not in seen:
                seen.add(succ)
                worklist.append(succ)
    return seen


def can_reach(source, target, successors, banned_edges=frozenset()):
    """True if ``target`` is reachable from ``source``.

    ``banned_edges`` is a set of ``(from_block, to_block)`` pairs to exclude;
    used to ask "can A reach B without traversing the loop backedge", which
    distinguishes intra-iteration from loop-carried dependences.
    """
    if source is target and (source, target) not in banned_edges:
        # Self-reachability still requires an actual path; handled below by
        # starting from successors instead of the node itself.
        pass
    seen = set()
    worklist = [source]
    first = True
    while worklist:
        block = worklist.pop()
        for succ in successors.get(block, []):
            if (block, succ) in banned_edges:
                continue
            if succ is target:
                return True
            if succ not in seen:
                seen.add(succ)
                worklist.append(succ)
        first = False
    return False


def instruction_order_key(function):
    """Map each instruction to its (block_index, position) for ordering."""
    order = {}
    for block_index, block in enumerate(function.blocks):
        for position, inst in enumerate(block.instructions):
            order[inst] = (block_index, position)
    return order
