"""Control dependence, per Ferrante/Ottenstein/Warren (TOPLAS'87).

Block ``B`` is control dependent on block ``A`` iff ``A`` has two successors
such that one is postdominated by ``B`` (or leads to it) and the other is
not: ``A``'s branch decides whether ``B`` executes.

The classic formulation: for each CFG edge ``(A, S)`` where ``A`` does not
postdominate itself trivially, walk the postdominator tree from ``S`` up to
(but excluding) ``ipostdom(A)``; every block visited is control dependent on
``A``.
"""

from repro.analysis.dominators import compute_postdominator_tree


def compute_control_dependence(function):
    """Map each block to the list of (branch) blocks it is control dependent on.

    Returns ``dict[block] -> list[block]`` (deterministic order, duplicates
    removed).  The entry block of a straight-line function depends on nothing.
    """
    post_tree, _exit = compute_postdominator_tree(function)
    deps = {block: [] for block in function.blocks}

    for block in function.blocks:
        successors = block.successors()
        if len(successors) < 2:
            continue
        limit = post_tree.idom.get(block)
        for succ in successors:
            runner = succ
            while runner is not limit and runner is not block:
                if block not in deps[runner]:
                    deps[runner].append(block)
                parent = post_tree.idom.get(runner)
                if parent is runner or parent is None:
                    break
                runner = parent
            # A block can be control dependent on itself (loop header whose
            # branch governs re-execution); the walk above stops when runner
            # is block, and self-dependence is recorded here.
            if runner is block and block not in deps[block]:
                deps[block].append(block)
    return deps


def controlling_branch_instructions(function):
    """Map each instruction to the branch instructions it is control dependent on.

    Instruction-level control dependence: every instruction inherits its
    block's control dependences; the dependence source is the controlling
    block's terminator (the branch that decides execution).
    """
    block_deps = compute_control_dependence(function)
    result = {}
    for block in function.blocks:
        sources = [b.terminator for b in block_deps[block] if b.terminator]
        for inst in block.instructions:
            result[inst] = list(sources)
    return result
