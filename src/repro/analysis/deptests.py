"""Classic data-dependence tests over affine subscript pairs.

Given two accesses to the same object with affine offsets, decide whether
they can touch the same slot (a) in the same iteration of a given loop and
(b) across different iterations — and, when the distance is determinate, in
which direction.  Implements the standard ZIV and strong-SIV tests plus a
GCD feasibility check; everything else conservatively reports "may".

Terminology follows Allen & Kennedy: for loop L with induction variable t,
subscripts f(t) = a*t + c1 and g(t) = a*t + c2 (strong SIV) conflict exactly
when the *iv-space distance* d = (c1 - c2) / a is an integer, lies within
the loop's iteration range, and is a multiple of the step.
"""

import dataclasses
import math

from repro.ir.values import Constant


@dataclasses.dataclass
class LevelDependence:
    """Outcome of testing one pair of accesses at one loop level.

    Attributes:
        intra: the accesses may conflict within a single iteration.
        carried_forward: first access (earlier iteration) may conflict with
            the second access in a later iteration.
        carried_backward: conflict with roles swapped (second access's
            iteration earlier).
        exact: True when the result came from a determinate test rather
            than a conservative fallback.
    """

    intra: bool
    carried_forward: bool
    carried_backward: bool
    exact: bool

    @staticmethod
    def conservative():
        return LevelDependence(True, True, True, False)

    @staticmethod
    def none():
        return LevelDependence(False, False, False, True)


def _constant_value(value):
    if isinstance(value, Constant) and isinstance(value.value, int):
        return value.value
    return None


def loop_iv_range(loop):
    """(lower, upper, step) as ints when statically known, else None."""
    meta = loop.canonical
    if meta is None:
        return None
    lower = _constant_value(meta.lower)
    upper = _constant_value(meta.upper)
    step = _constant_value(meta.step)
    if lower is None or upper is None or step is None or step <= 0:
        return None
    return (lower, upper, step)


def constant_trip_count(loop):
    """Statically-known trip count, or None."""
    bounds = loop_iv_range(loop)
    if bounds is None:
        return None
    lower, upper, step = bounds
    if upper <= lower:
        return 0
    return (upper - lower + step - 1) // step


def test_level(offset_a, offset_b, loop, inner_ivs):
    """Dependence test between two affine offsets at loop ``loop``.

    ``offset_a``/``offset_b`` are :class:`AffineExpr` (or None for
    non-affine, which yields the conservative answer).  ``inner_ivs`` is the
    set of induction allocas of loops *nested inside* ``loop`` that enclose
    either access: these take independent values between the two accesses,
    so any unequal-coefficient term over them forces a conservative answer,
    and equal coefficients still leave the term free (different inner
    iterations), not cancelled.

    Induction variables of loops *outside* ``loop`` take equal values on
    both sides and cancel when coefficients match.
    """
    if offset_a is None or offset_b is None:
        return LevelDependence.conservative()
    if loop.canonical is None:
        return LevelDependence.conservative()

    iv = loop.canonical.induction
    coeff_a = offset_a.coefficient(iv)
    coeff_b = offset_b.coefficient(iv)

    # Terms over inner-loop ivs do not cancel: both sides range freely.
    for var in set(offset_a.coefficients) | set(offset_b.coefficients):
        if var is iv:
            continue
        if var in inner_ivs:
            if offset_a.coefficient(var) != 0 or offset_b.coefficient(var) != 0:
                return _inner_variant_test(offset_a, offset_b, loop, inner_ivs)
        else:
            # Outer-loop iv: equal on both sides; cancels only when the
            # coefficients match.
            if offset_a.coefficient(var) != offset_b.coefficient(var):
                return LevelDependence.conservative()

    delta = offset_a.constant - offset_b.constant

    if coeff_a == 0 and coeff_b == 0:
        # ZIV: offsets do not involve this loop's iv.
        if delta == 0:
            return LevelDependence(True, True, True, True)
        return LevelDependence.none()

    if coeff_a == coeff_b:
        # Strong SIV: a*t1 + c1 == a*t2 + c2  =>  t2 - t1 == delta / a.
        a = coeff_a
        if delta % a != 0:
            return LevelDependence.none()
        distance = delta // a  # iv-space distance t2 - t1
        bounds = loop_iv_range(loop)
        if bounds is not None:
            lower, upper, step = bounds
            span = upper - lower
            if abs(distance) >= span and span >= 0:
                return LevelDependence.none()
            if distance % step != 0:
                return LevelDependence.none()
        if distance == 0:
            return LevelDependence(True, False, False, True)
        if distance > 0:
            # A's iteration is earlier: forward-carried A -> B.
            return LevelDependence(False, True, False, True)
        return LevelDependence(False, False, True, True)

    # Weak SIV / MIV with differing coefficients: GCD feasibility check.
    gcd = math.gcd(abs(coeff_a), abs(coeff_b))
    if gcd and delta % gcd != 0:
        return LevelDependence.none()
    return LevelDependence.conservative()


def _inner_variant_test(offset_a, offset_b, loop, inner_ivs):
    """Fallback when inner-loop iv terms are present.

    The only refinement kept: if this loop's own iv appears with equal
    nonzero coefficients on both sides and all inner iv terms are equal
    *bounded* terms, a conflict needs a*(t2 - t1) = (inner terms + const
    difference); we can still rule out the cross-iteration case when the
    reachable difference range cannot contain a nonzero multiple of the
    coefficient.  Bounding requires static ranges for every inner iv;
    otherwise answer conservatively.
    """
    iv = loop.canonical.induction
    coeff = offset_a.coefficient(iv)
    if coeff == 0 or coeff != offset_b.coefficient(iv):
        return LevelDependence.conservative()

    # difference = a*(t1 - t2) + (inner/const terms); collect the range of
    # the non-level part of (offset_a - offset_b).
    low = offset_a.constant - offset_b.constant
    high = low
    for var in set(offset_a.coefficients) | set(offset_b.coefficients):
        if var is iv:
            continue
        term_coeff_a = offset_a.coefficient(var)
        term_coeff_b = offset_b.coefficient(var)
        inner_loop = inner_ivs.get(var)
        bounds = loop_iv_range(inner_loop) if inner_loop is not None else None
        if bounds is None:
            return LevelDependence.conservative()
        lower, upper, step = bounds
        if upper <= lower:
            continue
        max_iv = lower + ((upper - 1 - lower) // step) * step
        for term_coeff, sign in ((term_coeff_a, 1), (term_coeff_b, -1)):
            contributions = sorted(
                (sign * term_coeff * lower, sign * term_coeff * max_iv)
            )
            low += contributions[0]
            high += contributions[1]

    # Conflict at distance d (= t2 - t1) requires coeff*d within [low, high].
    intra = low <= 0 <= high
    carried_forward = high >= coeff if coeff > 0 else low <= coeff
    carried_backward = low <= -coeff if coeff > 0 else high >= -coeff
    # Wider distances only matter if |coeff*d| can fall inside the range;
    # the single-step checks above are conservative upper bounds already
    # covering |d| >= 1 whenever any multiple fits.
    max_abs = max(abs(low), abs(high))
    if max_abs >= abs(coeff):
        carried_forward = carried_forward or high > 0
        carried_backward = carried_backward or low < 0
    return LevelDependence(intra, carried_forward, carried_backward, True)
