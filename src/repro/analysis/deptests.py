"""Classic data-dependence tests over affine subscript pairs.

Given two accesses to the same object with affine offsets, decide whether
they can touch the same slot (a) in the same iteration of a given loop and
(b) across different iterations — and, when the distance is determinate, in
which direction.  Implements the standard ZIV and strong-SIV tests plus a
GCD feasibility check; everything else conservatively reports "may".

Terminology follows Allen & Kennedy: for loop L with induction variable t,
subscripts f(t) = a*t + c1 and g(t) = a*t + c2 (strong SIV) conflict exactly
when the *iv-space distance* d = (c1 - c2) / a is an integer, lies within
the loop's iteration range, and is a multiple of the step.
"""

import dataclasses
import math

from repro.ir.values import Constant


@dataclasses.dataclass
class LevelDependence:
    """Outcome of testing one pair of accesses at one loop level.

    Attributes:
        intra: the accesses may conflict within a single iteration.
        carried_forward: first access (earlier iteration) may conflict with
            the second access in a later iteration.
        carried_backward: conflict with roles swapped (second access's
            iteration earlier).
        exact: True when the result came from a determinate test rather
            than a conservative fallback.
    """

    intra: bool
    carried_forward: bool
    carried_backward: bool
    exact: bool

    @staticmethod
    def conservative():
        return LevelDependence(True, True, True, False)

    @staticmethod
    def none():
        return LevelDependence(False, False, False, True)


def _constant_value(value):
    if isinstance(value, Constant) and isinstance(value.value, int):
        return value.value
    return None


def loop_iv_range(loop):
    """(lower, upper, step) as ints when statically known, else None."""
    meta = loop.canonical
    if meta is None:
        return None
    lower = _constant_value(meta.lower)
    upper = _constant_value(meta.upper)
    step = _constant_value(meta.step)
    if lower is None or upper is None or step is None or step <= 0:
        return None
    return (lower, upper, step)


def constant_trip_count(loop):
    """Statically-known trip count, or None."""
    bounds = loop_iv_range(loop)
    if bounds is None:
        return None
    lower, upper, step = bounds
    if upper <= lower:
        return 0
    return (upper - lower + step - 1) // step


def test_level(offset_a, offset_b, loop, inner_ivs):
    """Dependence test between two affine offsets at loop ``loop``.

    ``offset_a``/``offset_b`` are :class:`AffineExpr` (or None for
    non-affine, which yields the conservative answer).  ``inner_ivs`` is the
    set of induction allocas of loops *nested inside* ``loop`` that enclose
    either access: these take independent values between the two accesses,
    so any unequal-coefficient term over them forces a conservative answer,
    and equal coefficients still leave the term free (different inner
    iterations), not cancelled.

    Induction variables of loops *outside* ``loop`` take equal values on
    both sides and cancel when coefficients match.
    """
    if offset_a is None or offset_b is None:
        return LevelDependence.conservative()
    if loop.canonical is None:
        return LevelDependence.conservative()

    iv = loop.canonical.induction
    coeff_a = offset_a.coefficient(iv)
    coeff_b = offset_b.coefficient(iv)

    # Terms over inner-loop ivs do not cancel: both sides range freely.
    for var in set(offset_a.coefficients) | set(offset_b.coefficients):
        if var is iv:
            continue
        if var in inner_ivs:
            if offset_a.coefficient(var) != 0 or offset_b.coefficient(var) != 0:
                return _inner_variant_test(offset_a, offset_b, loop, inner_ivs)
        else:
            # Outer-loop iv: equal on both sides; cancels only when the
            # coefficients match.
            if offset_a.coefficient(var) != offset_b.coefficient(var):
                return LevelDependence.conservative()

    delta = offset_a.constant - offset_b.constant

    if coeff_a == 0 and coeff_b == 0:
        # ZIV: offsets do not involve this loop's iv.
        if delta == 0:
            return LevelDependence(True, True, True, True)
        return LevelDependence.none()

    if coeff_a == coeff_b:
        # Strong SIV: a*t1 + c1 == a*t2 + c2  =>  t2 - t1 == delta / a.
        a = coeff_a
        if delta % a != 0:
            return LevelDependence.none()
        distance = delta // a  # iv-space distance t2 - t1
        bounds = loop_iv_range(loop)
        if bounds is not None:
            lower, upper, step = bounds
            span = upper - lower
            if abs(distance) >= span and span >= 0:
                return LevelDependence.none()
            if distance % step != 0:
                return LevelDependence.none()
        if distance == 0:
            return LevelDependence(True, False, False, True)
        if distance > 0:
            # A's iteration is earlier: forward-carried A -> B.
            return LevelDependence(False, True, False, True)
        return LevelDependence(False, False, True, True)

    # Weak SIV / MIV with differing coefficients: GCD feasibility check.
    gcd = math.gcd(abs(coeff_a), abs(coeff_b))
    if gcd and delta % gcd != 0:
        return LevelDependence.none()
    return LevelDependence.conservative()


#: Widest level-loop span the variant test enumerates exactly; beyond
#: it the interval approximation below answers instead.
_VARIANT_SEARCH_CAP = 4096


def _inner_variant_test(offset_a, offset_b, loop, inner_ivs):
    """Fallback when inner-loop iv terms are present.

    With this loop's own iv at equal nonzero coefficients ``a`` on both
    sides, a conflict at iv-space distance ``d`` needs the *non-level*
    part of ``offset_a - offset_b`` to equal ``a*d``.  Each bounded
    inner-iv term contributes its lower-bound value once plus multiples
    of ``coeff*step``, so the reachable non-level values are a constant
    plus multiples of the gcd of those step terms, clipped to an
    interval.  That stride matters: a row-major nest subscript
    ``N*t + i`` reaches only multiples of ``N`` across ``t``, which can
    never equal the small ``a*d`` an inner-carried conflict would need —
    the interval alone cannot see this and used to reject every perfect
    nest.  Bounding requires static ranges for every inner iv; otherwise
    answer conservatively.
    """
    iv = loop.canonical.induction
    coeff = offset_a.coefficient(iv)
    if coeff == 0 or coeff != offset_b.coefficient(iv):
        return LevelDependence.conservative()

    # Split the non-level part of (offset_a - offset_b) into a fixed
    # constant, a reachable interval around it, and the stride its
    # inner-iv terms move in.
    const = offset_a.constant - offset_b.constant
    low = 0
    high = 0
    stride = 0
    for var in set(offset_a.coefficients) | set(offset_b.coefficients):
        if var is iv:
            continue
        inner_loop = inner_ivs.get(var)
        bounds = loop_iv_range(inner_loop) if inner_loop is not None else None
        if bounds is None:
            return LevelDependence.conservative()
        lower, upper, step = bounds
        if upper <= lower:
            continue
        max_iv = lower + ((upper - 1 - lower) // step) * step
        for term_coeff, sign in (
            (offset_a.coefficient(var), 1),
            (offset_b.coefficient(var), -1),
        ):
            if term_coeff == 0:
                continue
            const += sign * term_coeff * lower
            reach = sign * term_coeff * (max_iv - lower)
            low += min(0, reach)
            high += max(0, reach)
            if max_iv > lower:
                stride = math.gcd(stride, abs(term_coeff * step))

    def feasible(distance):
        value = coeff * distance - const
        if not low <= value <= high:
            return False
        if stride:
            return value % stride == 0
        return value == 0

    level_bounds = loop_iv_range(loop)
    if level_bounds is not None:
        level_lower, level_upper, level_step = level_bounds
        span = max(level_upper - level_lower, 0)
        if span // level_step <= _VARIANT_SEARCH_CAP:
            distances = range(level_step, span, level_step)
            return LevelDependence(
                feasible(0),
                any(feasible(d) for d in distances),
                any(feasible(-d) for d in distances),
                True,
            )

    # Level loop unbounded (or too wide to enumerate): interval-only
    # approximation over the folded range, as before.
    total_low = const + low
    total_high = const + high
    intra = total_low <= 0 <= total_high
    carried_forward = (
        total_high >= coeff if coeff > 0 else total_low <= coeff
    )
    carried_backward = (
        total_low <= -coeff if coeff > 0 else total_high >= -coeff
    )
    max_abs = max(abs(total_low), abs(total_high))
    if max_abs >= abs(coeff):
        carried_forward = carried_forward or total_high > 0
        carried_backward = carried_backward or total_low < 0
    return LevelDependence(intra, carried_forward, carried_backward, True)
