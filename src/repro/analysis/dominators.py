"""Dominator and postdominator trees.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm").  The core runs on an abstract graph (entry node +
successor map), so the same code computes postdominators by running on the
reversed CFG rooted at a virtual exit node that joins every ``return``.
"""

from repro.analysis.cfg import (
    predecessors_map,
    reverse_postorder,
    successors_map,
)
from repro.util.errors import AnalysisError


class DominatorTree:
    """Immediate-dominator tree over an abstract node set.

    ``idom[n]`` is the immediate dominator of ``n`` (the root's idom is
    itself).  Nodes unreachable from the root are absent.
    """

    def __init__(self, root, idom):
        self.root = root
        self.idom = idom
        self._children = {}
        for node, parent in idom.items():
            if node is not parent:
                self._children.setdefault(parent, []).append(node)
        self._depth = {root: 0}
        # Depths via BFS down the tree.
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for child in self._children.get(node, []):
                    self._depth[child] = self._depth[node] + 1
                    next_frontier.append(child)
            frontier = next_frontier

    def contains(self, node):
        return node in self.idom

    def children(self, node):
        return list(self._children.get(node, []))

    def depth(self, node):
        return self._depth[node]

    def dominates(self, a, b):
        """True if ``a`` dominates ``b`` (reflexive)."""
        if a not in self.idom or b not in self.idom:
            raise AnalysisError("node not in dominator tree")
        node = b
        while True:
            if node is a:
                return True
            parent = self.idom[node]
            if parent is node:
                return node is a
            node = parent

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def dominators_of(self, node):
        """All dominators of ``node``, from the node up to the root."""
        chain = [node]
        while self.idom[chain[-1]] is not chain[-1]:
            chain.append(self.idom[chain[-1]])
        return chain


def _compute_idom(root, successors):
    """Cooper-Harvey-Kennedy on an abstract graph."""
    order = reverse_postorder(root, successors)
    index = {node: i for i, node in enumerate(order)}
    preds = {node: [] for node in order}
    for node in order:
        for succ in successors.get(node, []):
            if succ in index:
                preds[succ].append(node)

    idom = {root: root}

    def intersect(a, b):
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node is root:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) is not new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def compute_dominator_tree(function):
    """Dominator tree of a function's CFG."""
    succs = successors_map(function)
    idom = _compute_idom(function.entry, succs)
    return DominatorTree(function.entry, idom)


class _VirtualExit:
    """Synthetic sink joining all returns (and breaking endless loops)."""

    name = "<virtual-exit>"

    def __repr__(self):
        return "<virtual-exit>"


def compute_postdominator_tree(function):
    """Postdominator tree, rooted at a virtual exit.

    Returns ``(tree, virtual_exit)``.  Every block whose terminator is a
    ``return`` gets an edge to the virtual exit in the reversed graph's
    source role.  Blocks that cannot reach any return (infinite loops) are
    additionally connected so the tree is total; our frontend never produces
    such loops, but analyses must not crash on hand-built IR.
    """
    exit_node = _VirtualExit()
    preds = predecessors_map(function)

    # Reversed graph: successors(reversed) = predecessors(original); the
    # virtual exit's reversed-successors are the returning blocks.
    returning = [
        block for block in function.blocks
        if block.terminator is not None and block.terminator.opcode == "return"
    ]
    reversed_succs = {exit_node: list(returning)}
    for block in function.blocks:
        reversed_succs[block] = list(preds[block])

    idom = _compute_idom(exit_node, reversed_succs)

    # Connect any block unreachable in the reversed graph (no path to a
    # return) directly under the virtual exit so queries stay total.
    for block in function.blocks:
        if block not in idom:
            idom[block] = exit_node

    return DominatorTree(exit_node, idom), exit_node
