"""Live-out analysis for memory objects relative to a loop.

The planner needs to know, for each loop it wants to parallelize, which
memory objects are *live-out*: read again after the loop exits.  Live-out
scalars need a data-selector decision (who provides the final value); dead
ones can be freely privatized.
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.cfg import reachable_blocks, successors_map
from repro.analysis.memdep import collect_accesses


def blocks_after_loop(function, loop):
    """Blocks reachable from the loop's exit edges, excluding loop blocks."""
    succs = successors_map(function)
    after = set()
    for _from_block, to_block in loop.exit_edges():
        for block in reachable_blocks(to_block, succs):
            if block not in loop.blocks:
                after.add(block)
    return after


def live_out_objects(function, module, loop, alias=None, accesses=None):
    """Objects written inside ``loop`` and read after it exits."""
    alias = alias if alias is not None else AliasAnalysis(module)
    accesses = (
        accesses if accesses is not None else collect_accesses(function, alias)
    )
    after = blocks_after_loop(function, loop)

    written_inside = set()
    for access in accesses:
        if access.is_write and access.instruction.parent in loop.blocks:
            written_inside.add(id(access.obj))

    live = []
    seen = set()
    for access in accesses:
        if access.is_write or access.instruction.parent not in after:
            continue
        if id(access.obj) in written_inside and id(access.obj) not in seen:
            seen.add(id(access.obj))
            live.append(access.obj)
    return live


def objects_accessed_in_loop(function, module, loop, alias=None, accesses=None):
    """(reads, writes) object lists for accesses inside the loop."""
    alias = alias if alias is not None else AliasAnalysis(module)
    accesses = (
        accesses if accesses is not None else collect_accesses(function, alias)
    )
    reads, writes = [], []
    seen_r, seen_w = set(), set()
    for access in accesses:
        if access.instruction.parent not in loop.blocks:
            continue
        bucket, seen = (
            (writes, seen_w) if access.is_write else (reads, seen_r)
        )
        if id(access.obj) not in seen:
            seen.add(id(access.obj))
            bucket.append(access.obj)
    return reads, writes
