"""Natural loop detection and the loop nesting forest.

A back edge is a CFG edge ``latch -> header`` where ``header`` dominates
``latch``; its natural loop is the set of blocks that can reach the latch
without passing through the header.  Loops sharing a header are merged.
The nesting forest orders loops by block-set containment.
"""

from repro.analysis.cfg import predecessors_map
from repro.analysis.dominators import compute_dominator_tree
from repro.util.orderedset import OrderedSet


class Loop:
    """One natural loop.

    Attributes:
        header: the unique entry block of the loop.
        latches: blocks with a back edge to the header.
        blocks: OrderedSet of all blocks in the loop (header included).
        parent: enclosing loop, or None for top-level loops.
        children: loops nested directly inside.
        canonical: the frontend's CanonicalLoop metadata, when this loop was
            lowered from a structured ``for`` (None for hand-built loops).
    """

    def __init__(self, header, latches, blocks):
        self.header = header
        self.latches = list(latches)
        self.blocks = blocks
        self.parent = None
        self.children = []
        self.canonical = None

    @property
    def depth(self):
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains_block(self, block):
        return block in self.blocks

    def contains_instruction(self, inst):
        return inst.parent in self.blocks

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def exit_edges(self):
        """CFG edges leaving the loop, as (from_block, to_block) pairs."""
        edges = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def back_edges(self):
        return [(latch, self.header) for latch in self.latches]

    def descendants(self):
        """All loops nested inside, any depth (not including self)."""
        result = []
        stack = list(self.children)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.children)
        return result

    def __eq__(self, other):
        # Loops are identified by their header block, so Loop objects from
        # independent analysis runs over the same function compare equal.
        return isinstance(other, Loop) and self.header is other.header

    def __hash__(self):
        return hash(id(self.header))

    def __repr__(self):
        return f"<loop header={self.header.name} blocks={len(self.blocks)}>"


def find_natural_loops(function):
    """Return all natural loops of ``function`` with nesting links filled in.

    Loops are returned outermost-first (stable order by header position).
    CanonicalLoop metadata from ``function.loop_info`` is attached to the
    loop with the matching header name.
    """
    dom_tree = compute_dominator_tree(function)
    preds = predecessors_map(function)

    # Collect back edges grouped by header.
    latches_by_header = {}
    for block in function.blocks:
        if not dom_tree.contains(block):
            continue  # unreachable
        for succ in block.successors():
            if dom_tree.contains(succ) and dom_tree.dominates(succ, block):
                latches_by_header.setdefault(succ, []).append(block)

    loops = []
    for header, latches in latches_by_header.items():
        blocks = OrderedSet([header])
        worklist = [latch for latch in latches if latch is not header]
        for latch in worklist:
            blocks.add(latch)
        while worklist:
            block = worklist.pop()
            for pred in preds[block]:
                if pred not in blocks and dom_tree.contains(pred):
                    blocks.add(pred)
                    worklist.append(pred)
        loops.append(Loop(header, latches, blocks))

    # Nesting: parent is the smallest strictly-containing loop.
    for loop in loops:
        best = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and len(other.blocks) > len(loop.blocks):
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
    for loop in loops:
        if loop.parent is not None:
            loop.parent.children.append(loop)

    # Attach canonical metadata.
    for loop in loops:
        meta = function.loop_info.get(loop.header.name)
        if meta is not None:
            loop.canonical = meta

    # Deterministic order: by header position in the function.
    block_index = {b: i for i, b in enumerate(function.blocks)}
    loops.sort(key=lambda lp: block_index[lp.header])
    return loops


def loop_of_block(loops, block):
    """Innermost loop containing ``block`` (None if not in any loop)."""
    best = None
    for loop in loops:
        if block in loop.blocks:
            if best is None or len(loop.blocks) < len(best.blocks):
                best = loop
    return best


def enclosing_loops(loops, inst):
    """Loops containing ``inst``, innermost first."""
    chain = []
    loop = loop_of_block(loops, inst.parent)
    while loop is not None:
        chain.append(loop)
        loop = loop.parent
    return chain


def common_loops(loops, inst_a, inst_b):
    """Loops containing both instructions, innermost first."""
    set_b = set(enclosing_loops(loops, inst_b))
    return [loop for loop in enclosing_loops(loops, inst_a) if loop in set_b]
