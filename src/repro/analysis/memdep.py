"""Memory dependence analysis.

Produces the set of memory dependences (RAW/WAR/WAW) between instruction
pairs of one function, each classified as *loop-independent* (can occur
within a single iteration of every common loop — or outside loops entirely)
and/or *loop-carried* at each common enclosing loop.

Precision comes from three sources, in order:

1. object disambiguation (accesses to distinct objects never conflict),
2. affine subscript tests (ZIV / strong SIV / GCD, `repro.analysis.deptests`),
3. CFG reachability (a dependence needs an execution path from source to
   destination that does not re-enter the loop for the loop-independent
   component).

Everything that falls outside these (indirect subscripts like ``a[key[i]]``,
call effects) is conservatively "may depend" — which is exactly the situation
the PS-PDG's programmer-declared semantics later relaxes.
"""

import dataclasses

from repro.analysis.alias import CONSOLE, AliasAnalysis
from repro.analysis.cfg import can_reach, successors_map
from repro.analysis.deptests import LevelDependence, test_level
from repro.analysis.loops import (
    common_loops,
    enclosing_loops,
    find_natural_loops,
)
from repro.analysis.subscripts import affine_offset, induction_alloca_map
from repro.ir.instructions import Call, Load, Print, Store


@dataclasses.dataclass
class MemoryAccess:
    """One instruction's effect on one memory object."""

    instruction: object
    obj: object
    is_write: bool
    offset: object  # AffineExpr or None (unknown / whole object)

    def __repr__(self):
        kind = "write" if self.is_write else "read"
        return f"<{kind} {self.obj!r} by #{self.instruction.uid}>"


@dataclasses.dataclass
class MemoryDependence:
    """A dependence edge between two instructions on one object."""

    source: object
    destination: object
    kind: str  # "RAW" | "WAR" | "WAW"
    obj: object
    loop_independent: bool
    carried_loops: list  # Loop objects, innermost first

    def is_loop_carried_at(self, loop):
        return loop in self.carried_loops

    def __repr__(self):
        carried = ",".join(l.header.name for l in self.carried_loops)
        return (
            f"<{self.kind} #{self.source.uid}->#{self.destination.uid} "
            f"on {self.obj!r} intra={self.loop_independent} "
            f"carried=[{carried}]>"
        )


def collect_accesses(function, alias):
    """All memory accesses of ``function``, with affine offsets when known."""
    loops = find_natural_loops(function)
    iv_map = induction_alloca_map(loops)
    accesses = []
    for inst in function.instructions():
        if isinstance(inst, Load):
            obj = alias.base_object(inst.pointer, function)
            offset = affine_offset(inst.pointer, set(iv_map))
            accesses.append(MemoryAccess(inst, obj, False, offset))
        elif isinstance(inst, Store):
            obj = alias.base_object(inst.pointer, function)
            offset = affine_offset(inst.pointer, set(iv_map))
            accesses.append(MemoryAccess(inst, obj, True, offset))
        elif isinstance(inst, Print):
            accesses.append(MemoryAccess(inst, CONSOLE, True, None))
        elif isinstance(inst, Call):
            reads, writes = alias.call_effects(inst, function)
            for obj in sorted(reads, key=id):
                accesses.append(MemoryAccess(inst, obj, False, None))
            for obj in sorted(writes, key=id):
                accesses.append(MemoryAccess(inst, obj, True, None))
    return accesses


def _dependence_kind(src_write, dst_write):
    if src_write and dst_write:
        return "WAW"
    if src_write:
        return "RAW"
    if dst_write:
        return "WAR"
    return None


class MemoryDependenceAnalysis:
    """Computes all memory dependences of one function."""

    def __init__(self, function, module, alias=None):
        self.function = function
        self.module = module
        self.alias = alias if alias is not None else AliasAnalysis(module)
        self.loops = find_natural_loops(function)
        self._iv_map = induction_alloca_map(self.loops)
        self._succs = successors_map(function)
        self._order = {}
        for block_index, block in enumerate(function.blocks):
            for position, inst in enumerate(block.instructions):
                self._order[inst] = (block_index, position)

    def run(self):
        """Return the list of :class:`MemoryDependence` edges."""
        accesses = collect_accesses(self.function, self.alias)
        by_object = {}
        for access in accesses:
            by_object.setdefault(id(access.obj), []).append(access)

        dependences = []
        for group in by_object.values():
            for i, first in enumerate(group):
                for second in group[i:]:
                    if not first.is_write and not second.is_write:
                        continue
                    dependences.extend(self._pair_dependences(first, second))
        return dependences

    # -- per-pair logic ----------------------------------------------------

    def _pair_dependences(self, acc_a, acc_b):
        results = []
        same_instruction = acc_a.instruction is acc_b.instruction
        directions = [(acc_a, acc_b)]
        if not same_instruction:
            directions.append((acc_b, acc_a))
        for src, dst in directions:
            kind = _dependence_kind(src.is_write, dst.is_write)
            if kind is None:
                continue
            edge = self._directed_dependence(src, dst, same_instruction)
            if edge is not None:
                edge_obj = MemoryDependence(
                    src.instruction,
                    dst.instruction,
                    kind,
                    src.obj,
                    edge[0],
                    edge[1],
                )
                results.append(edge_obj)
        return results

    def _directed_dependence(self, src, dst, same_instruction):
        """(loop_independent, carried_loops) or None if infeasible."""
        commons = common_loops(self.loops, src.instruction, dst.instruction)

        carried = []
        for loop in commons:
            level = self._test_at_level(src, dst, loop)
            if level.carried_forward:
                carried.append(loop)

        loop_independent = False
        if not same_instruction:
            loop_independent = self._loop_independent_feasible(
                src, dst, commons
            )

        if not loop_independent and not carried:
            return None
        return (loop_independent, carried)

    def _test_at_level(self, src, dst, loop):
        inner_ivs = {}
        for enclosed in loop.descendants():
            if enclosed.canonical is not None:
                inner_ivs[enclosed.canonical.induction] = enclosed
        return test_level(src.offset, dst.offset, loop, inner_ivs)

    def _loop_independent_feasible(self, src, dst, commons):
        # Address equality within one iteration of every common loop.
        if commons:
            innermost = commons[0]
            level = self._test_at_level(src, dst, innermost)
            if not level.intra:
                return False
            banned = set(innermost.back_edges())
        else:
            if not self._offsets_may_be_equal(src, dst):
                return False
            banned = set()

        return self._reaches_in_order(src.instruction, dst.instruction, banned)

    def _offsets_may_be_equal(self, src, dst):
        if src.offset is None or dst.offset is None:
            return True
        difference = src.offset.add(dst.offset.negate())
        if difference.is_constant():
            return difference.constant == 0
        return True

    def _reaches_in_order(self, src_inst, dst_inst, banned_edges):
        src_block = src_inst.parent
        dst_block = dst_inst.parent
        if src_block is dst_block:
            if self._order[src_inst][1] < self._order[dst_inst][1]:
                return True
            # Same block, src after dst: an intra path needs a cycle that
            # re-enters the block without the banned edges.
            return can_reach(
                src_block, dst_block, self._succs, frozenset(banned_edges)
            )
        return can_reach(
            src_block, dst_block, self._succs, frozenset(banned_edges)
        )


def compute_memory_dependences(function, module, alias=None):
    """Convenience wrapper: run the analysis and return the edges."""
    return MemoryDependenceAnalysis(function, module, alias).run()
