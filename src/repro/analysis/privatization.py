"""Sequential scalar-privatization analysis.

A scalar object can be privatized per-iteration (breaking its WAR/WAW and
spurious RAW loop-carried dependences) when every read of it inside the
loop observes a value written *earlier in the same iteration* and the
object is dead after the loop.  This is standard automatic-parallelizer
machinery (NOELLE provides it), so both the PDG baseline and the PS-PDG
planner get it; the PS-PDG's advantage must come from declared semantics,
not from withholding textbook analyses from the baseline.

The sufficient condition implemented (conservative, documented):

* the object is a scalar alloca;
* no call inside the loop touches it;
* every load inside the loop is preceded (same block) or dominated by a
  store to it that is also inside the loop;
* the object is not live-out of the loop (no reads after the loop exits).
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.dominators import compute_dominator_tree
from repro.analysis.liveness import live_out_objects
from repro.analysis.memdep import collect_accesses
from repro.ir.instructions import Load, Store


def sequentially_privatizable_objects(
    function, module, loop, alias=None, accesses=None
):
    """Objects a sequential compiler may privatize per iteration of ``loop``."""
    alias = alias if alias is not None else AliasAnalysis(module)
    accesses = (
        accesses if accesses is not None else collect_accesses(function, alias)
    )
    dom_tree = compute_dominator_tree(function)
    live_out = {id(obj) for obj in live_out_objects(
        function, module, loop, alias, accesses
    )}

    per_object = {}
    for access in accesses:
        if access.instruction.parent not in loop.blocks:
            continue
        per_object.setdefault(id(access.obj), []).append(access)

    position = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[inst] = index

    privatizable = []
    for group in per_object.values():
        obj = group[0].obj
        if not obj.is_scalar() or id(obj) in live_out:
            continue
        loads = [
            a.instruction for a in group if isinstance(a.instruction, Load)
        ]
        stores = [
            a.instruction for a in group if isinstance(a.instruction, Store)
        ]
        if len(loads) + len(stores) != len(group):
            continue  # a call touches the object
        if not stores:
            continue  # read-only: nothing to privatize (no deps either)
        if all(_defined_before(load, stores, dom_tree, position)
               for load in loads):
            privatizable.append(obj)
    return privatizable


def _defined_before(load, stores, dom_tree, position):
    for store in stores:
        if store.parent is load.parent:
            if position[store] < position[load]:
                return True
        elif dom_tree.contains(store.parent) and dom_tree.contains(
            load.parent
        ):
            if dom_tree.strictly_dominates(store.parent, load.parent):
                return True
    return False
