"""Sequential scalar-reduction recognition.

A PDG-based automatic parallelizer (NOELLE's DOALL does this) can break the
loop-carried cycle of ``sum = sum op expr`` when it proves that the scalar
is only used by a single commutative-associative update chain inside the
loop.  We implement the same recognition so that the *PDG baseline* in the
evaluation is not artificially weak: the PS-PDG's advantage must come from
semantics a sequential analysis cannot recover (criticals, privatization of
conditionally-written arrays, orderless sections...), not from us refusing
the PDG a standard technique.
"""

import dataclasses

from repro.analysis.alias import AliasAnalysis
from repro.analysis.memdep import collect_accesses
from repro.ir.instructions import BinaryOp, Load, Store

# Commutative, associative operators with a two-sided identity.
REDUCIBLE_OPS = {
    "add": {"int": 0, "float": 0.0},
    "mul": {"int": 1, "float": 1.0},
    "min": {"int": None, "float": float("inf")},
    "max": {"int": None, "float": float("-inf")},
    "and": {"int": -1},
    "or": {"int": 0},
    "xor": {"int": 0},
}


@dataclasses.dataclass
class ScalarReduction:
    """A recognized reduction of one scalar object within one loop."""

    obj: object
    op: str
    load: object
    store: object

    def identity_value(self, type_name):
        return REDUCIBLE_OPS[self.op].get(type_name)

    def __repr__(self):
        return f"<reduction {self.op} on {self.obj!r}>"


def find_scalar_reductions(function, module, loop, alias=None, accesses=None):
    """Reductions of scalar objects recognizable inside ``loop``.

    The pattern required, for object ``O``:

    * every access to ``O`` inside the loop is either one specific ``load``
      or one specific ``store`` (no calls touching ``O``),
    * the store's value is ``BinaryOp(op, load_result, x)`` (either operand
      order) with a reducible ``op``,
    * ``x`` does not (transitively, through registers) depend on the load,
    * load and store are in the same basic block, so each update is atomic
      with respect to control flow within the iteration.

    Conditional updates (``if (...) sum += e``) qualify: skipping an update
    is equivalent to merging the identity.
    """
    alias = alias if alias is not None else AliasAnalysis(module)
    accesses = (
        accesses if accesses is not None else collect_accesses(function, alias)
    )

    per_object = {}
    for access in accesses:
        if access.instruction.parent not in loop.blocks:
            continue
        per_object.setdefault(id(access.obj), []).append(access)

    reductions = []
    for group in per_object.values():
        obj = group[0].obj
        if not obj.is_scalar():
            continue
        loads = [a for a in group if isinstance(a.instruction, Load)]
        stores = [a for a in group if isinstance(a.instruction, Store)]
        if len(loads) != 1 or len(stores) != 1:
            continue
        if len(group) != 2:
            continue  # extra accesses (e.g. a call touching the object)
        load = loads[0].instruction
        store = stores[0].instruction
        if load.parent is not store.parent:
            continue
        update = store.value
        if not isinstance(update, BinaryOp) or update.op not in REDUCIBLE_OPS:
            continue
        if update.lhs is load:
            other = update.rhs
        elif update.rhs is load:
            other = update.lhs
        else:
            continue
        if _depends_on(other, load):
            continue
        reductions.append(ScalarReduction(obj, update.op, load, store))
    return reductions


def _depends_on(value, target, _seen=None):
    """Transitive register dependence of ``value`` on ``target``."""
    if _seen is None:
        _seen = set()
    if value is target:
        return True
    if id(value) in _seen or not hasattr(value, "operands"):
        return False
    _seen.add(id(value))
    return any(_depends_on(op, target, _seen) for op in value.operands)
