"""Tarjan's strongly-connected-components algorithm (iterative).

Works over an explicit adjacency mapping so it can serve the PDG, the
PS-PDG, and tests alike.  Components are returned in reverse topological
order of the condensation (Tarjan's natural output order); each component
preserves discovery order internally, so results are deterministic.
"""


def strongly_connected_components(nodes, successors):
    """Compute SCCs of the graph ``(nodes, successors)``.

    Args:
        nodes: iterable of hashable nodes (iteration order fixes tie-breaks).
        successors: mapping node -> iterable of successor nodes.

    Returns:
        List of lists of nodes; reverse-topological order across components.
    """
    index_counter = [0]
    indices = {}
    lowlinks = {}
    on_stack = set()
    stack = []
    components = []

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(successors.get(root, ())))]
        indices[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node or member == node:
                        break
                component.reverse()
                components.append(component)
    return components


def condensation(nodes, successors):
    """SCCs plus the edges between them.

    Returns ``(components, component_of, edges)`` where ``components`` is
    the SCC list (reverse topological), ``component_of`` maps node ->
    component index, and ``edges`` is a set of (src_component,
    dst_component) pairs excluding self-edges.
    """
    components = strongly_connected_components(nodes, successors)
    component_of = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index
    edges = set()
    for node in nodes:
        for succ in successors.get(node, ()):
            src, dst = component_of[node], component_of[succ]
            if src != dst:
                edges.add((src, dst))
    return components, component_of, edges
