"""Affine subscript analysis.

For dependence testing we want a memory access's *slot offset* within its
base object expressed as an affine function of the enclosing canonical-loop
induction variables::

    offset = constant + sum_i coefficient_i * iv_i

``iv_i`` stands for the runtime *value* of loop ``i``'s induction variable
(not the normalized iteration number); the dependence tests account for the
loop's lower bound and step themselves.

The analysis walks the GEP chain, multiplying each index by the element
stride, and symbolically evaluates index expressions over: integer
constants, loads of induction-variable allocas (inside their loop body,
before the latch increments them), additions, subtractions, and
multiplications by constants.  Anything else — an indirect index like
``key[i]``, a value loaded from a non-induction variable — makes the
subscript *non-affine*, and the dependence tests fall back to "may
conflict", exactly like a production compiler would.
"""

import dataclasses

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    GetElementPtr,
    Load,
    UnaryOp,
)
from repro.ir.values import Constant


@dataclasses.dataclass
class AffineExpr:
    """``constant + sum(coefficients[iv_alloca] * iv)`` over int ivs."""

    constant: int
    coefficients: dict  # Alloca -> int coefficient (zero entries removed)

    @staticmethod
    def const(value):
        return AffineExpr(int(value), {})

    @staticmethod
    def variable(alloca):
        return AffineExpr(0, {alloca: 1})

    def add(self, other):
        coeffs = dict(self.coefficients)
        for var, coeff in other.coefficients.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
            if coeffs[var] == 0:
                del coeffs[var]
        return AffineExpr(self.constant + other.constant, coeffs)

    def negate(self):
        return AffineExpr(
            -self.constant,
            {var: -coeff for var, coeff in self.coefficients.items()},
        )

    def scale(self, factor):
        factor = int(factor)
        if factor == 0:
            return AffineExpr.const(0)
        return AffineExpr(
            self.constant * factor,
            {var: coeff * factor for var, coeff in self.coefficients.items()},
        )

    def coefficient(self, alloca):
        return self.coefficients.get(alloca, 0)

    def is_constant(self):
        return not self.coefficients

    def __repr__(self):
        terms = [str(self.constant)]
        for var, coeff in self.coefficients.items():
            name = var.var_name or f"%{var.uid}"
            terms.append(f"{coeff}*{name}")
        return " + ".join(terms)


def _affine_of_value(value, induction_allocas):
    """Affine form of an integer SSA value, or None if non-affine."""
    if isinstance(value, Constant):
        if isinstance(value.value, bool) or not isinstance(value.value, int):
            return None
        return AffineExpr.const(value.value)
    if isinstance(value, Load):
        pointer = value.pointer
        if isinstance(pointer, Alloca) and pointer in induction_allocas:
            return AffineExpr.variable(pointer)
        return None
    if isinstance(value, UnaryOp) and value.op == "neg":
        inner = _affine_of_value(value.operand, induction_allocas)
        return inner.negate() if inner is not None else None
    if isinstance(value, BinaryOp):
        lhs = _affine_of_value(value.lhs, induction_allocas)
        rhs = _affine_of_value(value.rhs, induction_allocas)
        if value.op == "add" and lhs is not None and rhs is not None:
            return lhs.add(rhs)
        if value.op == "sub" and lhs is not None and rhs is not None:
            return lhs.add(rhs.negate())
        if value.op == "mul":
            if lhs is not None and rhs is not None:
                if rhs.is_constant():
                    return lhs.scale(rhs.constant)
                if lhs.is_constant():
                    return rhs.scale(lhs.constant)
            return None
        if value.op == "shl" and lhs is not None and rhs is not None:
            if rhs.is_constant() and rhs.constant >= 0:
                return lhs.scale(1 << rhs.constant)
            return None
    return None


def affine_offset(pointer, induction_allocas):
    """Affine slot offset of ``pointer`` within its base object.

    ``induction_allocas`` is the set of allocas serving as canonical-loop
    induction variables for loops enclosing the access.  Returns ``None``
    when any GEP index along the chain is non-affine.
    """
    offset = AffineExpr.const(0)
    value = pointer
    while isinstance(value, GetElementPtr):
        stride = value.pointer.type.pointee.element.slots()
        index = _affine_of_value(value.index, induction_allocas)
        if index is None:
            return None
        offset = offset.add(index.scale(stride))
        value = value.pointer
    return offset


def induction_alloca_map(loops):
    """Map induction alloca -> loop, for loops with canonical metadata."""
    mapping = {}
    for loop in loops:
        if loop.canonical is not None:
            mapping[loop.canonical.induction] = loop
    return mapping
