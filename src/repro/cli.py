"""Command-line interface: the Session pipeline from the shell.

Subcommands mirror the pipeline's stages::

    python -m repro compile examples/histogram.mop --ir
    python -m repro plan    examples/histogram.mop
    python -m repro run     examples/histogram.mop --plan PS-PDG --verify
    python -m repro report  examples/histogram.mop IS MG

A program argument is either a path to a MiniOMP/Cilk source file or the
name of a built-in NAS mini-kernel (``IS``, ``EP``, ``CG``, ``MG``,
``FT``, ``BT``, ``SP``, ``LU``).  All subcommands share one
:class:`repro.Session` per program, so e.g. ``report`` builds each graph
exactly once for both figures.
"""

import argparse
import pathlib
import sys

from repro.planner.machine import MachineModel
from repro.session import Session
from repro.util.errors import ReproError

_ABSTRACTION_ORDER = ("Sequential", "OpenMP", "PDG", "J&K", "PS-PDG")


def _kernel_names():
    from repro.workloads import kernel_names

    return kernel_names()


def _build_session(program, args):
    """A session for a source path or a NAS kernel name."""
    overrides = {}
    if getattr(args, "function", None):
        overrides["function_name"] = args.function
    if getattr(args, "cores", None):
        chunk_sizes = MachineModel().chunk_sizes
        if getattr(args, "chunk_sizes", None):
            chunk_sizes = tuple(args.chunk_sizes)
        overrides["machine"] = MachineModel(
            cores=args.cores, chunk_sizes=chunk_sizes
        )
    if getattr(args, "workers", None):
        overrides["workers"] = args.workers
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "backend", None):
        overrides["backend"] = args.backend
    if getattr(args, "schedule", None):
        overrides["schedule"] = args.schedule
    if getattr(args, "chunk", None) is not None:
        overrides["chunk"] = args.chunk
    if getattr(args, "opt", None) is not None:
        overrides["opt_level"] = args.opt
    if getattr(args, "compile_regions", None) is not None:
        overrides["compile_regions"] = args.compile_regions
    if getattr(args, "adaptive", None) is not None:
        overrides["adaptive"] = args.adaptive
    if getattr(args, "calibrate", None) is not None:
        overrides["calibrate"] = args.calibrate
    if getattr(args, "profile_path", None) is not None:
        overrides["profile_path"] = args.profile_path

    path = pathlib.Path(program)
    if path.exists():
        return Session.from_source(
            path.read_text(), name=path.stem, **overrides
        )
    if program in _kernel_names():
        return Session.from_kernel(program, **overrides)
    raise SystemExit(
        f"error: {program!r} is neither a source file nor a NAS kernel "
        f"(kernels: {', '.join(_kernel_names())})"
    )


# -- subcommands ---------------------------------------------------------------


def _cmd_compile(args):
    session = _build_session(args.program, args)
    module = session.module
    if args.ir:
        from repro.ir.printer import print_module

        print(print_module(module))
    stats = session.diagnostics.stats("module")
    print(
        f"{session.config.name}: {stats.get('functions', '?')} functions, "
        f"{stats.get('instructions', '?')} instructions",
        file=sys.stderr if args.ir else sys.stdout,
    )
    if args.pspdg:
        print(f"PS-PDG: {session.pspdg.statistics()}")
    return 0


def _cmd_plan(args):
    session = _build_session(args.program, args)
    results = session.critical_paths()
    print(f"ideal-machine critical paths for {session.config.name!r}:")
    for name in _ABSTRACTION_ORDER:
        if name not in results:
            continue
        entry = results[name]
        speedup = entry["speedup"]
        ratio = f"{speedup:7.3f}x" if speedup else "   --   "
        print(f"  {name:10} CP={entry['critical_path']:>9}  {ratio}")
    plan = session.optimized_plan(args.abstraction)
    print()
    print(plan.describe())
    if session.config.opt_level:
        print()
        print(session.optimization(args.abstraction).report.describe())
    if args.diagnostics:
        print()
        print(session.describe())
    return 0


def _cmd_run(args):
    if getattr(args, "faults", None):
        from repro.runtime import knobs

        knobs.REPRO_FAULTS.value = args.faults
    session = _build_session(args.program, args)
    plan = None if args.plan in ("source", "OpenMP") else args.plan
    result = session.run(plan, workers=args.workers, seed=args.seed,
                         backend=args.backend, schedule=args.schedule,
                         chunk=args.chunk)
    for line in result.formatted_output():
        print(line)
    print(f"[{result.steps} dynamic instructions]", file=sys.stderr)
    for event in getattr(result, "replan_events", ()):
        reasons = ", ".join(
            f"{reason['kind']} ({reason['ratio']}x > "
            f"{reason['threshold']}x)"
            for reason in event["reasons"]
        )
        changed = ", ".join(
            change["region"] for change in event["changes"]
        )
        print(
            f"[replan] after {event['after']}: {reasons} -> "
            f"re-priced {changed}",
            file=sys.stderr,
        )
    if args.diagnostics:
        print(session.diagnostics.parallel_report(), file=sys.stderr)
    if args.verify:
        expected = session.execution.formatted_output()
        if result.formatted_output() == expected:
            print("[verify] parallel output matches sequential",
                  file=sys.stderr)
        else:
            print(
                f"[verify] MISMATCH: sequential said {expected}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_profile(args):
    """Print the calibration profile: measured vs. static coefficients."""
    from repro.planner.calibration import CalibrationStore
    from repro.planner.machine import DEFAULT_MACHINE
    from repro.runtime import knobs

    path = args.profile_path
    if path is None:
        knobs.refresh()
        path = knobs.REPRO_PROFILE.value or None
    store = CalibrationStore(path)
    print(store.describe(DEFAULT_MACHINE))
    if args.program:
        session = _build_session(args.program, args)
        key = session.program_key()
        payload_bytes, prelude_warm, compiled_speedup = (
            store.region_feedback(key)
        )
        print()
        print(f"region feedback for {session.config.name!r} ({key[:12]}…):")
        if not payload_bytes and not prelude_warm and not compiled_speedup:
            print("  (no observed regions for this program)")
        for label in sorted(
            set(payload_bytes) | set(prelude_warm) | set(compiled_speedup)
        ):
            parts = []
            if label in payload_bytes:
                parts.append(f"bytes/dispatch={payload_bytes[label]}")
            if label in prelude_warm:
                parts.append(f"warm={prelude_warm[label]:.2f}")
            if label in compiled_speedup:
                parts.append(f"compiled={compiled_speedup[label]:.2f}x")
            print(f"  {label:16} {' '.join(parts)}")
    return 0


def _cmd_knobs(args):
    from repro.runtime import knobs

    knobs.refresh()  # report what the *current* environment says
    if args.markdown:
        print(knobs.markdown_table())
        return 0
    snap = knobs.snapshot()
    width = max(len(name) for name in snap)
    for name, info in snap.items():
        if isinstance(info["value"], bool):
            state = "on " if info["value"] else "off"
            default = "on" if info["default"] else "off"
        else:  # typed settings print their actual value
            state = repr(info["value"])
            default = repr(info["default"])
        doc = " ".join(info["doc"].split())
        print(f"{name:<{width}}  {state} (default {default})  {doc}")
    return 0


def _cmd_report(args):
    programs = args.programs or list(_kernel_names())
    sessions = [_build_session(program, args) for program in programs]

    print("Fig. 13 — total parallelization options considered")
    header = f"{'bench':8} {'OpenMP':>8} {'PDG':>8} {'J&K':>8} {'PS-PDG':>8}"
    print(header)
    print("-" * len(header))
    for session in sessions:
        totals = session.options().totals
        print(
            f"{session.config.name:8} {totals.get('OpenMP', 0):>8} "
            f"{totals.get('PDG', 0):>8} {totals.get('J&K', 0):>8} "
            f"{totals.get('PS-PDG', 0):>8}"
        )

    print()
    print("Fig. 14 — critical-path reduction over OpenMP (ideal machine)")
    header = f"{'bench':8} {'PDG':>9} {'J&K':>9} {'PS-PDG':>9}"
    print(header)
    print("-" * len(header))
    for session in sessions:
        results = session.critical_paths()
        print(
            f"{session.config.name:8} "
            f"{results['PDG']['speedup']:>9.3f} "
            f"{results['J&K']['speedup']:>9.3f} "
            f"{results['PS-PDG']['speedup']:>9.3f}"
        )

    print()
    level = sessions[0].config.opt_level if sessions else 0
    print(f"Optimization summary at -O{int(level)} (PS-PDG plan)")
    header = (
        f"{'bench':8} {'regions':>8} {'fused':>6} {'sync-rm':>8} "
        f"{'serial':>7} {'xchg':>5} {'skew':>5} {'tile':>5} "
        f"{'spec':>5} {'veto':>5} {'rej':>4} {'opt-ms':>7}"
    )
    print(header)
    print("-" * len(header))
    for session in sessions:
        result = session.optimization("PS-PDG")
        summary = result.report.summary()
        rejections = sum(result.report.rejection_counts().values())
        millis = sum(result.report.pass_seconds.values()) * 1000.0
        print(
            f"{session.config.name:8} {len(result.plan.regions):>8} "
            f"{summary['fused']:>6} {summary['syncs_removed']:>8} "
            f"{summary['serialized']:>7} {summary['interchanged']:>5} "
            f"{summary['skewed']:>5} {summary['tiled']:>5} "
            f"{summary['speculated']:>5} {summary['vetoed']:>5} "
            f"{rejections:>4} {millis:>7.1f}"
        )

    print()
    print("Per-pass wall time / rejections")
    passes = {}
    for session in sessions:
        report = session.optimization("PS-PDG").report
        counts = report.rejection_counts()
        for name, seconds in report.pass_seconds.items():
            total_s, total_r = passes.get(name, (0.0, 0))
            passes[name] = (total_s + seconds, total_r + counts.get(name, 0))
    header = f"{'pass':28} {'wall-ms':>8} {'rejected':>9}"
    print(header)
    print("-" * len(header))
    for name, (seconds, rejected) in sorted(passes.items()):
        print(f"{name:28} {seconds * 1000.0:>8.1f} {rejected:>9}")
    if not passes:
        print("(no passes ran at this level)")

    if args.diagnostics:
        for session in sessions:
            print()
            print(session.describe())
    return 0


# -- argument parsing ----------------------------------------------------------


def _add_opt_argument(parser):
    parser.add_argument(
        "-O", "--opt", type=int, choices=(0, 1, 2, 3), default=None,
        help="optimization level: -O0 none, -O1 sync elimination + "
             "small-region serialization, -O2 adds parallel-region "
             "fusion, -O3 adds loop interchange, skew-enabled fusion, "
             "machine-model tiling, and oracle-validated speculation "
             "(default: 0)",
    )


def _add_machine_arguments(parser):
    parser.add_argument(
        "--cores", type=int, default=None,
        help="machine-model core count (default: 56)",
    )
    parser.add_argument(
        "--chunk-sizes", type=int, nargs="+", default=None,
        dest="chunk_sizes", help="DOALL chunk sizes to consider",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PS-PDG pipeline: compile, plan, run, and report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile source to annotated IR (and optionally dump it)"
    )
    p_compile.add_argument("program", help="source file or NAS kernel name")
    p_compile.add_argument("--function", default=None)
    p_compile.add_argument(
        "--ir", action="store_true", help="print the IR module"
    )
    p_compile.add_argument(
        "--pspdg", action="store_true", help="also build and summarize the PS-PDG"
    )
    p_compile.set_defaults(func=_cmd_compile)

    p_plan = sub.add_parser(
        "plan", help="select the best plan per abstraction (Fig. 14 machinery)"
    )
    p_plan.add_argument("program")
    p_plan.add_argument("--function", default=None)
    p_plan.add_argument(
        "--abstraction", default="PS-PDG",
        choices=("OpenMP", "PDG", "J&K", "PS-PDG"),
        help="whose chosen plan to print (default: PS-PDG)",
    )
    p_plan.add_argument(
        "--diagnostics", action="store_true",
        help="print the per-stage time/stats table",
    )
    _add_opt_argument(p_plan)
    _add_machine_arguments(p_plan)
    p_plan.set_defaults(func=_cmd_plan)

    p_run = sub.add_parser(
        "run", help="execute a plan on the simulated parallel machine"
    )
    p_run.add_argument("program")
    p_run.add_argument("--function", default=None)
    p_run.add_argument(
        "--plan", default="source",
        choices=("source", "OpenMP", "PDG", "J&K", "PS-PDG"),
        help="which plan to execute (default: the developer's source plan)",
    )
    p_run.add_argument("--workers", type=int, default=4)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--backend", default=None,
        choices=("simulated", "threads", "processes"),
        help="execution backend (default: simulated — the seeded "
             "interleaving oracle; threads/processes run for real)",
    )
    p_run.add_argument(
        "--schedule", default=None,
        choices=("static", "dynamic", "guided"),
        help="chunk schedule shared by all backends (default: static)",
    )
    p_run.add_argument(
        "--chunk", type=int, default=None,
        help="chunk-size override (default: each loop recipe's own)",
    )
    p_run.add_argument(
        "--compile", dest="compile_regions",
        action=argparse.BooleanOptionalAction, default=None,
        help="run region bodies through the exec-compiled codegen path "
             "(--no-compile forces the interpreter; default: the "
             "REPRO_COMPILE environment knob)",
    )
    p_run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec for this run (same grammar as the "
             "REPRO_FAULTS knob, e.g. 'crash:region=0:worker=1'); the "
             "supervised processes backend retries/fails over and the "
             "--diagnostics table shows the recovery columns",
    )
    p_run.add_argument(
        "--adaptive", action=argparse.BooleanOptionalAction, default=None,
        help="mid-run replanning: re-derive the remaining regions' "
             "cost decisions when a dispatch diverges from the plan's "
             "predictions (default: the REPRO_ADAPTIVE knob)",
    )
    p_run.add_argument(
        "--calibrate", action=argparse.BooleanOptionalAction, default=None,
        help="distill this run's measurements into the calibration "
             "profile so later plans use measured coefficients "
             "(default: the REPRO_CALIBRATE knob)",
    )
    p_run.add_argument(
        "--profile", dest="profile_path", default=None, metavar="PATH",
        help="calibration profile JSON to load/append (default: the "
             "REPRO_PROFILE knob; empty = in-memory only)",
    )
    p_run.add_argument(
        "--verify", action="store_true",
        help="check the parallel output against the sequential run",
    )
    p_run.add_argument(
        "--diagnostics", action="store_true",
        help="print the per-region, per-worker execution table",
    )
    _add_opt_argument(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser(
        "report", help="regenerate Fig. 13 + Fig. 14 tables"
    )
    p_report.add_argument(
        "programs", nargs="*",
        help="source files and/or kernel names (default: all NAS kernels)",
    )
    p_report.add_argument("--function", default=None)
    p_report.add_argument("--diagnostics", action="store_true")
    _add_opt_argument(p_report)
    _add_machine_arguments(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_profile = sub.add_parser(
        "profile", help="print the calibration profile: measured vs. "
                        "static machine-model coefficients"
    )
    p_profile.add_argument(
        "program", nargs="?", default=None,
        help="optional source file / kernel name: also print the "
             "per-region feedback remembered for that program",
    )
    p_profile.add_argument("--function", default=None)
    p_profile.add_argument(
        "--profile", dest="profile_path", default=None, metavar="PATH",
        help="profile JSON to read (default: the REPRO_PROFILE knob)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_knobs = sub.add_parser(
        "knobs", help="list the runtime's environment knobs and their "
                      "current values"
    )
    p_knobs.add_argument(
        "--markdown", action="store_true",
        help="emit the README's knob table (paste on registry changes)",
    )
    p_knobs.set_defaults(func=_cmd_knobs)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
