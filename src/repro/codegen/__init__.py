"""Region-body compiler: DOALL chunks lowered to exec-compiled Python.

The parallel backends execute a worker's chunk of a planned loop by
walking the IR instruction-by-instruction (``_WorkerInterpreter
.run_chunk``).  This package lowers a region's member loops into one
generated Python function per ``(loop, logged)`` pair — the same storage
slots, the same write-log marks, the same step counts, the same
``EmulationError`` conditions — and ``exec``-compiles it so workers run
native bytecode instead of the dispatch loop.

Division of labor:

* :mod:`repro.codegen.lower` — the lowering visitor over
  ``ir/instructions.py`` types; produces the chunk source and compiles
  it (or raises :class:`~repro.codegen.lower.Unsupported`).
* :mod:`repro.codegen.cache` — per-module compiled-chunk cache plus the
  compile/hit/fallback/time counters diagnostics report.
* :mod:`repro.codegen.runtime` — the helpers generated code closes
  over, the interpreter-fallback driver :func:`execute_chunk`, and the
  ``VERIFY_COMPILED`` differential oracle.

The contract with the interpreter is *fallback, never fail*: any loop
the lowering refuses (or any codegen error) runs through the
interpreter exactly as before, per region member.
"""

from repro.codegen.cache import compiled_chunk, reset, stats
from repro.codegen.lower import CompiledChunk, Unsupported, compile_chunk
from repro.codegen.runtime import Bailout, execute_chunk

__all__ = [
    "Bailout",
    "CompiledChunk",
    "Unsupported",
    "compile_chunk",
    "compiled_chunk",
    "execute_chunk",
    "reset",
    "stats",
]
