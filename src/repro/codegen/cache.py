"""Compiled-chunk cache, keyed by module object identity.

Chunk functions close over IR *objects* (alloca keys, live-in register
keys, callee functions), so an entry is only valid for the exact module
instance it was compiled from.  Content hashes are not enough: the
processes backend's children cap their decoded-module cache and may
re-decode the same ``module_key`` into *new* objects, and a stale entry
would then silently write through stale alloca keys into orphaned
storage.  A :class:`weakref.WeakKeyDictionary` keyed by the module
object makes staleness impossible and lets evicted modules drop their
entries with them.

``None`` entries memoize lowering refusals so an unsupported loop costs
one failed compile, not one per chunk.
"""

import time
import weakref

from repro.codegen.lower import Unsupported, compile_chunk

_FN_CACHE = weakref.WeakKeyDictionary()

STATS = {"compiles": 0, "hits": 0, "fallbacks": 0, "seconds": 0.0}


def compiled_chunk(module, loop, logged, module_key=None):
    """The cached :class:`CompiledChunk` for ``(loop, logged)``, or ``None``.

    ``None`` means the lowering refused the loop (or codegen itself
    failed) — run it interpreted.  Never raises.
    """
    per_module = _FN_CACHE.get(module)
    if per_module is None:
        per_module = _FN_CACHE[module] = {}
    key = (loop.header.parent.name, loop.header.name, bool(logged))
    if key in per_module:
        STATS["hits"] += 1
        return per_module[key]
    start = time.perf_counter()
    try:
        entry = compile_chunk(loop, logged, module_key=module_key)
        STATS["compiles"] += 1
    except Unsupported:
        entry = None
        STATS["fallbacks"] += 1
    except Exception:
        # Fallback, never fail: a codegen bug must not take down a run
        # the interpreter can complete.
        entry = None
        STATS["fallbacks"] += 1
    STATS["seconds"] += time.perf_counter() - start
    per_module[key] = entry
    return entry


def reset():
    """Drop all cached entries and zero the counters (test isolation)."""
    _FN_CACHE.clear()
    STATS.update({"compiles": 0, "hits": 0, "fallbacks": 0,
                  "seconds": 0.0})


def stats():
    """A snapshot of the compile/hit/fallback/time counters."""
    return dict(STATS)
