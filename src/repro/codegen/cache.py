"""Compiled-entry cache: weak-keyed objects over content-hash source.

Two layers, consulted in order:

1. **Object layer** — a :class:`weakref.WeakKeyDictionary` keyed by the
   module object.  Compiled functions close over IR *objects* (alloca
   keys, live-in register keys, callee functions), so an entry is only
   valid for the exact module instance it was compiled from.  Content
   hashes are not enough here: the processes backend's children cap
   their decoded-module cache and may re-decode the same ``module_key``
   into *new* objects, and a stale entry would then silently write
   through stale alloca keys into orphaned storage.  Weak keying makes
   staleness impossible and lets evicted modules drop their entries.

2. **Source layer** — lowered *source text* plus position-independent
   ref descriptors (``("func", name)`` / ``("inst", function, uid)``),
   keyed by the wire ``module_key`` (the content hash of the pickled
   module stream).  When the object layer misses but the source layer
   hits, the cached source is re-``exec``'d against refs re-resolved in
   the new module — skipping the lowering itself, which is the
   expensive half.  This is what lets a pool recycle (fresh forked
   children, re-decoded modules) re-lower **zero** regions: forked
   children inherit the parent's source cache, and
   :func:`drain_new_sources` ships child-side lowerings back so the
   parent's copy keeps up.  Memoized refusals live here too, so an
   unsupported loop is refused once per *content*, not once per module
   object lifetime.

``None`` entries memoize lowering refusals so an unsupported loop costs
one failed compile, not one per chunk.
"""

import time
import weakref
from collections import OrderedDict

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.codegen.lower import Unsupported, compile_chunk, exec_chunk
from repro.codegen.seq import compile_sequence, exec_sequence

_FN_CACHE = weakref.WeakKeyDictionary()

#: (module_key, kind, ...identity) -> None (memoized refusal) or
#: (source, ref descriptors).  Bounded LRU; survives module re-decodes
#: and (via fork inheritance + drain/merge) pool recycles.
_SOURCE_CACHE = OrderedDict()
_SOURCE_CAP = 512

#: Entries lowered in this process since the last drain — pool children
#: ship these back so the parent's source cache learns child lowerings.
_NEW_SOURCES = OrderedDict()

#: module -> {function name -> {uid -> instruction}} (weak, lazy).
_INST_INDEX = weakref.WeakKeyDictionary()

_MISSING = object()

STATS = {
    "compiles": 0,
    "hits": 0,
    "source_hits": 0,
    "fallbacks": 0,
    "seconds": 0.0,
}


def compiled_chunk(module, loop, logged, module_key=None, outer=None):
    """The cached :class:`CompiledChunk` for ``(loop, logged)``, or ``None``.

    ``None`` means the lowering refused the loop (or codegen itself
    failed) — run it interpreted.  Never raises.  ``outer`` (an
    interchanged nest's outer loop) selects the pair-iterating variant
    and is part of both cache keys.
    """
    key = ("chunk", loop.header.parent.name, loop.header.name,
           bool(logged), outer.header.name if outer is not None else None)
    return _cached(
        module, key, module_key,
        lambda: compile_chunk(loop, logged, module_key=module_key,
                              outer=outer),
    )


def compiled_sequence(module, function, stops, logged, module_key=None):
    """The cached :class:`CompiledSequence` for a function body, or ``None``.

    ``stops`` is the content-only region-stop spec from
    :func:`repro.codegen.seq.sequence_stops`; it is part of both cache
    keys, so the same module under a different plan lowers separately.
    Same never-fail contract as :func:`compiled_chunk`.
    """
    key = ("seq", function.name, tuple(stops), bool(logged))
    return _cached(
        module, key, module_key,
        lambda: compile_sequence(function, stops, logged,
                                 module_key=module_key),
    )


def _cached(module, key, module_key, build):
    per_module = _FN_CACHE.get(module)
    if per_module is None:
        per_module = _FN_CACHE[module] = {}
    if key in per_module:
        STATS["hits"] += 1
        return per_module[key]
    source_key = None
    if module_key is not None:
        source_key = (module_key,) + key
        entry = _from_source(module, source_key, module_key)
        if entry is not _MISSING:
            per_module[key] = entry
            return entry
    start = time.perf_counter()
    try:
        entry = build()
        STATS["compiles"] += 1
        if source_key is not None:
            try:
                value = _source_value(entry.source, entry.refs)
            except Unsupported:
                value = _MISSING  # refs not position-independent; skip
            if value is not _MISSING:
                _remember_source(source_key, value)
    except Unsupported:
        entry = None
        STATS["fallbacks"] += 1
        if source_key is not None:
            _remember_source(source_key, None)
    except Exception:
        # Fallback, never fail: a codegen bug must not take down a run
        # the interpreter can complete.  Not memoized by content: a bug
        # may be transient (e.g. an interrupted compile).
        entry = None
        STATS["fallbacks"] += 1
    STATS["seconds"] += time.perf_counter() - start
    per_module[key] = entry
    return entry


# -- the source layer ---------------------------------------------------------


def _from_source(module, source_key, module_key):
    """Rebuild an entry from cached source, or ``_MISSING`` on a miss."""
    cached = _SOURCE_CACHE.get(source_key, _MISSING)
    if cached is _MISSING:
        return _MISSING
    _SOURCE_CACHE.move_to_end(source_key)
    if cached is None:  # memoized refusal survives module re-decodes
        STATS["source_hits"] += 1
        return None
    source, descriptors = cached
    start = time.perf_counter()
    try:
        refs = _resolve_refs(module, descriptors)
        _mkey, kind = source_key[:2]
        if kind == "chunk":
            _mkey, _kind, function, header, logged, _outer = source_key
            entry = exec_chunk(
                source, refs, function, header, logged,
                module_key=module_key,
            )
        else:
            _mkey, _kind, function, stops, logged = source_key
            entry = exec_sequence(
                source, refs, function, stops, logged,
                module_key=module_key,
            )
    except Exception:
        # Resolution failed (the hash matched but the module differs?):
        # drop the entry and let the caller re-lower from scratch.
        _SOURCE_CACHE.pop(source_key, None)
        return _MISSING
    STATS["source_hits"] += 1
    STATS["seconds"] += time.perf_counter() - start
    return entry


def _source_value(source, refs):
    """The picklable, module-independent form of a lowered entry."""
    return (source, _describe_refs(refs))


def _describe_refs(refs):
    descriptors = []
    for obj in refs:
        if isinstance(obj, Instruction):
            descriptors.append(
                ("inst", obj.parent.parent.name, obj.uid)
            )
        elif isinstance(obj, Function):
            descriptors.append(("func", obj.name))
        else:
            raise Unsupported(f"unshareable ref {type(obj).__name__}")
    return tuple(descriptors)


def _resolve_refs(module, descriptors):
    refs = []
    for descriptor in descriptors:
        if descriptor[0] == "func":
            refs.append(module.function(descriptor[1]))
        else:
            _kind, function_name, uid = descriptor
            refs.append(_instruction_index(module, function_name)[uid])
    return refs


def _instruction_index(module, function_name):
    per_module = _INST_INDEX.get(module)
    if per_module is None:
        per_module = _INST_INDEX[module] = {}
    index = per_module.get(function_name)
    if index is None:
        index = {
            inst.uid: inst
            for inst in module.function(function_name).instructions()
        }
        per_module[function_name] = index
    return index


def _remember_source(source_key, value):
    for store in (_SOURCE_CACHE, _NEW_SOURCES):
        store[source_key] = value
        store.move_to_end(source_key)
        while len(store) > _SOURCE_CAP:
            store.popitem(last=False)


def drain_new_sources():
    """Entries lowered since the last drain, as picklable (key, value)s.

    Pool children call this after running a payload and ship the result
    back; the parent merges it (:func:`merge_sources`) so the *next*
    generation of forked children inherits every lowering any child of
    this generation performed.
    """
    items = list(_NEW_SOURCES.items())
    _NEW_SOURCES.clear()
    return items


def merge_sources(items):
    """Adopt source entries drained in another process (parent side)."""
    for source_key, value in items:
        if source_key not in _SOURCE_CACHE:
            _remember_source(source_key, value)


def reset():
    """Drop all cached entries and zero the counters (test isolation)."""
    _FN_CACHE.clear()
    _SOURCE_CACHE.clear()
    _NEW_SOURCES.clear()
    _INST_INDEX.clear()
    STATS.update({
        "compiles": 0, "hits": 0, "source_hits": 0, "fallbacks": 0,
        "seconds": 0.0,
    })


def stats():
    """A snapshot of the compile/hit/fallback/time counters."""
    return dict(STATS)
