"""Lower one DOALL chunk body from the IR to exec-compiled Python.

:func:`compile_chunk` turns a member loop of a parallel region into a
Python function with the *exact* semantics of
``_WorkerInterpreter.run_chunk``: per iteration it seeds the private
induction storage, executes the loop's blocks from the canonical body
until a terminator targets the loop header, counts one step per
executed instruction against ``max_steps``, and raises the same
:class:`EmulationError` conditions (GEP bounds, division by zero,
``return`` inside the body, math domain errors).

Representation choices:

* SSA values become Python locals ``_r<uid>``; pointer-typed values
  become local pairs ``_r<uid>_s`` / ``_r<uid>_o`` (the interpreter's
  ``(storage, offset)`` tuples, unpacked once).
* Live-in registers, the induction storage, arguments, and globals are
  bound *eagerly* at chunk entry, before any side effect; a missing
  binding raises :class:`~repro.codegen.runtime.Bailout` and the caller
  re-runs the chunk interpreted (which reproduces whatever error — or
  non-error — the interpreter's lazy lookup produces).
* Straight-line bodies (blocks chained by unconditional jumps back to
  the header) lower to linear code; anything with branches — including
  whole nested sequential loops, whose back edges simply target a
  lowered block — lowers to a ``while``/``elif`` state machine over
  block indices.
* Stores come in a ``logged`` variant that marks the shim's write log
  with ``record_write`` semantics, byte-for-byte what the interpreted
  store handler logs; the unlogged variant is a plain slot assignment.
* GEP bounds guards are *hoisted* out of linear-chain bodies when the
  index is affine in the chunk induction with iteration-invariant
  coefficients: a ``_fast`` predicate evaluated once per chunk checks
  the index at the extreme iteration values, and selects an unguarded
  body variant when every hoisted guard is provably in bounds.  The
  guarded variant is kept verbatim as the fallback, so an actual
  out-of-bounds access raises the interpreter's exact error at the
  exact iteration, and both variants count the same steps.
* Objects the generated code must reference by identity (alloca keys,
  live-in register keys, callee functions) arrive through the exec'd
  factory's ``refs`` tuple, so no IR object is ever re-created.

Anything outside the supported matrix raises :class:`Unsupported` and
the loop stays on the interpreter — never fail, always fall back.
"""

import dataclasses

from repro.ir import instructions as insts
from repro.ir.types import FLOAT, INT, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable
from repro.codegen import runtime as _runtime


class Unsupported(Exception):
    """The lowering refuses this loop; run it interpreted."""


@dataclasses.dataclass
class CompiledChunk:
    """One exec-compiled chunk body.

    ``fn(shim, frame, iterations)`` has ``run_chunk`` semantics minus
    the ``locks`` argument: compiled chunks are only selected for loops
    without critical/atomic blocks, where lock transitions are no-ops.
    """

    fn: object
    source: str
    function: str  # enclosing IR function name
    header: str  # loop header block name
    logged: bool  # stores mark the shim's write log
    module_key: str = None  # content hash, when the caller knows it
    refs: tuple = ()  # the IR objects the factory closed over

    @property
    def label(self):
        return f"{self.function}:{self.header}"


_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">",
        "ge": ">="}
_BINOP = {"add": "+", "sub": "-", "mul": "*", "pow": "**", "and": "&",
          "or": "|", "xor": "^", "shl": "<<", "shr": ">>"}
_UNOP_HELPERS = {"not": "_u_not", "sqrt": "_u_sqrt", "sin": "_u_sin",
                 "cos": "_u_cos", "exp": "_u_exp", "log": "_u_log",
                 "floor": "_u_floor"}

_MAX_STEPS_MESSAGE = "parallel worker exceeded max_steps"


def _literal(value):
    """A Python literal reproducing ``value`` exactly, or Unsupported."""
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise Unsupported("non-finite float constant")
        return repr(value)
    if isinstance(value, (bool, int, str)) or value is None:
        return repr(value)
    raise Unsupported(f"constant of type {type(value).__name__}")


def _aff_sum(p, q, sign):
    """Combine two affine-term expression strings under ``+``/``-``."""
    if q == "0":
        return p
    if p == "0":
        return q if sign == "+" else f"-({q})"
    return f"({p} {sign} {q})"


def _aff_add(x, y, sign="+"):
    """``x ± y`` over ``(coefficient, constant)`` expression pairs."""
    return _aff_sum(x[0], y[0], sign), _aff_sum(x[1], y[1], sign)


def _aff_scale(aff, factor):
    """``factor * aff`` where ``factor`` is iteration-invariant."""

    def scale(term):
        if term == "0" or factor == "0":
            return "0"
        if term == "1":
            return factor
        if factor == "1":
            return term
        return f"(({factor}) * ({term}))"

    return scale(aff[0]), scale(aff[1])


def _aff_term(aff, iv_expr):
    """Render ``a * iv + b`` with ``iv`` substituted by ``iv_expr``."""
    a, b = aff
    if a == "0":
        return b
    scaled = iv_expr if a == "1" else f"({a}) * {iv_expr}"
    if b == "0":
        return scaled
    return f"{scaled} + ({b})"


def _zero_literal(value_type):
    """The zero a fresh alloca's slots hold (matches ``_zero_storage``)."""
    scalar = value_type
    while hasattr(scalar, "element"):
        scalar = scalar.element
    return "0.0" if scalar == FLOAT else "0"


class _Emitter:
    def __init__(self):
        self.lines = []
        self.indent = 0

    def emit(self, line=""):
        self.lines.append("    " * self.indent + line if line else "")

    def source(self):
        return "\n".join(self.lines) + "\n"


class _Lowering:
    """Lowers one loop; collects refs/bindings while emitting the body."""

    def __init__(self, loop, logged, outer=None):
        if loop.canonical is None:
            raise Unsupported("loop lacks canonical form")
        if outer is not None and outer.canonical is None:
            raise Unsupported("nest outer loop lacks canonical form")
        self.loop = loop
        self.outer = outer  # interchanged nest: iterations are pairs
        self.logged = logged
        self.function = loop.header.parent
        self.blocks = [b for b in loop.blocks if b is not loop.header]
        self.defined = {
            id(inst) for b in self.blocks for inst in b.instructions
        }
        self.refs = []  # objects the factory receives positionally
        self._ref_names = {}  # id(obj) -> _k<i>
        self.live_ins = {}  # id(inst) -> (inst, is_pointer)
        self.args = {}  # index -> is_pointer
        self.globals = {}  # name -> local
        self.allocas = []  # (inst, ref name) allocas executed in the body
        self.counter = 0
        self.prologue = None  # per-chunk lines emitted before the loop
        self._skip_guards = frozenset()  # GEP ids lowered without guards

    # -- refs and operand rendering -----------------------------------------

    def ref(self, obj):
        name = self._ref_names.get(id(obj))
        if name is None:
            name = f"_k{len(self.refs)}"
            self._ref_names[id(obj)] = name
            self.refs.append(obj)
        return name

    def temp(self):
        self.counter += 1
        return f"_t{self.counter}"

    def _register(self, inst):
        """The local name(s) for an instruction's value."""
        pointer = isinstance(inst.type, PointerType)
        if id(inst) not in self.defined:
            self.live_ins[id(inst)] = (inst, pointer)
        if pointer:
            return f"_r{inst.uid}_s", f"_r{inst.uid}_o"
        return f"_r{inst.uid}"

    def scalar(self, value):
        """Python expression for a non-pointer operand."""
        if isinstance(value, Constant):
            return _literal(value.value)
        if isinstance(value, Argument):
            if isinstance(value.type, PointerType):
                raise Unsupported("pointer argument used as scalar")
            self.args.setdefault(value.index, False)
            return f"_a{value.index}"
        if isinstance(value, insts.Instruction):
            if isinstance(value.type, PointerType):
                raise Unsupported("pointer value used as scalar")
            return self._register(value)
        raise Unsupported(f"operand {value!r}")

    def pointer(self, value):
        """(storage expr, offset expr) for a pointer operand."""
        if isinstance(value, GlobalVariable):
            local = self.globals.get(value.name)
            if local is None:
                local = f"_gv{len(self.globals)}"
                self.globals[value.name] = local
            return local, "0"
        if isinstance(value, Argument):
            self.args[value.index] = True
            return f"_a{value.index}_s", f"_a{value.index}_o"
        if isinstance(value, insts.Instruction):
            if not isinstance(value.type, PointerType):
                raise Unsupported("scalar value used as pointer")
            return self._register(value)
        raise Unsupported(f"pointer operand {value!r}")

    def any_value(self, value):
        """Expression for an operand of either kind (call args, prints)."""
        pointer = isinstance(value.type, PointerType) and not isinstance(
            value, Constant
        )
        if pointer:
            storage, offset = self.pointer(value)
            return f"({storage}, {offset})"
        return self.scalar(value)

    # -- per-instruction statements ------------------------------------------

    def lower_instruction(self, out, inst):
        if isinstance(inst, insts.Alloca):
            key = self.ref(inst)
            slots = inst.allocated_type.slots()
            zero = _zero_literal(inst.allocated_type)
            name_s, _name_o = self._register(inst)
            out.emit(f"{name_s} = _objs.get({key})")
            out.emit(f"if {name_s} is None:")
            out.indent += 1
            out.emit(f"{name_s} = _objs[{key}] = [{zero}] * {slots}")
            out.indent -= 1
            out.emit(f"_r{inst.uid}_o = 0")
        elif isinstance(inst, insts.Load):
            if isinstance(inst.type, PointerType):
                raise Unsupported("load of a pointer value")
            storage, offset = self.pointer(inst.pointer)
            out.emit(f"{self._register(inst)} = {storage}[{offset}]")
        elif isinstance(inst, insts.Store):
            value = self.any_value(inst.value)
            storage, offset = self.pointer(inst.pointer)
            if self.logged:
                key = self.temp()
                out.emit(f"{key} = (id({storage}), {offset})")
                out.emit(f"if {key} not in _log:")
                out.indent += 1
                out.emit(f"_log[{key}] = ({storage}, {storage}[{offset}])")
                out.indent -= 1
            out.emit(f"{storage}[{offset}] = {value}")
        elif isinstance(inst, insts.GetElementPtr):
            self._lower_gep(out, inst)
        elif isinstance(inst, insts.BinaryOp):
            self._lower_binop(out, inst)
        elif isinstance(inst, insts.UnaryOp):
            self._lower_unop(out, inst)
        elif isinstance(inst, insts.Compare):
            a = self.scalar(inst.lhs)
            b = self.scalar(inst.rhs)
            op = _CMP[inst.predicate]
            out.emit(f"{self._register(inst)} = {a} {op} {b}")
        elif isinstance(inst, insts.Select):
            if isinstance(inst.type, PointerType):
                raise Unsupported("select over pointers")
            condition = self.scalar(inst.condition)
            if_true = self.scalar(inst.if_true)
            if_false = self.scalar(inst.if_false)
            out.emit(
                f"{self._register(inst)} = "
                f"({if_true}) if {condition} else ({if_false})"
            )
        elif isinstance(inst, insts.Cast):
            value = self.scalar(inst.operand)
            if inst.kind == "int_to_float":
                expr = f"float({value})"
            elif inst.kind == "float_to_int":
                expr = f"int({value})"
            else:  # bool_to_int
                expr = f"(1 if {value} else 0)"
            out.emit(f"{self._register(inst)} = {expr}")
        elif isinstance(inst, insts.Call):
            callee = self.ref(inst.callee)
            rendered = ", ".join(
                self.any_value(operand) for operand in inst.operands
            )
            out.emit("interp.steps = _steps")
            call = f"interp._run_function({callee}, [{rendered}])"
            if inst.callee.return_type.slots() != 0:
                if isinstance(inst.type, PointerType):
                    raise Unsupported("call returning a pointer")
                out.emit(f"{self._register(inst)} = {call}")
            else:
                out.emit(call)
            out.emit("_steps = interp.steps")
        elif isinstance(inst, insts.Print):
            values = ", ".join(
                self.any_value(operand) for operand in inst.operands
            )
            comma = "," if len(inst.operands) == 1 else ""
            out.emit(
                f"_out.append(({_literal(inst.label)}, "
                f"({values}{comma})))"
            )
        else:
            raise Unsupported(f"instruction {inst.opcode}")

    def _lower_gep(self, out, inst):
        storage, offset = self.pointer(inst.pointer)
        index = self.scalar(inst.index)
        array_type = inst.pointer.type.pointee
        if id(inst) not in self._skip_guards:
            suffix = (
                f" out of bounds for {array_type!r} (gep #{inst.uid})"
            )
            out.emit(f"if not 0 <= {index} < {array_type.count}:")
            out.indent += 1
            out.emit(
                "raise _EmulationError("
                f"f\"index {{{index}}}\" + {suffix!r})"
            )
            out.indent -= 1
        stride = array_type.element.slots()
        scaled = index if stride == 1 else f"{index} * {stride}"
        combined = scaled if offset == "0" else f"{offset} + {scaled}"
        out.emit(f"_r{inst.uid}_s = {storage}")
        out.emit(f"_r{inst.uid}_o = {combined}")

    def _lower_binop(self, out, inst):
        a = self.scalar(inst.lhs)
        b = self.scalar(inst.rhs)
        name = self._register(inst)
        op = inst.op
        if op in _BINOP:
            out.emit(f"{name} = {a} {_BINOP[op]} {b}")
        elif op == "div":
            if inst.type == INT:
                out.emit(f"{name} = _trunc_div({a}, {b})")
            else:
                out.emit(f"if {b} == 0:")
                out.indent += 1
                out.emit(
                    "raise _EmulationError('float division by zero')"
                )
                out.indent -= 1
                out.emit(f"{name} = {a} / {b}")
        elif op == "rem":
            out.emit(f"{name} = _trunc_rem({a}, {b})")
        elif op in ("min", "max"):
            out.emit(f"{name} = {op}({a}, {b})")
        else:
            raise Unsupported(f"binop {op}")

    def _lower_unop(self, out, inst):
        value = self.scalar(inst.operand)
        name = self._register(inst)
        if inst.op == "neg":
            out.emit(f"{name} = -{value}")
        elif inst.op == "abs":
            out.emit(f"{name} = abs({value})")
        elif inst.op in _UNOP_HELPERS:
            out.emit(f"{name} = {_UNOP_HELPERS[inst.op]}({value})")
        else:
            raise Unsupported(f"unop {inst.op}")

    # -- control flow ---------------------------------------------------------

    def _goto(self, out, target, states):
        """End-of-block transfer inside the state machine."""
        if target is self.loop.header:
            out.emit("break")
        elif target in states:
            out.emit(f"_b = {states[target]}")
            out.emit("continue")
        else:
            raise Unsupported(
                f"branch leaves the loop mid-body (to {target.name})"
            )

    def lower_terminator(self, out, inst, states):
        if isinstance(inst, insts.Return):
            out.emit(
                "raise _EmulationError("
                "'return inside a parallelized loop body')"
            )
        elif isinstance(inst, insts.Jump):
            self._goto(out, inst.target, states)
        elif isinstance(inst, insts.Branch):
            condition = self.scalar(inst.condition)
            out.emit(f"if {condition}:")
            out.indent += 1
            self._goto(out, inst.if_true, states)
            out.indent -= 1
            out.emit("else:")
            out.indent += 1
            self._goto(out, inst.if_false, states)
            out.indent -= 1
        else:
            raise Unsupported(f"terminator {inst.opcode}")

    def _step_check(self, out, count):
        out.emit(f"_steps += {count}")
        out.emit("if _steps > _max:")
        out.indent += 1
        out.emit(f"raise _EmulationError({_MAX_STEPS_MESSAGE!r})")
        out.indent -= 1

    def _linear_chain(self):
        """Body blocks chained by jumps to the header, or None."""
        chain = []
        seen = set()
        block = self.function.block(self.loop.canonical.body)
        while True:
            if block is self.loop.header or id(block) in seen:
                return None
            if block not in self.loop.blocks:
                return None
            seen.add(id(block))
            chain.append(block)
            terminator = block.instructions[-1] if block.instructions \
                else None
            if not isinstance(terminator, insts.Jump):
                return None
            if terminator.target is self.loop.header:
                return chain
            block = terminator.target

    def _reachable_blocks(self):
        """Lowered blocks reachable from the canonical body, in order."""
        body = self.function.block(self.loop.canonical.body)
        if body is self.loop.header:
            raise Unsupported("canonical body is the header")
        order = []
        seen = set()
        stack = [body]
        while stack:
            block = stack.pop()
            if id(block) in seen or block is self.loop.header:
                continue
            if block not in self.loop.blocks:
                raise Unsupported(
                    f"body reaches block {block.name} outside the loop"
                )
            seen.add(id(block))
            order.append(block)
            terminator = (
                block.instructions[-1] if block.instructions else None
            )
            if isinstance(terminator, insts.Terminator):
                stack.extend(reversed(terminator.successors()))
        # Keep loop.blocks order (deterministic) among reachable blocks.
        reachable = {id(block) for block in order}
        return [b for b in self.blocks if id(b) in reachable]

    # -- guard hoisting -------------------------------------------------------

    def _pristine_loads(self, chain):
        """Loads of the induction storage before any possible store.

        A load that happens before every store (and call — callees may
        store) in the iteration always observes the ``_iv[0] = _i``
        seed, so its value *is* the chunk induction variable.
        """
        induction = self.loop.canonical.induction
        pristine = set()
        clobbered = False
        for block in chain:
            for inst in block.instructions:
                if (
                    not clobbered
                    and isinstance(inst, insts.Load)
                    and inst.pointer is induction
                ):
                    pristine.add(id(inst))
                elif isinstance(inst, (insts.Store, insts.Call)):
                    clobbered = True
        return pristine

    def _affine_index(self, value, pristine, depth=0):
        """``value`` as ``(a, b)`` expression strings with value =
        ``a * _i + b``, or ``None`` when not provably affine.

        ``a`` and ``b`` only reference iteration-invariant names
        (constants, scalar int arguments, live-in registers), so the
        pair can be evaluated once at chunk entry.
        """
        if depth > 12:
            return None
        if isinstance(value, Constant):
            if isinstance(value.value, bool) or not isinstance(
                value.value, int
            ):
                return None
            return "0", repr(value.value)
        if isinstance(value, Argument):
            if value.type != INT:
                return None
            return "0", self.scalar(value)
        if not isinstance(value, insts.Instruction) or value.type != INT:
            return None
        if id(value) in pristine:
            return "1", "0"
        if id(value) not in self.defined:
            return "0", self.scalar(value)
        if isinstance(value, insts.BinaryOp):
            lhs = self._affine_index(value.lhs, pristine, depth + 1)
            rhs = self._affine_index(value.rhs, pristine, depth + 1)
            if lhs is None or rhs is None:
                return None
            if value.op == "add":
                return _aff_add(lhs, rhs, "+")
            if value.op == "sub":
                return _aff_add(lhs, rhs, "-")
            if value.op == "mul":
                if lhs[0] == "0":
                    return _aff_scale(rhs, lhs[1])
                if rhs[0] == "0":
                    return _aff_scale(lhs, rhs[1])
            return None
        if isinstance(value, insts.UnaryOp) and value.op == "neg":
            inner = self._affine_index(value.operand, pristine, depth + 1)
            return None if inner is None else _aff_scale(inner, "-1")
        return None

    def _hoisted_guards(self, chain):
        """id(gep) -> (affine index, bound) for the hoistable guards."""
        pristine = self._pristine_loads(chain)
        hoisted = {}
        for block in chain:
            for inst in block.instructions:
                if isinstance(inst, insts.GetElementPtr):
                    affine = self._affine_index(inst.index, pristine)
                    if affine is not None:
                        hoisted[id(inst)] = (
                            affine, inst.pointer.type.pointee.count
                        )
        return hoisted

    def _emit_fast_predicate(self, hoisted):
        """Emit the once-per-chunk ``_fast`` bounds proof (prologue).

        An affine index over any iteration set takes its extremes at
        the extreme iteration values, so checking ``min(iterations)``
        and ``max(iterations)`` covers every iteration regardless of
        scheduler chunking or coefficient sign.  Anything unexpected
        (weird runtime types, overflow) just disables the fast path.
        """
        out = self.prologue
        checks = []
        for affine, count in hoisted.values():
            ends = ("_ilo",) if affine[0] == "0" else ("_ilo", "_ihi")
            for end in ends:
                check = f"0 <= {_aff_term(affine, end)} < {count}"
                if check not in checks:
                    checks.append(check)
        out.emit("_fast = False")
        out.emit("if len(iterations):")
        out.indent += 1
        out.emit("try:")
        out.indent += 1
        out.emit("_ilo = min(iterations)")
        out.emit("_ihi = max(iterations)")
        out.emit("_fast = (")
        out.indent += 1
        for index, check in enumerate(checks):
            trailer = "" if index == len(checks) - 1 else " and"
            out.emit(f"{check}{trailer}")
        out.indent -= 1
        out.emit(")")
        out.indent -= 1
        out.emit("except Exception:")
        out.indent += 1
        out.emit("_fast = False")
        out.indent -= 2

    def _emit_chain(self, out, chain):
        self._step_check(
            out, sum(len(block.instructions) for block in chain)
        )
        for block in chain:
            for inst in block.instructions[:-1]:
                self.lower_instruction(out, inst)
            # The chain's jump terminators are control-flow only
            # (their step is in the block count above).

    def lower_body(self, out):
        """Emit the per-iteration statements (inside ``for _i in ...``)."""
        if self.outer is not None:
            out.emit("_ivo[0] = _t")
        out.emit("_iv[0] = _i")
        chain = self._linear_chain()
        if chain is not None:
            # Guard hoisting is scalar-only: min/max over nest pair
            # iterations would compare tuples, not induction values.
            hoisted = (
                self._hoisted_guards(chain)
                if self.prologue is not None and self.outer is None
                else {}
            )
            if hoisted:
                self._emit_fast_predicate(hoisted)
                out.emit("if _fast:")
                out.indent += 1
                self._skip_guards = frozenset(hoisted)
                self._emit_chain(out, chain)
                self._skip_guards = frozenset()
                out.indent -= 1
                out.emit("else:")
                out.indent += 1
                self._emit_chain(out, chain)
                out.indent -= 1
            else:
                self._emit_chain(out, chain)
            return
        blocks = self._reachable_blocks()
        states = {block: index for index, block in enumerate(blocks)}
        body = self.function.block(self.loop.canonical.body)
        out.emit(f"_b = {states[body]}")
        out.emit("while True:")
        out.indent += 1
        for index, block in enumerate(blocks):
            out.emit(f"{'if' if index == 0 else 'elif'} _b == {index}:")
            out.indent += 1
            if not block.instructions:
                raise Unsupported(f"empty block {block.name}")
            self._step_check(out, len(block.instructions))
            for inst in block.instructions[:-1]:
                if isinstance(inst, insts.Terminator):
                    raise Unsupported("terminator before end of block")
                self.lower_instruction(out, inst)
            terminator = block.instructions[-1]
            if isinstance(terminator, insts.Terminator):
                self.lower_terminator(out, terminator, states)
            else:
                # run_chunk raises when a block fails to terminate.
                out.emit(
                    "raise _EmulationError("
                    f"{('worker fell off block ' + block.name)!r})"
                )
            out.indent -= 1
        out.indent -= 1

    # -- whole-chunk assembly -------------------------------------------------

    def _entry_bindings(self, out):
        """Emit the eager entry bindings (inside the Bailout try)."""
        out.emit(f"_iv = _objs[{self.ref(self.loop.canonical.induction)}]")
        if self.outer is not None:
            out.emit(
                f"_ivo = _objs[{self.ref(self.outer.canonical.induction)}]"
            )
        for inst, pointer in self.live_ins.values():
            key = self.ref(inst)
            if pointer:
                out.emit(
                    f"_r{inst.uid}_s, _r{inst.uid}_o = "
                    f"frame.registers[{key}]"
                )
            else:
                out.emit(f"_r{inst.uid} = frame.registers[{key}]")
        for index in sorted(self.args):
            if self.args[index]:
                out.emit(
                    f"_a{index}_s, _a{index}_o = frame.args[{index}]"
                )
            else:
                out.emit(f"_a{index} = frame.args[{index}]")
        for name in self.globals:
            local = self.globals[name]
            out.emit(f"{local} = frame.global_overlay.get({name!r})")
            out.emit(f"if {local} is None:")
            out.indent += 1
            out.emit(f"{local} = interp._global_storage[{name!r}]")
            out.indent -= 1

    def lower(self):
        # The body and entry sections are emitted first so ref
        # collection completes before the unpack line is written.
        self.prologue = _Emitter()
        self.prologue.indent = 2  # def _factory / def _chunk
        body = _Emitter()
        body.indent = 3  # def _factory / def _chunk / for _i
        self.lower_body(body)
        entry = _Emitter()
        entry.indent = 3  # def _factory / def _chunk / try
        self._entry_bindings(entry)

        out = _Emitter()
        out.emit("def _factory(refs, H):")
        out.indent += 1
        if self.refs:
            names = ", ".join(
                f"_k{index}" for index in range(len(self.refs))
            )
            trailer = "," if len(self.refs) == 1 else ""
            out.emit(f"({names}{trailer}) = refs")
        out.emit("_EmulationError = H.EmulationError")
        out.emit("_Bailout = H.Bailout")
        out.emit("_trunc_div = H.trunc_div")
        out.emit("_trunc_rem = H.trunc_rem")
        for helper in sorted(set(_UNOP_HELPERS.values())):
            out.emit(f"{helper} = H.{helper[1:]}")
        out.emit("def _chunk(interp, frame, iterations):")
        out.indent += 1
        out.emit("_objs = frame.objects")
        out.emit("_out = interp.output")
        out.emit("_max = interp.max_steps")
        out.emit("_steps = interp.steps")
        if self.logged:
            out.emit("_log = interp.write_log")
        out.emit("try:")
        out.lines.extend(entry.lines)
        out.emit("except (KeyError, IndexError, TypeError, ValueError):")
        out.indent += 1
        out.emit("raise _Bailout() from None")
        out.indent -= 1
        out.lines.extend(self.prologue.lines)
        if self.outer is not None:
            out.emit("for _t, _i in iterations:")
        else:
            out.emit("for _i in iterations:")
        out.lines.extend(body.lines)
        out.emit("interp.steps = _steps")
        out.indent -= 1
        out.emit("return _chunk")
        return out.source()


def lower_chunk(loop, logged, outer=None):
    """Generate (source, refs) for one loop; raises :class:`Unsupported`.

    Lowering the body *collects* the entry bindings (live-ins, args,
    globals, refs), so the body is emitted first and spliced into the
    chunk skeleton by :meth:`_Lowering.lower`.  With ``outer`` (an
    interchanged nest's outer loop) the chunk iterates ``(outer,
    inner)`` pairs and seeds both induction storages.
    """
    lowering = _Lowering(loop, logged, outer=outer)
    return lowering.lower(), lowering.refs


def exec_chunk(source, refs, function, header, logged, module_key=None):
    """``exec``-compile lowered chunk source against concrete IR refs.

    Split out of :func:`compile_chunk` so the content-hash source cache
    can rebuild an entry for a *re-decoded* module (same source, new ref
    objects) without re-lowering.
    """
    variant = "logged" if logged else "plain"
    filename = f"<repro-codegen {function}:{header}:{variant}>"
    namespace = {}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    fn = namespace["_factory"](tuple(refs), _runtime)
    return CompiledChunk(
        fn=fn,
        source=source,
        function=function,
        header=header,
        logged=bool(logged),
        module_key=module_key,
        refs=tuple(refs),
    )


def compile_chunk(loop, logged, module_key=None, outer=None):
    """Lower and ``exec``-compile one loop's chunk body."""
    source, refs = lower_chunk(loop, bool(logged), outer=outer)
    return exec_chunk(
        source, refs, loop.header.parent.name, loop.header.name,
        bool(logged), module_key=module_key,
    )
