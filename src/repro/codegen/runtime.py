"""Runtime support for compiled chunks: helpers, fallback, verify oracle.

Generated chunk functions close over this module (the ``H`` argument of
the generated factory) for everything the interpreter's handlers did
out-of-line: truncating division, the guarded ``math.*`` unary ops, and
the :class:`EmulationError`/:class:`Bailout` types.

:func:`execute_chunk` is the single entry the backends call per
``(loop, iterations)`` segment.  It runs the compiled body when one
exists, falls back to ``shim.run_chunk`` on a missing entry or a
:class:`Bailout` (a live-in the frame does not carry — raised before
any side effect), and under ``VERIFY_COMPILED`` runs *both* and diffs
their write logs, outputs, and step counts in-process, keeping the
interpreted run's effects (the interpreter is the authority).
"""

import math

from repro.util.errors import EmulationError


class Bailout(Exception):
    """Compiled entry bindings failed; re-run the chunk interpreted.

    Raised only before the chunk's first side effect (all entry
    bindings — induction storage, live-in registers, arguments,
    globals — happen up front), so the interpreter fallback replays the
    chunk from an untouched state.
    """


# -- helpers the generated code binds as locals --------------------------------

from repro.emulator.interp import _trunc_div as trunc_div  # noqa: E402
from repro.emulator.interp import _trunc_rem as trunc_rem  # noqa: E402


def u_not(value):
    return (not value) if isinstance(value, bool) else ~value


def _guarded(op, fn):
    def helper(value):
        try:
            return fn(value)
        except ValueError as error:
            raise EmulationError(f"math error in {op}: {error}") from None

    helper.__name__ = f"u_{op}"
    return helper


u_sqrt = _guarded("sqrt", math.sqrt)
u_sin = _guarded("sin", math.sin)
u_cos = _guarded("cos", math.cos)
u_exp = _guarded("exp", math.exp)
u_log = _guarded("log", math.log)
u_floor = _guarded("floor", lambda value: float(math.floor(value)))


# -- chunk execution -----------------------------------------------------------


def execute_chunk(entry, shim, loop, frame, iterations, locks,
                  verify=False):
    """Run one chunk; returns ``"compiled"`` or ``"interpreted"``.

    ``entry`` is a :class:`~repro.codegen.lower.CompiledChunk` (or
    ``None`` for a loop the lowering refused); ``shim`` is the backend's
    ``_WorkerInterpreter``.  The entry's ``logged`` flag must match the
    shim (``shim.write_log is not None``), except under ``verify`` where
    the caller must supply a *logged* entry and a shim with the logged
    store handler installed (the oracle needs both runs' write logs).
    """
    if entry is None:
        shim.run_chunk(loop, frame, iterations, locks)
        return "interpreted"
    if verify:
        return _verified(entry, shim, loop, frame, iterations, locks)
    try:
        entry.fn(shim, frame, iterations)
    except Bailout:
        shim.run_chunk(loop, frame, iterations, locks)
        return "interpreted"
    return "compiled"


def _log_image(log):
    """``(storage-id, slot) -> (before, after)`` for a run's write log.

    Read *before* the writes are rolled back: ``after`` is the slot's
    current (post-run) value.
    """
    return {
        key: (before, storage[key[1]])
        for key, (storage, before) in log.items()
    }


def _merge_log(real_log, scratch):
    """Fold a scratch run's marks into the caller's log (first-write wins)."""
    if real_log is None:
        return
    for key, entry in scratch.items():
        real_log.setdefault(key, entry)


def _verified(entry, shim, loop, frame, iterations, locks):
    """Run the chunk compiled *and* interpreted; diff; keep interpreted.

    The compiled run executes first against a scratch write log, its
    image (writes, output slice, step delta) is captured, and every one
    of its writes is rolled back.  The interpreted run then executes
    from the identical pre-chunk state and its effects *stay* — so a
    divergence aborts the region with the authoritative state in place,
    mirroring the ``VERIFY_DIFFS``/``VERIFY_PRELUDE`` pattern of wire
    format v2.

    Safe under the threads backend because compiled-eligible regions
    hold no critical sections — a correct DOALL's shared writes are
    disjoint across workers, so one worker's scratch rollback cannot
    race another worker's reads.
    """
    from repro.runtime.payload import rollback_writes

    real_log = shim.write_log
    out_mark = len(shim.output)
    step_mark = shim.steps
    scratch = {}
    shim.write_log = scratch
    bailed = False
    compiled_error = None
    try:
        entry.fn(shim, frame, iterations)
    except Bailout:
        bailed = True
    except Exception as error:
        compiled_error = error
    finally:
        shim.write_log = real_log
    compiled_writes = _log_image(scratch)
    compiled_output = shim.output[out_mark:]
    compiled_steps = shim.steps - step_mark
    rollback_writes(scratch)
    del shim.output[out_mark:]
    shim.steps = step_mark

    if bailed:
        # Not a divergence: the frame lacks a live-in the compiled entry
        # binds eagerly.  Plain interpreter fallback.
        shim.run_chunk(loop, frame, iterations, locks)
        return "interpreted"

    interp_scratch = {}
    shim.write_log = interp_scratch
    try:
        shim.run_chunk(loop, frame, iterations, locks)
    except Exception as error:
        _merge_log(real_log, interp_scratch)
        shim.write_log = real_log
        if compiled_error is None:
            raise EmulationError(
                f"VERIFY_COMPILED divergence at {entry.label}: compiled "
                f"chunk succeeded but the interpreter raised "
                f"{type(error).__name__}: {error}"
            ) from error
        raise  # both paths failed: the interpreted error is authoritative
    shim.write_log = real_log
    interp_writes = _log_image(interp_scratch)
    _merge_log(real_log, interp_scratch)
    interp_output = shim.output[out_mark:]
    interp_steps = shim.steps - step_mark

    if compiled_error is not None:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: compiled chunk "
            f"raised {type(compiled_error).__name__}: {compiled_error} "
            f"but the interpreter succeeded"
        ) from compiled_error
    problems = []
    if compiled_writes != interp_writes:
        extra = sorted(set(compiled_writes) - set(interp_writes))
        missing = sorted(set(interp_writes) - set(compiled_writes))
        changed = sorted(
            key
            for key in set(compiled_writes) & set(interp_writes)
            if compiled_writes[key] != interp_writes[key]
        )
        problems.append(
            f"write logs differ (extra={extra!r} missing={missing!r} "
            f"changed={changed!r})"
        )
    if compiled_output != interp_output:
        problems.append(
            f"outputs differ (compiled={compiled_output!r} "
            f"interpreted={interp_output!r})"
        )
    if compiled_steps != interp_steps:
        problems.append(
            f"step counts differ (compiled={compiled_steps} "
            f"interpreted={interp_steps})"
        )
    if problems:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: "
            + "; ".join(problems)
        )
    return "compiled"
