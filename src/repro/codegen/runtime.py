"""Runtime support for compiled chunks: helpers, fallback, verify oracle.

Generated chunk functions close over this module (the ``H`` argument of
the generated factory) for everything the interpreter's handlers did
out-of-line: truncating division, the guarded ``math.*`` unary ops, and
the :class:`EmulationError`/:class:`Bailout` types.

:func:`execute_chunk` is the single entry the backends call per
``(loop, iterations)`` segment.  It runs the compiled body when one
exists, falls back to ``shim.run_chunk`` on a missing entry or a
:class:`Bailout` (a live-in the frame does not carry — raised before
any side effect), and under ``VERIFY_COMPILED`` runs *both* and diffs
their write logs, outputs, and step counts in-process, keeping the
interpreted run's effects (the interpreter is the authority).
"""

import math
import re

from repro.util.errors import EmulationError


class Bailout(Exception):
    """Compiled entry bindings failed; re-run the chunk interpreted.

    Raised only before the chunk's first side effect (all entry
    bindings — induction storage, live-in registers, arguments,
    globals — happen up front), so the interpreter fallback replays the
    chunk from an untouched state.
    """


# -- helpers the generated code binds as locals --------------------------------

from repro.emulator.interp import _trunc_div as trunc_div  # noqa: E402
from repro.emulator.interp import _trunc_rem as trunc_rem  # noqa: E402


def u_not(value):
    return (not value) if isinstance(value, bool) else ~value


def _guarded(op, fn):
    def helper(value):
        try:
            return fn(value)
        except ValueError as error:
            raise EmulationError(f"math error in {op}: {error}") from None

    helper.__name__ = f"u_{op}"
    return helper


u_sqrt = _guarded("sqrt", math.sqrt)
u_sin = _guarded("sin", math.sin)
u_cos = _guarded("cos", math.cos)
u_exp = _guarded("exp", math.exp)
u_log = _guarded("log", math.log)
u_floor = _guarded("floor", lambda value: float(math.floor(value)))


_REGISTER_LOCAL = re.compile(r"_r(\d+)(?:_[so])?$")


def unbound_register(error):
    """Map a generated-code ``UnboundLocalError`` to the interpreter's.

    Sequential-stretch bodies keep SSA registers as plain Python locals;
    a register whose defining block never executed is an *unbound local*
    where the interpreter's lazy frame raises ``use of unexecuted
    instruction %<uid>``.  Returns that :class:`EmulationError` for a
    ``_r<uid>`` local, or the original error for anything else (a
    codegen bug should stay loud and recognizable).
    """
    name = getattr(error, "name", None)
    if not name:
        found = re.search(r"'(_r\d+(?:_[so])?)'", str(error))
        name = found.group(1) if found else ""
    match = _REGISTER_LOCAL.match(name or "")
    if match is None:
        return error
    return EmulationError(
        f"use of unexecuted instruction %{match.group(1)}"
    )


# -- chunk execution -----------------------------------------------------------


def execute_chunk(entry, shim, loop, frame, iterations, locks,
                  verify=False, outer=None):
    """Run one chunk; returns ``"compiled"`` or ``"interpreted"``.

    ``entry`` is a :class:`~repro.codegen.lower.CompiledChunk` (or
    ``None`` for a loop the lowering refused); ``shim`` is the backend's
    ``_WorkerInterpreter``.  The entry's ``logged`` flag must match the
    shim (``shim.write_log is not None``), except under ``verify`` where
    the caller must supply a *logged* entry and a shim with the logged
    store handler installed (the oracle needs both runs' write logs).
    ``outer`` (an interchanged nest's outer loop) means ``iterations``
    are ``(outer, inner)`` pairs; the entry, when given, must have been
    compiled with the same ``outer``.
    """
    if entry is None:
        shim.run_chunk(loop, frame, iterations, locks, outer=outer)
        return "interpreted"
    if verify:
        return _verified(entry, shim, loop, frame, iterations, locks,
                         outer=outer)
    try:
        entry.fn(shim, frame, iterations)
    except Bailout:
        shim.run_chunk(loop, frame, iterations, locks, outer=outer)
        return "interpreted"
    return "compiled"


def _log_image(log):
    """``(storage-id, slot) -> (before, after)`` for a run's write log.

    Read *before* the writes are rolled back: ``after`` is the slot's
    current (post-run) value.
    """
    return {
        key: (before, storage[key[1]])
        for key, (storage, before) in log.items()
    }


def _merge_log(real_log, scratch):
    """Fold a scratch run's marks into the caller's log (first-write wins)."""
    if real_log is None:
        return
    for key, entry in scratch.items():
        real_log.setdefault(key, entry)


def _verified(entry, shim, loop, frame, iterations, locks, outer=None):
    """Run the chunk compiled *and* interpreted; diff; keep interpreted.

    The compiled run executes first against a scratch write log, its
    image (writes, output slice, step delta) is captured, and every one
    of its writes is rolled back.  The interpreted run then executes
    from the identical pre-chunk state and its effects *stay* — so a
    divergence aborts the region with the authoritative state in place,
    mirroring the ``VERIFY_DIFFS``/``VERIFY_PRELUDE`` pattern of wire
    format v2.

    Safe under the threads backend because compiled-eligible regions
    hold no critical sections — a correct DOALL's shared writes are
    disjoint across workers, so one worker's scratch rollback cannot
    race another worker's reads.
    """
    from repro.runtime.payload import rollback_writes

    real_log = shim.write_log
    out_mark = len(shim.output)
    step_mark = shim.steps
    scratch = {}
    shim.write_log = scratch
    bailed = False
    compiled_error = None
    try:
        entry.fn(shim, frame, iterations)
    except Bailout:
        bailed = True
    except Exception as error:
        compiled_error = error
    finally:
        shim.write_log = real_log
    compiled_writes = _log_image(scratch)
    compiled_output = shim.output[out_mark:]
    compiled_steps = shim.steps - step_mark
    rollback_writes(scratch)
    del shim.output[out_mark:]
    shim.steps = step_mark

    if bailed:
        # Not a divergence: the frame lacks a live-in the compiled entry
        # binds eagerly.  Plain interpreter fallback.
        shim.run_chunk(loop, frame, iterations, locks, outer=outer)
        return "interpreted"

    interp_scratch = {}
    shim.write_log = interp_scratch
    try:
        shim.run_chunk(loop, frame, iterations, locks, outer=outer)
    except Exception as error:
        _merge_log(real_log, interp_scratch)
        shim.write_log = real_log
        if compiled_error is None:
            raise EmulationError(
                f"VERIFY_COMPILED divergence at {entry.label}: compiled "
                f"chunk succeeded but the interpreter raised "
                f"{type(error).__name__}: {error}"
            ) from error
        raise  # both paths failed: the interpreted error is authoritative
    shim.write_log = real_log
    interp_writes = _log_image(interp_scratch)
    _merge_log(real_log, interp_scratch)
    interp_output = shim.output[out_mark:]
    interp_steps = shim.steps - step_mark

    if compiled_error is not None:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: compiled chunk "
            f"raised {type(compiled_error).__name__}: {compiled_error} "
            f"but the interpreter succeeded"
        ) from compiled_error
    problems = []
    if compiled_writes != interp_writes:
        extra = sorted(set(compiled_writes) - set(interp_writes))
        missing = sorted(set(interp_writes) - set(compiled_writes))
        changed = sorted(
            key
            for key in set(compiled_writes) & set(interp_writes)
            if compiled_writes[key] != interp_writes[key]
        )
        problems.append(
            f"write logs differ (extra={extra!r} missing={missing!r} "
            f"changed={changed!r})"
        )
    if compiled_output != interp_output:
        problems.append(
            f"outputs differ (compiled={compiled_output!r} "
            f"interpreted={interp_output!r})"
        )
    if compiled_steps != interp_steps:
        problems.append(
            f"step counts differ (compiled={compiled_steps} "
            f"interpreted={interp_steps})"
        )
    if problems:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: "
            + "; ".join(problems)
        )
    return "compiled"


# -- sequential-stretch execution ----------------------------------------------


def execute_sequence(entry, interp, function, args, interpret,
                     verify=False):
    """Run one function body; returns ``(mode, return value)``.

    ``entry`` is a :class:`~repro.codegen.seq.CompiledSequence` (or
    ``None`` for a refused function); ``interp`` is the parent
    :class:`~repro.runtime.executor.ParallelInterpreter`; ``interpret``
    is the *base* interpreter loop (``Interpreter._run_function`` bound
    to ``interp``), used for the Bailout fallback and as the verify
    authority.  Under ``verify`` the caller must pass a *logged* entry
    for a function with no region stops (region dispatch is not
    replayable).
    """
    from repro.emulator.interp import _Frame

    if entry is None:
        return "interpreted", interpret(function, args)
    if verify:
        return _verified_sequence(entry, interp, function, args,
                                  interpret)
    try:
        return "compiled", entry.fn(interp, _Frame(function, args))
    except Bailout:
        return "interpreted", interpret(function, args)


def _swap_log(interp, log):
    """Install ``log`` with logged store handlers; returns a restorer."""
    saved_log = interp.write_log
    sentinel = object()
    saved_handlers = interp.__dict__.get("_HANDLERS", sentinel)
    interp.enable_write_log(log)

    def restore():
        interp.write_log = saved_log
        if saved_handlers is sentinel:
            interp.__dict__.pop("_HANDLERS", None)
        else:
            interp.__dict__["_HANDLERS"] = saved_handlers

    return restore


def _verified_sequence(entry, interp, function, args, interpret):
    """Run the function compiled *and* interpreted; diff; keep interpreted.

    The function-level analogue of :func:`_verified`: the compiled body
    runs first against a scratch write log (logged store handlers are
    installed for the duration so nested interpreted calls log too), its
    image — writes, output slice, step delta, return value — is
    captured, and every write is rolled back.  The interpreted run then
    executes from the identical pre-call state and its effects stay.
    Only called for functions whose call graph reaches no parallel
    region: a region dispatch is not replayable.

    The write-log diff only compares *observable* storages — globals
    and pointer arguments.  Each run builds its own frame, so its
    function-local allocas are fresh objects whose ids can never match
    across runs, and they are unreachable once the call returns (the IR
    has no channel for a pointer to escape except the return value,
    which is compared directly).
    """
    from repro.emulator.interp import _Frame
    from repro.runtime.payload import rollback_writes

    observable = {
        id(storage) for storage in interp._global_storage.values()
    }
    for value in args:
        if type(value) is tuple and len(value) == 2:
            observable.add(id(value[0]))

    real_log = interp.write_log
    out_mark = len(interp.output)
    step_mark = interp.steps
    scratch = {}
    restore = _swap_log(interp, scratch)
    bailed = False
    compiled_error = None
    compiled_value = None
    try:
        compiled_value = entry.fn(interp, _Frame(function, args))
    except Bailout:
        bailed = True
    except Exception as error:
        compiled_error = error
    finally:
        restore()
    compiled_writes = {
        key: value
        for key, value in _log_image(scratch).items()
        if key[0] in observable
    }
    compiled_output = interp.output[out_mark:]
    compiled_steps = interp.steps - step_mark
    rollback_writes(scratch)
    del interp.output[out_mark:]
    interp.steps = step_mark

    if bailed:
        return "interpreted", interpret(function, args)

    interp_scratch = {}
    restore = _swap_log(interp, interp_scratch)
    try:
        interp_value = interpret(function, args)
    except Exception as error:
        _merge_log(real_log, interp_scratch)
        restore()
        if compiled_error is None:
            raise EmulationError(
                f"VERIFY_COMPILED divergence at {entry.label}: compiled "
                f"body succeeded but the interpreter raised "
                f"{type(error).__name__}: {error}"
            ) from error
        raise  # both paths failed: the interpreted error is authoritative
    restore()
    interp_writes = {
        key: value
        for key, value in _log_image(interp_scratch).items()
        if key[0] in observable
    }
    _merge_log(real_log, interp_scratch)
    interp_output = interp.output[out_mark:]
    interp_steps = interp.steps - step_mark

    if compiled_error is not None:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: compiled body "
            f"raised {type(compiled_error).__name__}: {compiled_error} "
            f"but the interpreter succeeded"
        ) from compiled_error
    problems = []
    if compiled_writes != interp_writes:
        extra = sorted(set(compiled_writes) - set(interp_writes))
        missing = sorted(set(interp_writes) - set(compiled_writes))
        changed = sorted(
            key
            for key in set(compiled_writes) & set(interp_writes)
            if compiled_writes[key] != interp_writes[key]
        )
        problems.append(
            f"write logs differ (extra={extra!r} missing={missing!r} "
            f"changed={changed!r})"
        )
    if compiled_output != interp_output:
        problems.append(
            f"outputs differ (compiled={compiled_output!r} "
            f"interpreted={interp_output!r})"
        )
    if compiled_steps != interp_steps:
        problems.append(
            f"step counts differ (compiled={compiled_steps} "
            f"interpreted={interp_steps})"
        )
    if compiled_value != interp_value or (
        type(compiled_value) is not type(interp_value)
    ):
        problems.append(
            f"return values differ (compiled={compiled_value!r} "
            f"interpreted={interp_value!r})"
        )
    if problems:
        raise EmulationError(
            f"VERIFY_COMPILED divergence at {entry.label}: "
            + "; ".join(problems)
        )
    return "compiled", interp_value
