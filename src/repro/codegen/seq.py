"""Lower a function's *sequential stretches* to one exec-compiled body.

Where :mod:`repro.codegen.lower` compiles the body of a DOALL chunk,
this module compiles everything *around* the parallel regions: the
whole function lowers to a block-index state machine with the exact
semantics of ``Interpreter._run_function`` — one step per executed
instruction against ``max_steps`` (with the interpreter's own error
message), the interpreter's lazy "use of unexecuted instruction" error
for registers whose defining block never ran (mapped from Python's
``UnboundLocalError``), and ``return`` lowering to a real return.

Planned parallel regions are *stops*: their member loop blocks are
excluded from the lowering, and every transfer into a region's header
becomes a pseudo-state that

1. syncs the step counter into the interpreter,
2. flushes the registers the region dispatcher reads from the parent
   frame (canonical bounds plus every lowered value the loop body uses)
   into ``frame.registers`` — unbound registers stay absent, exactly
   like the interpreter's lazy frame,
3. calls ``interp._compiled_region_stop(header, frame)`` (the
   :class:`~repro.runtime.executor.ParallelInterpreter` hook mirroring
   ``_maybe_run_parallel_loop``), and
4. resumes at the region's statically-known canonical exit block.

Entry bindings (arguments, globals) are eager and raise
:class:`~repro.codegen.runtime.Bailout` before any side effect, so the
interpreter fallback replays the call from an untouched state.  Anything
outside the supported matrix raises :class:`Unsupported` and the
function stays interpreted — never fail, always fall back.
"""

import dataclasses

from repro.analysis.loops import find_natural_loops
from repro.ir import instructions as insts
from repro.ir.types import PointerType
from repro.codegen import runtime as _runtime
from repro.codegen.lower import _UNOP_HELPERS, Unsupported, _Emitter, \
    _Lowering


@dataclasses.dataclass
class CompiledSequence:
    """One exec-compiled function body.

    ``fn(interp, frame)`` has ``Interpreter._run_function`` semantics
    for a fresh frame: it returns the function's return value, counts
    steps, and dispatches planned regions through the interpreter's
    ``_compiled_region_stop`` hook.
    """

    fn: object
    source: str
    function: str  # IR function name
    stops: tuple  # ((header, (member header, ...)), ...) lowered against
    logged: bool  # stores mark the interpreter's write log
    module_key: str = None
    refs: tuple = ()

    @property
    def label(self):
        return f"@{self.function}"


def sequence_stops(regions, function):
    """The region-stop spec for ``function``, in block order.

    ``regions`` maps header block name -> region parallelization (the
    interpreter's dispatch table); only headers that name a block of
    *this* function become stops.  The spec is pure content (names
    only), so it keys the codegen source cache.
    """
    stops = []
    for block in function.blocks:
        region = regions.get(block.name)
        if region is not None:
            # An interchanged nest is keyed (and resumed) at its outer
            # loop, whose block set contains the inner members — the
            # outer header is the stop's sole member so the exit,
            # excluded blocks, and flush set all resolve against it.
            if getattr(region, "outer_header", None):
                members = (region.outer_header,)
            else:
                members = tuple(
                    recipe.header for recipe in region.recipes
                )
            stops.append((block.name, members))
    return tuple(stops)


class _Stop:
    """One resolved region stop: member loops, exit block, flush set."""

    __slots__ = ("header", "block", "loops", "exit", "flush", "state",
                 "used")

    def __init__(self, header, block, loops, exit_block):
        self.header = header
        self.block = block
        self.loops = loops
        self.exit = exit_block
        self.flush = ()
        self.state = None
        self.used = False


class _SequenceLowering(_Lowering):
    """Lowers one function's sequential stretches to a state machine.

    Reuses the chunk lowering's operand rendering and per-instruction
    statements; overrides control flow (whole-function state machine,
    region stops, real returns), the step-check message, and the entry
    bindings (arguments and globals instead of live-in registers).
    """

    def __init__(self, function, stops, logged):
        # Deliberately not calling _Lowering.__init__: there is no loop.
        self.loop = None
        self.logged = bool(logged)
        self.function = function
        self.refs = []
        self._ref_names = {}
        self.live_ins = {}
        self.args = {}
        self.globals = {}
        self.allocas = []
        self.counter = 0
        self.prologue = None  # no guard hoisting outside chunk bodies
        self._skip_guards = frozenset()
        self._stops = self._resolve_stops(stops)
        self._excluded = {
            id(block)
            for stop in self._stops.values()
            for loop in stop.loops
            for block in loop.blocks
        }
        self.blocks = self._reachable_blocks()
        self.defined = {
            id(inst) for b in self.blocks for inst in b.instructions
        }
        for stop in self._stops.values():
            if stop.used:
                stop.flush = self._flush_set(stop)

    # -- stop resolution -----------------------------------------------------

    def _resolve_stops(self, stops):
        loops_by_header = {
            loop.header.name: loop
            for loop in find_natural_loops(self.function)
        }
        resolved = {}
        for header, members in stops:
            loops = []
            for member in members:
                loop = loops_by_header.get(member)
                if loop is None or loop.canonical is None:
                    # The interpreter would raise PlanError here; stay
                    # on the interpreter so it can.
                    raise Unsupported(
                        f"region member {member} lacks canonical form"
                    )
                loops.append(loop)
            block = self.function.block(header)
            exit_block = self.function.block(loops[-1].canonical.exit)
            resolved[header] = _Stop(header, block, loops, exit_block)
        return resolved

    def _reachable_blocks(self):
        """Lowered blocks reachable from entry, region loops projected out.

        Traversal continues at a stop's canonical exit instead of
        entering its loop blocks, mirroring the interpreter's takeover.
        """
        entry = self.function.entry
        if id(entry) in self._excluded:
            raise Unsupported("entry block belongs to a planned region")
        order = []
        seen = set()
        stack = [entry]
        while stack:
            block = stack.pop()
            if id(block) in seen:
                continue
            if id(block) in self._excluded:
                raise Unsupported(
                    f"control enters planned region mid-loop "
                    f"({block.name})"
                )
            seen.add(id(block))
            order.append(block)
            terminator = (
                block.instructions[-1] if block.instructions else None
            )
            if not isinstance(terminator, insts.Terminator):
                continue  # refused at emission time
            for successor in reversed(terminator.successors()):
                stop = self._stops.get(successor.name)
                if stop is not None:
                    stop.used = True
                    stack.append(stop.exit)
                else:
                    stack.append(successor)
        reachable = {id(block) for block in order}
        return [b for b in self.function.blocks if id(b) in reachable]

    def _flush_set(self, stop):
        """Lowered instructions the region dispatch reads from the frame.

        The dispatcher evaluates each member loop's canonical bounds via
        ``frame.registers`` and copies the whole register file into the
        worker frames (chunk live-ins, pointer remaps), so every lowered
        value the loop consumes must be flushed before the stop.
        """
        candidates = []
        for loop in stop.loops:
            canonical = loop.canonical
            candidates.extend(
                (canonical.lower, canonical.upper, canonical.step)
            )
            for block in loop.blocks:
                for inst in block.instructions:
                    candidates.extend(inst.operands)
        flush = {}
        for value in candidates:
            if (
                isinstance(value, insts.Instruction)
                and id(value) in self.defined
            ):
                flush[id(value)] = value
        return tuple(
            sorted(flush.values(), key=lambda inst: inst.uid)
        )

    # -- overrides of the chunk lowering -------------------------------------

    def _register(self, inst):
        # No live-in protocol: every register the function reads is
        # either defined in a lowered block (a plain local) or left
        # unbound so UnboundLocalError maps to the interpreter's lazy
        # "use of unexecuted instruction" error.
        if isinstance(inst.type, PointerType):
            return f"_r{inst.uid}_s", f"_r{inst.uid}_o"
        return f"_r{inst.uid}"

    def _step_check(self, out, count):
        out.emit(f"_steps += {count}")
        out.emit("if _steps > _max:")
        out.indent += 1
        out.emit(
            "raise _EmulationError("
            "f\"exceeded max_steps={_max}; infinite loop?\")"
        )
        out.indent -= 1

    def _goto(self, out, target, states):
        stop = self._stops.get(target.name)
        if stop is not None:
            out.emit(f"_b = {stop.state}")
            out.emit("continue")
        elif id(target) in states:
            out.emit(f"_b = {states[id(target)]}")
            out.emit("continue")
        else:
            raise Unsupported(
                f"branch into planned region body ({target.name})"
            )

    def lower_terminator(self, out, inst, states):
        if isinstance(inst, insts.Return):
            out.emit("interp.steps = _steps")
            if inst.operands:
                out.emit(f"return {self.any_value(inst.value)}")
            else:
                out.emit("return None")
        else:
            super().lower_terminator(out, inst, states)

    # -- the state machine ----------------------------------------------------

    def lower_body(self, out):
        states = {
            id(block): index for index, block in enumerate(self.blocks)
        }
        used_stops = [
            stop for stop in self._stops.values() if stop.used
        ]
        for offset, stop in enumerate(used_stops):
            stop.state = len(self.blocks) + offset
        out.emit(f"_b = {states[id(self.function.entry)]}")
        out.emit("while True:")
        out.indent += 1
        for index, block in enumerate(self.blocks):
            out.emit(f"{'if' if index == 0 else 'elif'} _b == {index}:")
            out.indent += 1
            if not block.instructions:
                raise Unsupported(f"empty block {block.name}")
            terminator = block.instructions[-1]
            if not isinstance(terminator, insts.Terminator):
                # Statically unreachable for verifier-passed modules;
                # refusing keeps the interpreter's fell-off-the-end
                # error exact.
                raise Unsupported(f"unterminated block {block.name}")
            self._step_check(out, len(block.instructions))
            for inst in block.instructions[:-1]:
                if isinstance(inst, insts.Terminator):
                    raise Unsupported("terminator before end of block")
                self.lower_instruction(out, inst)
            self.lower_terminator(out, terminator, states)
            out.indent -= 1
        for stop in used_stops:
            out.emit(f"elif _b == {stop.state}:")
            out.indent += 1
            out.emit("interp.steps = _steps")
            self._emit_flush(out, stop)
            out.emit(
                f"interp._compiled_region_stop({stop.header!r}, frame)"
            )
            out.emit("_steps = interp.steps")
            out.emit(f"_b = {states[id(stop.exit)]}")
            out.indent -= 1
        out.indent -= 1

    def _emit_flush(self, out, stop):
        for inst in stop.flush:
            key = self.ref(inst)
            if isinstance(inst.type, PointerType):
                value = f"(_r{inst.uid}_s, _r{inst.uid}_o)"
            else:
                value = f"_r{inst.uid}"
            out.emit("try:")
            out.indent += 1
            out.emit(f"frame.registers[{key}] = {value}")
            out.indent -= 1
            out.emit("except UnboundLocalError:")
            out.indent += 1
            out.emit("pass")
            out.indent -= 1

    # -- whole-body assembly ---------------------------------------------------

    def _entry_bindings(self, out):
        for index in sorted(self.args):
            if self.args[index]:
                out.emit(
                    f"_a{index}_s, _a{index}_o = frame.args[{index}]"
                )
            else:
                out.emit(f"_a{index} = frame.args[{index}]")
        for name, local in self.globals.items():
            out.emit(f"{local} = frame.global_overlay.get({name!r})")
            out.emit(f"if {local} is None:")
            out.indent += 1
            out.emit(f"{local} = interp._global_storage[{name!r}]")
            out.indent -= 1
        if not out.lines:
            out.emit("pass")

    def lower(self):
        body = _Emitter()
        body.indent = 3  # def _factory / def _seq / try
        self.lower_body(body)
        entry = _Emitter()
        entry.indent = 3  # def _factory / def _seq / try
        self._entry_bindings(entry)

        out = _Emitter()
        out.emit("def _factory(refs, H):")
        out.indent += 1
        if self.refs:
            names = ", ".join(
                f"_k{index}" for index in range(len(self.refs))
            )
            trailer = "," if len(self.refs) == 1 else ""
            out.emit(f"({names}{trailer}) = refs")
        out.emit("_EmulationError = H.EmulationError")
        out.emit("_Bailout = H.Bailout")
        out.emit("_unbound = H.unbound_register")
        out.emit("_trunc_div = H.trunc_div")
        out.emit("_trunc_rem = H.trunc_rem")
        for helper in sorted(set(_UNOP_HELPERS.values())):
            out.emit(f"{helper} = H.{helper[1:]}")
        out.emit("def _seq(interp, frame):")
        out.indent += 1
        out.emit("_objs = frame.objects")
        out.emit("_out = interp.output")
        out.emit("_max = interp.max_steps")
        out.emit("_steps = interp.steps")
        if self.logged:
            out.emit("_log = interp.write_log")
        out.emit("try:")
        out.lines.extend(entry.lines)
        out.emit("except (KeyError, IndexError, TypeError, ValueError):")
        out.indent += 1
        out.emit("raise _Bailout() from None")
        out.indent -= 1
        out.emit("try:")
        out.lines.extend(body.lines)
        out.emit("except UnboundLocalError as _exc:")
        out.indent += 1
        out.emit("raise _unbound(_exc) from None")
        out.indent -= 1
        out.indent -= 1
        out.emit("return _seq")
        return out.source()


def lower_sequence(function, stops, logged):
    """Generate (source, refs) for one function; raises Unsupported."""
    lowering = _SequenceLowering(function, tuple(stops), bool(logged))
    return lowering.lower(), lowering.refs


def exec_sequence(source, refs, function, stops, logged,
                  module_key=None):
    """``exec``-compile lowered function source against concrete refs.

    Split from :func:`compile_sequence` so the content-hash source
    cache can rebuild an entry for a re-decoded module without
    re-lowering (same split as :func:`repro.codegen.lower.exec_chunk`).
    """
    variant = "logged" if logged else "plain"
    filename = f"<repro-codegen @{function}:{variant}>"
    namespace = {}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    fn = namespace["_factory"](tuple(refs), _runtime)
    return CompiledSequence(
        fn=fn,
        source=source,
        function=function,
        stops=tuple(stops),
        logged=bool(logged),
        module_key=module_key,
        refs=tuple(refs),
    )


def compile_sequence(function, stops, logged, module_key=None):
    """Lower and ``exec``-compile one function's sequential stretches."""
    source, refs = lower_sequence(function, stops, logged)
    return exec_sequence(
        source, refs, function.name, tuple(stops), bool(logged),
        module_key=module_key,
    )
