"""Feature-removal projections ("PS-PDG w/o X"), per Section 4 of the paper.

Each projection maps a PS-PDG to a :class:`ReducedGraph`: the representation
a compiler would be left with if the feature did not exist.  Removing a
feature has two effects:

1. the feature's annotations disappear from the representation, and
2. the dependences the feature had justified removing come back (the
   builder's relaxation log says exactly which), because a sound compiler
   must now assume them.

The necessity argument (Fig. 11) is then executable: two semantically
different programs whose full PS-PDGs differ become *identical* reduced
graphs under the projection that removes the feature distinguishing them
(checked via :mod:`repro.core.canonical`).
"""

import dataclasses

from repro.core.model import HierarchicalNode, InstructionNode

FEATURE_HIERARCHICAL_UNDIRECTED = "hn_ue"
FEATURE_TRAITS = "nt"
FEATURE_CONTEXTS = "c"
FEATURE_SELECTORS = "dsde"
FEATURE_VARIABLES = "psv"

ALL_FEATURES = (
    FEATURE_HIERARCHICAL_UNDIRECTED,
    FEATURE_TRAITS,
    FEATURE_CONTEXTS,
    FEATURE_SELECTORS,
    FEATURE_VARIABLES,
)


@dataclasses.dataclass
class ReducedNode:
    """Projection of a PS-PDG node."""

    key: object  # stable id within the reduced graph
    color: str  # opcode/kind descriptor
    traits: tuple  # (kind, context) pairs, possibly context-erased
    parent: object = None  # parent key, or None when hierarchy removed


@dataclasses.dataclass
class ReducedEdge:
    key_a: object
    key_b: object
    directed: bool
    label: str  # kind/mem-kind/selector/carried descriptor


@dataclasses.dataclass
class ReducedVariable:
    semantics: str
    context: str  # "" when contexts are erased
    reducer_op: str
    use_colors: tuple
    def_colors: tuple


@dataclasses.dataclass
class ReducedGraph:
    """What remains of a PS-PDG after removing a feature set."""

    nodes: list
    edges: list
    variables: list
    removed_features: tuple


def project(pspdg, removed_features):
    """Project ``pspdg`` to the representation lacking ``removed_features``."""
    removed = frozenset(removed_features)
    drop_hierarchy = FEATURE_HIERARCHICAL_UNDIRECTED in removed
    drop_contexts = FEATURE_CONTEXTS in removed
    # Traits, variables, and selectors are all context-parameterized in the
    # Table 1 grammar — (Kind, Context) — so removing contexts removes
    # them too: there is no way to say *where* they hold.
    drop_traits = FEATURE_TRAITS in removed or drop_contexts
    drop_selectors = FEATURE_SELECTORS in removed or drop_contexts
    drop_variables = FEATURE_VARIABLES in removed or drop_contexts

    nodes = []
    node_key = {}

    def context_tag(label):
        # With contexts removed every label collapses to the same blank tag;
        # presence of *some* context is not distinguishable either (a
        # context is just its identifier).
        return "" if drop_contexts else (label or "")

    for node in pspdg.all_nodes():
        if isinstance(node, HierarchicalNode) and drop_hierarchy:
            continue
        key = id(node)
        node_key[node] = key
        if isinstance(node, InstructionNode):
            color = _instruction_color(node.instruction)
        else:
            # Hierarchical nodes carry no intrinsic label in the Table 1
            # grammar (the builder's `kind` is implementation bookkeeping);
            # only traits/contexts/edges distinguish them.
            color = "hnode"
        traits = ()
        if not drop_traits and not (
            drop_hierarchy and isinstance(node, HierarchicalNode)
        ):
            traits = tuple(
                sorted((t.kind, context_tag(t.context)) for t in node.traits)
            )
        nodes.append(ReducedNode(key=key, color=color, traits=traits))

    # Parent links (hierarchy feature).
    if not drop_hierarchy:
        for node in pspdg.all_nodes():
            if node.parent is not None and node in node_key:
                parent = node.parent
                for reduced in nodes:
                    if reduced.key == node_key[node]:
                        reduced.parent = node_key.get(parent)
                        break

    def anchor_key(node):
        """Node key, falling back to leaf instructions when hierarchy is
        removed (edges re-anchor to member instructions)."""
        if node in node_key:
            return [node_key[node]]
        return [
            node_key[pspdg.node_of(inst)]
            for inst in node.leaf_instructions()
            if pspdg.node_of(inst) in node_key
        ]

    # Directed edges: accumulate native edges, then fold restored
    # relaxations back *into the matching edge* so a dependence that the
    # removed feature had relaxed becomes indistinguishable from one that
    # was never relaxed (that indistinguishability IS the necessity
    # argument).
    restore_features = set()
    if drop_hierarchy:
        restore_features.add("undirected")
    if drop_variables:
        restore_features.add("variable")
    if drop_selectors:
        restore_features.add("selector")
    if drop_contexts:
        restore_features.update(
            {"independence", "variable", "selector", "undirected", "task"}
        )

    accumulated = {}

    def edge_slot(src_key, dst_key, kind, mem_kind, obj):
        key = (src_key, dst_key, kind, mem_kind or "", id(obj))
        if key not in accumulated:
            accumulated[key] = {
                "src": src_key,
                "dst": dst_key,
                "kind": kind,
                "mem_kind": mem_kind or "",
                "intra": False,
                "carried": set(),
                "selector": "",
            }
        return accumulated[key]

    for edge in pspdg.directed_edges:
        for src in anchor_key(edge.producer):
            for dst in anchor_key(edge.consumer):
                slot = edge_slot(src, dst, edge.kind, edge.mem_kind, edge.obj)
                slot["intra"] = slot["intra"] or edge.loop_independent
                slot["carried"].update(
                    context_tag(c) for c in edge.carried_contexts
                )
                if edge.selector is not None and not drop_selectors:
                    slot["selector"] = (
                        f"{edge.selector.kind}"
                        f"@{context_tag(edge.selector.context)}"
                    )

    for relaxation in pspdg.relaxations:
        if relaxation.feature not in restore_features:
            continue
        src_node = pspdg.instruction_nodes.get(relaxation.source)
        dst_node = pspdg.instruction_nodes.get(relaxation.destination)
        if src_node not in node_key or dst_node not in node_key:
            continue
        slot = edge_slot(
            node_key[src_node],
            node_key[dst_node],
            relaxation.kind,
            relaxation.mem_kind,
            relaxation.obj,
        )
        slot["intra"] = slot["intra"] or relaxation.loop_independent_removed
        slot["carried"].update(
            context_tag(c) for c in relaxation.carried_removed
        )

    edges = []
    for slot in accumulated.values():
        label = (
            f"{slot['kind']}/{slot['mem_kind']}/intra={slot['intra']}"
            f"/carried={tuple(sorted(slot['carried']))}"
            f"/sel={slot['selector']}"
        )
        edges.append(ReducedEdge(slot["src"], slot["dst"], True, label))

    if not drop_hierarchy:
        for uedge in pspdg.undirected_edges:
            label = f"undirected@{context_tag(uedge.context)}"
            for src in anchor_key(uedge.a):
                for dst in anchor_key(uedge.b):
                    edges.append(ReducedEdge(src, dst, False, label))

    variables = []
    if not drop_variables:
        for access in pspdg.accesses:
            variable = access.variable
            variables.append(
                ReducedVariable(
                    semantics=variable.semantics,
                    context=context_tag(variable.context),
                    reducer_op=variable.reducer_op or "",
                    use_colors=tuple(
                        sorted(
                            _instruction_color(i)
                            for node in access.use_nodes
                            for i in node.leaf_instructions()
                        )
                    ),
                    def_colors=tuple(
                        sorted(
                            _instruction_color(i)
                            for node in access.def_nodes
                            for i in node.leaf_instructions()
                        )
                    ),
                )
            )

    return ReducedGraph(
        nodes=nodes,
        edges=edges,
        variables=variables,
        removed_features=tuple(sorted(removed)),
    )


def without_hierarchical_and_undirected(pspdg):
    """Fig. 11-A projection: no hierarchical nodes, no undirected edges."""
    return project(pspdg, {FEATURE_HIERARCHICAL_UNDIRECTED})


def without_traits(pspdg):
    """Fig. 11-B projection: no node traits."""
    return project(pspdg, {FEATURE_TRAITS})


def without_contexts(pspdg):
    """Fig. 11-C projection: no contexts."""
    return project(pspdg, {FEATURE_CONTEXTS})


def without_selectors(pspdg):
    """Fig. 11-D projection: no data-selector directed edges."""
    return project(pspdg, {FEATURE_SELECTORS})


def without_variables(pspdg):
    """Fig. 11-E projection: no parallel semantic variables / use-def."""
    return project(pspdg, {FEATURE_VARIABLES})


def full(pspdg):
    """The identity projection (all features kept), for canonical forms."""
    return project(pspdg, set())


def _instruction_color(inst):
    parts = [inst.opcode]
    for attribute in ("op", "predicate", "kind"):
        value = getattr(inst, attribute, None)
        if isinstance(value, str):
            parts.append(value)
    from repro.ir.values import Constant

    for operand in inst.operands:
        if isinstance(operand, Constant):
            parts.append(repr(operand.value))
    return ":".join(parts)
