"""PS-PDG construction: annotated IR + sequential PDG -> PS-PDG.

The builder follows the paper's pipeline (Fig. 12): it starts from the
sequential PDG and *rewrites* it according to the parallel semantics the
frontend recorded:

* every natural loop and every directive region becomes a hierarchical
  node; labeled ones are contexts (§3.1, §3.3);
* worksharing directives remove the loop-carried dependences their
  iteration-independence declaration invalidates (§5.1), except where an
  ordering construct protects them;
* critical/atomic regions turn their carried self-dependences into
  undirected edges (any order, no overlap) and gain the atomic trait
  (§3.2, §3.4, §5.3); ``ordered`` regions keep directed order;
* single/master regions gain the singular trait (§3.2);
* data clauses produce parallel semantic variables with use/def accesses
  (§3.6, §5.2) and data selectors on live-in/live-out edges (§3.5);
* tasks/spawns drop the dependences their asynchrony disclaims and gain
  sync edges from barriers/taskwaits/syncs (§5.1, Appendix A).

Every removed dependence is logged as a :class:`Relaxation` naming the
feature that justified it; ablation projections and the J&K baseline replay
this log selectively.
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.liveness import blocks_after_loop
from repro.core.model import (
    DataSelector,
    DirectedEdge,
    HierarchicalNode,
    InstructionNode,
    PSPDG,
    Relaxation,
    SELECTOR_ALL_CONSUMERS,
    SELECTOR_ANY_PRODUCER,
    SELECTOR_LAST_PRODUCER,
    Trait,
    TRAIT_ATOMIC,
    TRAIT_SINGULAR,
    TRAIT_UNORDERED,
    UndirectedEdge,
    VAR_PRIVATIZABLE,
    VAR_REDUCIBLE,
    Variable,
)
from repro.frontend.directives import LOOP_INDEPENDENCE_KINDS
from repro.ir.instructions import Load, Store
from repro.pdg.builder import build_pdg
from repro.pdg.graph import EDGE_MEMORY

# Directive kinds whose regions multiply execution (threads/tasks), i.e.
# legitimate carriers for parallel semantics like critical's orderlessness.
_PARALLEL_CARRIER_KINDS = frozenset(
    {"parallel", "parallel_for", "for", "taskloop", "simd", "cilk_for"}
    | {"task", "sections", "cilk_scope"}
)

_ORDERING_REGION_KINDS = frozenset({"critical", "atomic", "ordered"})


def loop_context_label(header_name):
    """The context label assigned to a natural loop's hierarchical node."""
    return f"loop:{header_name}"


class PSPDGBuilder:
    """Builds the PS-PDG of one annotated function."""

    def __init__(self, function, module, alias=None, pdg=None):
        self.function = function
        self.module = module
        self.alias = alias if alias is not None else AliasAnalysis(module)
        self.pdg = (
            pdg if pdg is not None else build_pdg(function, module, self.alias)
        )
        self.graph = PSPDG(function)
        self.graph.loops = self.pdg.loops
        self._block_of = {}
        for block in function.blocks:
            for inst in block.instructions:
                self._block_of[inst] = block.name
        self._groups = []  # (node, block_name_set), innermost resolution
        self._annotation_nodes = {}  # annotation uid -> HierarchicalNode

    # -- entry point -----------------------------------------------------------

    def build(self):
        self._build_hierarchy()
        self._copy_pdg_edges()
        self._apply_data_clauses()
        self._apply_worksharing()
        self._apply_ordering_regions()
        self._apply_traits()
        self._apply_tasks_and_sync()
        self._attach_selectors()
        self._prune_empty_edges()
        return self.graph

    # -- hierarchy (§3.1, §3.3) -------------------------------------------------

    def _build_hierarchy(self):
        groups = []
        for loop in self.pdg.loops:
            label = loop_context_label(loop.header.name)
            node = HierarchicalNode(
                "loop", context_label=label, source_uid=loop.header.name
            )
            block_names = {b.name for b in loop.blocks}
            groups.append((node, block_names, len(block_names), loop))
            self.graph.context_of_loop[loop.header.name] = label

        for annotation in self.function.annotations:
            node = HierarchicalNode(
                annotation.directive.kind,
                context_label=annotation.uid,
                source_uid=annotation.uid,
            )
            block_names = set(annotation.block_names)
            groups.append((node, block_names, len(block_names), annotation))
            self._annotation_nodes[annotation.uid] = node

        # Parent = smallest strictly containing group.  Ties (identical
        # block sets) nest the later-created annotation inside the earlier,
        # matching pragma stacking order.
        for index, (node, blocks, size, _src) in enumerate(groups):
            best = None
            for j, (other, other_blocks, other_size, _o) in enumerate(groups):
                if j == index:
                    continue
                if blocks < other_blocks or (
                    blocks == other_blocks and j < index
                ):
                    if best is None or other_size < best[1]:
                        best = (other, other_size)
            if best is not None:
                best[0].add_child(node)
            else:
                self.graph.roots.append(node)
            self.graph.register_context(node)
            self._groups.append((node, blocks))

        # Leaf instruction nodes attach to the innermost containing group.
        for inst in self.pdg.nodes:
            leaf = InstructionNode(inst)
            self.graph.instruction_nodes[inst] = leaf
            owner = self._innermost_group(self._block_of[inst])
            if owner is None:
                self.graph.roots.append(leaf)
            else:
                owner.add_child(leaf)

    def _innermost_group(self, block_name):
        best = None
        best_size = None
        for node, blocks in self._groups:
            if block_name in blocks:
                if best is None or len(blocks) < best_size:
                    best = node
                    best_size = len(blocks)
        return best

    # -- PDG edge transfer ----------------------------------------------------

    def _copy_pdg_edges(self):
        for edge in self.pdg.edges:
            carried = tuple(
                loop_context_label(loop.header.name)
                for loop in edge.carried_loops
            )
            self.graph.add_directed_edge(
                DirectedEdge(
                    producer=self.graph.node_of(edge.source),
                    consumer=self.graph.node_of(edge.destination),
                    kind=edge.kind,
                    mem_kind=edge.mem_kind,
                    obj=edge.obj,
                    loop_independent=edge.loop_independent,
                    carried_contexts=carried,
                )
            )

    # -- helpers ---------------------------------------------------------------

    def _annotations_of_kind(self, kinds):
        return [
            a
            for a in self.function.annotations
            if a.directive.kind in kinds
        ]

    def _loop_for_annotation(self, annotation):
        for loop in self.pdg.loops:
            if loop.header.name == annotation.loop_header:
                return loop
        return None

    def _object_of_storage(self, storage):
        from repro.ir.instructions import Alloca
        from repro.ir.values import Argument, GlobalVariable

        if isinstance(storage, Alloca):
            return self.alias.object_for_alloca(storage)
        if isinstance(storage, GlobalVariable):
            return self.alias.object_for_global(storage)
        if isinstance(storage, Argument):
            return self.alias.object_for_argument(storage)
        raise TypeError(f"unexpected clause storage {storage!r}")

    def _accesses_of_object(self, obj, block_names=None):
        uses, defs = [], []
        for inst in self.pdg.nodes:
            if block_names is not None:
                if self._block_of[inst] not in block_names:
                    continue
            if isinstance(inst, Load):
                if self.alias.base_object(inst.pointer, self.function) is obj:
                    uses.append(self.graph.node_of(inst))
            elif isinstance(inst, Store):
                if self.alias.base_object(inst.pointer, self.function) is obj:
                    defs.append(self.graph.node_of(inst))
        return uses, defs

    def _remove_carried(self, edge, context_label, feature, extra_contexts=()):
        """Strip a carried level from an edge, logging the relaxation."""
        removed = tuple(
            c
            for c in edge.carried_contexts
            if c == context_label or c in extra_contexts
        )
        if not removed:
            return False
        edge.carried_contexts = tuple(
            c for c in edge.carried_contexts if c not in removed
        )
        self.graph.log_relaxation(
            Relaxation(
                source=edge.producer.leaf_instructions()[0],
                destination=edge.consumer.leaf_instructions()[0],
                kind=edge.kind,
                mem_kind=edge.mem_kind,
                obj=edge.obj,
                context=context_label,
                feature=feature,
                carried_removed=removed,
            )
        )
        return True

    def _remove_intra(self, edge, context_label, feature):
        if not edge.loop_independent:
            return False
        edge.loop_independent = False
        self.graph.log_relaxation(
            Relaxation(
                source=edge.producer.leaf_instructions()[0],
                destination=edge.consumer.leaf_instructions()[0],
                kind=edge.kind,
                mem_kind=edge.mem_kind,
                obj=edge.obj,
                context=context_label,
                feature=feature,
                loop_independent_removed=True,
            )
        )
        return True

    # -- data clauses (§5.2) ------------------------------------------------------

    def _apply_data_clauses(self):
        # threadprivate globals: privatizable in the whole-program context.
        threadprivate = self.module.metadata.get("threadprivate", set())
        for name in sorted(threadprivate):
            gvar = self.module.globals[name]
            obj = self.alias.object_for_global(gvar)
            uses, defs = self._accesses_of_object(obj)
            self.graph.add_variable(
                Variable(
                    name=name,
                    storage=gvar,
                    semantics=VAR_PRIVATIZABLE,
                    context="",
                    obj=obj,
                ),
                uses,
                defs,
            )

        for annotation in self.function.annotations:
            clauses = annotation.directive.clauses
            context = annotation.uid
            blocks = set(annotation.block_names)
            for op, name in clauses.reductions:
                self._declare_variable(
                    annotation, name, VAR_REDUCIBLE, context, blocks, op
                )
            for name in clauses.private:
                self._declare_variable(
                    annotation, name, VAR_PRIVATIZABLE, context, blocks
                )
            for name in clauses.firstprivate:
                self._declare_variable(
                    annotation, name, VAR_PRIVATIZABLE, context, blocks
                )
            for name in clauses.lastprivate:
                self._declare_variable(
                    annotation, name, VAR_PRIVATIZABLE, context, blocks
                )
            for name in clauses.anyvalue:
                # anyvalue(x) is the benign-race/any-write-wins idiom:
                # lowered as a privatizable copy whose winning value is
                # chosen by the Any-Producer selector.
                self._declare_variable(
                    annotation, name, VAR_PRIVATIZABLE, context, blocks
                )
            # Worksharing induction variables are privatized by the model.
            if (
                annotation.directive.kind in LOOP_INDEPENDENCE_KINDS
                and annotation.loop_header is not None
            ):
                loop = self._loop_for_annotation(annotation)
                if loop is not None and loop.canonical is not None:
                    induction = loop.canonical.induction
                    obj = self.alias.object_for_alloca(induction)
                    uses, defs = self._accesses_of_object(obj)
                    self.graph.add_variable(
                        Variable(
                            name=induction.var_name or "<iv>",
                            storage=induction,
                            semantics=VAR_PRIVATIZABLE,
                            context=context,
                            obj=obj,
                        ),
                        uses,
                        defs,
                    )

    def _declare_variable(
        self, annotation, name, semantics, context, blocks, op=None
    ):
        storage = annotation.binding(name)
        obj = self._object_of_storage(storage)
        uses, defs = self._accesses_of_object(obj)
        self.graph.add_variable(
            Variable(
                name=name,
                storage=storage,
                semantics=semantics,
                context=context,
                reducer_op=op,
                obj=obj,
            ),
            uses,
            defs,
        )

    def _variable_objects_for(self, context_labels, semantics=None):
        objects = {}
        for variable in self.graph.variables:
            if variable.context in context_labels or variable.context == "":
                if semantics is None or variable.semantics == semantics:
                    objects[id(variable.obj)] = variable
        return objects

    # -- worksharing independence (§5.1) -----------------------------------------

    def _apply_worksharing(self):
        for annotation in self._annotations_of_kind(LOOP_INDEPENDENCE_KINDS):
            loop = self._loop_for_annotation(annotation)
            if loop is None:
                continue
            loop_label = loop_context_label(loop.header.name)
            region_labels = {annotation.uid, loop_label}
            if annotation.parent_uid is not None:
                region_labels.add(annotation.parent_uid)
            protected_vars = self._variable_objects_for(region_labels)

            for edge in self.graph.directed_edges:
                if loop_label not in edge.carried_contexts:
                    continue
                producer = edge.producer
                consumer = edge.consumer
                src_region = self._ordering_region(producer)
                dst_region = self._ordering_region(consumer)
                if src_region is not None and src_region is dst_region:
                    if src_region.kind == "ordered":
                        continue  # explicit iteration order preserved
                    # critical/atomic: handled by _apply_ordering_regions.
                    continue
                if (
                    src_region is not None
                    and dst_region is not None
                    and self._same_lock(src_region, dst_region)
                ):
                    continue  # cross-region, same lock: also orderless
                variable = (
                    protected_vars.get(id(edge.obj))
                    if edge.obj is not None
                    else None
                )
                if variable is not None:
                    self._remove_carried(
                        edge, loop_label, "variable",
                        extra_contexts={annotation.uid},
                    )
                else:
                    self._remove_carried(
                        edge, loop_label, "independence",
                        extra_contexts={annotation.uid},
                    )

    def _ordering_region(self, node):
        probe = node
        while probe is not None:
            if (
                isinstance(probe, HierarchicalNode)
                and probe.kind in _ORDERING_REGION_KINDS
            ):
                return probe
            probe = probe.parent
        return None

    def _same_lock(self, region_a, region_b):
        if region_a.kind != "critical" or region_b.kind != "critical":
            return False
        name_a = self._critical_name(region_a)
        name_b = self._critical_name(region_b)
        return name_a == name_b

    def _critical_name(self, region):
        annotation = self._annotation_by_uid(region.source_uid)
        if annotation is None:
            return None
        return annotation.directive.clauses.critical_name

    def _annotation_by_uid(self, uid):
        for annotation in self.function.annotations:
            if annotation.uid == uid:
                return annotation
        return None

    # -- ordering constructs (§5.3) ----------------------------------------------

    def _apply_ordering_regions(self):
        for annotation in self._annotations_of_kind({"critical", "atomic"}):
            region = self._annotation_nodes[annotation.uid]
            carrier = self._innermost_carrier(region)
            carrier_label = (
                carrier.context_label if carrier is not None else ""
            )
            region.add_trait(Trait(TRAIT_ATOMIC, carrier_label))
            region.add_trait(Trait(TRAIT_UNORDERED, carrier_label))

            member_instructions = set(region.leaf_instructions())
            emitted = False
            for edge in self.graph.directed_edges:
                sources = edge.producer.leaf_instructions()
                destinations = edge.consumer.leaf_instructions()
                if not (
                    set(sources) <= member_instructions
                    and set(destinations) <= member_instructions
                ):
                    continue
                if not edge.carried_contexts:
                    continue
                removed = self._remove_carried_all(edge, "undirected")
                if removed:
                    emitted = True
            if emitted or member_instructions:
                self.graph.add_undirected_edge(
                    UndirectedEdge(region, region, carrier_label)
                )
            # Same-name criticals elsewhere share the lock: undirected
            # edges between the regions.
            for other in self._annotations_of_kind({"critical"}):
                if other.uid <= annotation.uid:
                    continue
                if (
                    annotation.directive.kind == "critical"
                    and other.directive.clauses.critical_name
                    == annotation.directive.clauses.critical_name
                ):
                    self.graph.add_undirected_edge(
                        UndirectedEdge(
                            region,
                            self._annotation_nodes[other.uid],
                            carrier_label,
                        )
                    )

    def _remove_carried_all(self, edge, feature):
        removed = edge.carried_contexts
        if not removed:
            return False
        edge.carried_contexts = ()
        self.graph.log_relaxation(
            Relaxation(
                source=edge.producer.leaf_instructions()[0],
                destination=edge.consumer.leaf_instructions()[0],
                kind=edge.kind,
                mem_kind=edge.mem_kind,
                obj=edge.obj,
                context=removed[0],
                feature=feature,
                carried_removed=removed,
            )
        )
        return True

    def _innermost_carrier(self, node):
        probe = node.parent
        while probe is not None:
            if (
                isinstance(probe, HierarchicalNode)
                and probe.kind in _PARALLEL_CARRIER_KINDS | {"loop"}
            ):
                # Prefer the annotated carrier over the bare loop node when
                # both wrap the same code: keep climbing past 'loop' nodes
                # only if their parent is a worksharing annotation for the
                # same loop; simplest faithful rule: accept the first
                # carrier-kind or loop node.
                return probe
            probe = probe.parent
        return None

    # -- traits (§3.2) ----------------------------------------------------------

    def _apply_traits(self):
        for annotation in self._annotations_of_kind({"single", "master"}):
            region = self._annotation_nodes[annotation.uid]
            carrier = self._innermost_carrier(region)
            label = carrier.context_label if carrier is not None else ""
            region.add_trait(Trait(TRAIT_SINGULAR, label))

    # -- tasks, spawns, and synchronization ---------------------------------------

    def _apply_tasks_and_sync(self):
        task_like = self._annotations_of_kind({"task", "cilk_spawn", "section"})
        task_nodes = [self._annotation_nodes[a.uid] for a in task_like]
        task_members = [
            set(node.leaf_instructions()) for node in task_nodes
        ]

        # Independence between sibling tasks: remove memory edges between
        # distinct task regions unless depend clauses connect them.
        for i, annotation_a in enumerate(task_like):
            for j, annotation_b in enumerate(task_like):
                if i >= j:
                    continue
                if annotation_a.parent_uid != annotation_b.parent_uid:
                    continue
                if self._tasks_depend(annotation_a, annotation_b):
                    continue
                for edge in self.graph.directed_edges:
                    if edge.kind != EDGE_MEMORY:
                        continue
                    sources = set(edge.producer.leaf_instructions())
                    dests = set(edge.consumer.leaf_instructions())
                    crossing = (
                        sources <= task_members[i] and dests <= task_members[j]
                    ) or (
                        sources <= task_members[j] and dests <= task_members[i]
                    )
                    if not crossing:
                        continue
                    context = annotation_a.parent_uid or ""
                    self._remove_intra(edge, context, "task")
                    self._remove_carried_all(edge, "task")

        # Spawned work is independent of its continuation until the sync.
        for annotation in self._annotations_of_kind({"cilk_spawn"}):
            members = set(
                self._annotation_nodes[annotation.uid].leaf_instructions()
            )
            sync_uids = self._following_syncs(annotation)
            for edge in self.graph.directed_edges:
                if edge.kind != EDGE_MEMORY:
                    continue
                sources = set(edge.producer.leaf_instructions())
                dests = set(edge.consumer.leaf_instructions())
                if not (sources <= members) or dests & members:
                    continue
                dest_inst = next(iter(dests))
                if self._before_any_sync(dest_inst, sync_uids):
                    context = annotation.parent_uid or ""
                    self._remove_intra(edge, context, "task")

        # Barriers / taskwaits / syncs: ordering edges at region level.
        for annotation in self._annotations_of_kind(
            {"barrier", "taskwait", "cilk_sync"}
        ):
            node = self._annotation_nodes[annotation.uid]
            for task_node in task_nodes:
                self.graph.add_directed_edge(
                    DirectedEdge(
                        producer=task_node,
                        consumer=node,
                        kind="sync",
                        loop_independent=True,
                    )
                )

    def _tasks_depend(self, annotation_a, annotation_b):
        def names(annotation, modes):
            return {
                name
                for mode, name in annotation.directive.clauses.depends
                if mode in modes
            }

        a_out = names(annotation_a, {"out", "inout"})
        b_out = names(annotation_b, {"out", "inout"})
        a_in = names(annotation_a, {"in", "inout"})
        b_in = names(annotation_b, {"in", "inout"})
        return bool(a_out & (b_in | b_out) or b_out & (a_in | a_out))

    def _following_syncs(self, annotation):
        return [
            a.uid
            for a in self._annotations_of_kind({"cilk_sync", "barrier"})
            if a.parent_uid == annotation.parent_uid
        ]

    def _before_any_sync(self, instruction, sync_uids):
        # Conservative: treat everything after the spawn and before the end
        # of the enclosing region as continuation; sync nodes re-anchor
        # ordering through the explicit sync edges added above.
        return True

    # -- data selectors (§3.5) ----------------------------------------------------

    def _attach_selectors(self):
        for annotation in self.function.annotations:
            clauses = annotation.directive.clauses
            blocks = set(annotation.block_names)
            loop = self._loop_for_annotation(annotation)
            for name in clauses.lastprivate:
                self._selector_on_liveout(
                    annotation, name, blocks, SELECTOR_LAST_PRODUCER
                )
            for name in clauses.anyvalue:
                self._selector_on_liveout(
                    annotation, name, blocks, SELECTOR_ANY_PRODUCER
                )
                self._relax_liveout_order(annotation, name, blocks, loop)
            for name in clauses.firstprivate:
                self._selector_on_livein(
                    annotation, name, blocks, SELECTOR_ALL_CONSUMERS
                )

    def _selector_on_liveout(self, annotation, name, blocks, kind):
        storage = annotation.binding(name)
        obj = self._object_of_storage(storage)
        for edge in self.graph.directed_edges:
            if edge.kind != EDGE_MEMORY or edge.mem_kind != "RAW":
                continue
            if edge.obj is not obj:
                continue
            src_inside = self._node_inside(edge.producer, blocks)
            dst_inside = self._node_inside(edge.consumer, blocks)
            if src_inside and not dst_inside:
                edge.selector = DataSelector(kind, annotation.uid)

    def _selector_on_livein(self, annotation, name, blocks, kind):
        storage = annotation.binding(name)
        obj = self._object_of_storage(storage)
        for edge in self.graph.directed_edges:
            if edge.kind != EDGE_MEMORY or edge.mem_kind != "RAW":
                continue
            if edge.obj is not obj:
                continue
            src_inside = self._node_inside(edge.producer, blocks)
            dst_inside = self._node_inside(edge.consumer, blocks)
            if dst_inside and not src_inside:
                edge.selector = DataSelector(kind, annotation.uid)

    def _relax_liveout_order(self, annotation, name, blocks, loop):
        """anyvalue(x): any iteration's write may win; WAW/WAR on x inside
        the region lose their carried component (feature: selector)."""
        storage = annotation.binding(name)
        obj = self._object_of_storage(storage)
        loop_label = (
            loop_context_label(loop.header.name) if loop is not None else None
        )
        for edge in self.graph.directed_edges:
            if edge.kind != EDGE_MEMORY or edge.obj is not obj:
                continue
            src_inside = self._node_inside(edge.producer, blocks)
            dst_inside = self._node_inside(edge.consumer, blocks)
            if src_inside and dst_inside and loop_label is not None:
                # (Usually already removed via the privatizable variable;
                # this catches anyvalue on loops without other clauses.)
                self._remove_carried(
                    edge, loop_label, "selector",
                    extra_contexts={annotation.uid},
                )

    def _node_inside(self, node, block_names):
        instructions = node.leaf_instructions()
        return all(
            self._block_of[inst] in block_names for inst in instructions
        )

    # -- cleanup ----------------------------------------------------------------

    def _prune_empty_edges(self):
        self.graph.directed_edges = [
            e
            for e in self.graph.directed_edges
            if e.loop_independent or e.carried_contexts or e.kind == "sync"
        ]


def build_pspdg(function, module, alias=None):
    """Convenience wrapper returning the PS-PDG of ``function``."""
    return PSPDGBuilder(function, module, alias).build()
