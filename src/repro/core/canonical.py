"""Canonical signatures of (reduced) PS-PDGs.

Used to demonstrate the necessity results: two programs are
*indistinguishable* under a representation exactly when their canonical
signatures match.  The signature is a Weisfeiler-Lehman-style color
refinement over the typed graph (node colors seeded from opcode/trait
descriptors, edge labels folded in per round), which is sound for
inequality (different signature => non-isomorphic) and reliable in practice
for the equality direction on the near-identical program pairs of Fig. 11.
"""

import hashlib

_ROUNDS = 4


def _h(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def signature(reduced):
    """Canonical signature (hex string) of a :class:`ReducedGraph`."""
    colors = {}
    for node in reduced.nodes:
        seed = f"{node.color}|traits={node.traits}"
        colors[node.key] = _h(seed)

    # Adjacency with edge labels; undirected edges contribute in both
    # directions with a symmetric tag.
    out_adj = {node.key: [] for node in reduced.nodes}
    in_adj = {node.key: [] for node in reduced.nodes}
    parent_of = {
        node.key: node.parent for node in reduced.nodes if node.parent
    }
    children_of = {}
    for key, parent in parent_of.items():
        children_of.setdefault(parent, []).append(key)

    for edge in reduced.edges:
        if edge.key_a not in out_adj or edge.key_b not in out_adj:
            continue
        if edge.directed:
            out_adj[edge.key_a].append((edge.label, edge.key_b))
            in_adj[edge.key_b].append((edge.label, edge.key_a))
        else:
            out_adj[edge.key_a].append((f"ue:{edge.label}", edge.key_b))
            out_adj[edge.key_b].append((f"ue:{edge.label}", edge.key_a))

    for _round in range(_ROUNDS):
        new_colors = {}
        for node in reduced.nodes:
            key = node.key
            outs = sorted(
                f"{label}->{colors[dst]}" for label, dst in out_adj[key]
            )
            ins = sorted(
                f"{label}<-{colors[src]}" for label, src in in_adj[key]
            )
            parent_color = (
                colors.get(parent_of.get(key), "-")
                if key in parent_of
                else "-"
            )
            child_colors = sorted(
                colors[c] for c in children_of.get(key, [])
            )
            new_colors[key] = _h(
                "|".join(
                    [
                        colors[key],
                        *outs,
                        *ins,
                        f"p={parent_color}",
                        f"c={child_colors}",
                    ]
                )
            )
        colors = new_colors

    node_part = sorted(colors.values())
    variable_part = sorted(
        f"{v.semantics}|{v.context}|{v.reducer_op}"
        f"|{v.use_colors}|{v.def_colors}"
        for v in reduced.variables
    )
    return _h("||".join(node_part + ["##"] + variable_part))


def same_representation(reduced_a, reduced_b):
    """True when two reduced graphs are indistinguishable."""
    return signature(reduced_a) == signature(reduced_b)
