"""The PS-PDG data model — a direct transcription of the paper's Table 1::

    PS-PDG        ::= (Node+, Edge*, Variable*, VariableAccess*)
    Node          ::= (Instruction, Trait*) | (HierarchicalNode, Trait*)
    HierarchicalNode ::= (Node+, Context?)
    Trait         ::= (Singular | Unordered | Atomic, Context)
    Edge          ::= DirectedEdge | UndirectedEdge
    DirectedEdge  ::= (Node_producer, Node_consumer, Data-selector?)
    UndirectedEdge::= (Node, Node, Context)
    Data-selector ::= (Any-Producer | Last-Producer | All-Consumers, Context)
    Variable      ::= (Privatizable | Reducible, Context)
    VariableAccess::= (Variable, Node*_use, Node*_def)
    Context       ::= Unique Identifier

Beyond Table 1 the implementation keeps two practical extras:

* **provenance** on directed edges (control/register/memory kind, memory
  object, loop-carried levels) inherited from the PDG, so the planner can
  reason about which contexts an edge still constrains; and
* a **relaxation log**: every PDG dependence the parallel semantics
  *removed* is recorded with the context and feature responsible.  The
  ablation projections (Section 4 of the paper) restore relaxations whose
  feature is removed, turning "PS-PDG without X" into an executable
  function instead of a thought experiment.
"""

import dataclasses

# Trait kinds (paper: Singular | Unordered | Atomic; the prose calls
# Unordered "orderless", we keep the prose name as an alias).
TRAIT_SINGULAR = "singular"
TRAIT_UNORDERED = "unordered"
TRAIT_ATOMIC = "atomic"
TRAIT_KINDS = frozenset({TRAIT_SINGULAR, TRAIT_UNORDERED, TRAIT_ATOMIC})

# Data-selector kinds.
SELECTOR_ANY_PRODUCER = "any_producer"
SELECTOR_LAST_PRODUCER = "last_producer"
SELECTOR_ALL_CONSUMERS = "all_consumers"
SELECTOR_KINDS = frozenset(
    {SELECTOR_ANY_PRODUCER, SELECTOR_LAST_PRODUCER, SELECTOR_ALL_CONSUMERS}
)

# Variable semantics.
VAR_PRIVATIZABLE = "privatizable"
VAR_REDUCIBLE = "reducible"


@dataclasses.dataclass(frozen=True)
class Trait:
    """A (kind, context) pair attached to a node."""

    kind: str
    context: str

    def __post_init__(self):
        if self.kind not in TRAIT_KINDS:
            raise ValueError(f"unknown trait kind {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class DataSelector:
    """Which dynamic producer instances may feed a consumer (per context)."""

    kind: str
    context: str

    def __post_init__(self):
        if self.kind not in SELECTOR_KINDS:
            raise ValueError(f"unknown selector kind {self.kind!r}")


class Node:
    """Base class of PS-PDG nodes (instruction leaves and hierarchies)."""

    def __init__(self):
        self.traits = []
        self.parent = None  # enclosing HierarchicalNode or None

    def add_trait(self, trait):
        if trait not in self.traits:
            self.traits.append(trait)

    def has_trait(self, kind, context=None):
        return any(
            t.kind == kind and (context is None or t.context == context)
            for t in self.traits
        )

    def leaf_instructions(self):
        raise NotImplementedError

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class InstructionNode(Node):
    """Leaf node wrapping one IR instruction."""

    def __init__(self, instruction):
        super().__init__()
        self.instruction = instruction

    def leaf_instructions(self):
        return [self.instruction]

    def __repr__(self):
        return f"<ps-node #{self.instruction.uid} {self.instruction.opcode}>"


class HierarchicalNode(Node):
    """A node grouping other nodes; labeled ones are contexts (§3.3)."""

    def __init__(self, kind, context_label=None, source_uid=None):
        super().__init__()
        self.kind = kind  # "loop" | "critical" | "task" | "region"...
        self.context_label = context_label
        self.source_uid = source_uid  # annotation uid or loop header name
        self.children = []

    def add_child(self, node):
        node.parent = self
        self.children.append(node)

    def is_context(self):
        return self.context_label is not None

    def leaf_instructions(self):
        result = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            if isinstance(node, InstructionNode):
                result.append(node.instruction)
            else:
                stack.extend(node.children)
        return result

    def descendants(self):
        stack = list(self.children)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, HierarchicalNode):
                stack.extend(node.children)

    def __repr__(self):
        label = f" ctx={self.context_label}" if self.context_label else ""
        return f"<ps-hnode {self.kind}{label} ({len(self.children)} children)>"


@dataclasses.dataclass
class DirectedEdge:
    """Producer-before-consumer ordering, optionally with a data selector."""

    producer: Node
    consumer: Node
    selector: DataSelector = None
    # Provenance (not part of Table 1; carried over from the PDG):
    kind: str = "memory"  # control | register | memory | sync
    mem_kind: str = None
    obj: object = None
    loop_independent: bool = True
    carried_contexts: tuple = ()  # context labels where the edge is carried

    def is_carried_at(self, context_label):
        return context_label in self.carried_contexts


@dataclasses.dataclass
class UndirectedEdge:
    """Two computations that must not overlap but may run in any order."""

    a: Node
    b: Node
    context: str
    obj: object = None


@dataclasses.dataclass
class Variable:
    """A parallel semantic variable (§3.6)."""

    name: str
    storage: object  # IR Alloca / GlobalVariable / Argument
    semantics: str  # privatizable | reducible
    context: str
    reducer_op: str = None  # reduction operator name for reducible vars
    reducer_node: object = None  # optional Node computing the merge
    obj: object = None  # alias-analysis MemoryObject

    def is_reducible(self):
        return self.semantics == VAR_REDUCIBLE


@dataclasses.dataclass
class VariableAccess:
    """Use/Def relation between a variable and nodes (§3.6)."""

    variable: Variable
    use_nodes: list
    def_nodes: list


@dataclasses.dataclass
class Relaxation:
    """One PDG dependence removed by parallel semantics.

    ``feature`` names the PS-PDG extension responsible, one of:
    ``"independence"`` (hierarchical nodes + contexts: worksharing),
    ``"undirected"`` (orderless critical/atomic),
    ``"variable"`` (privatizable/reducible variable),
    ``"selector"`` (data-selector freedom),
    ``"trait"`` (singular/atomic trait),
    ``"task"`` (explicit task independence).
    """

    source: object  # IR instruction
    destination: object
    kind: str
    mem_kind: str
    obj: object
    context: str  # where the relaxation is valid
    feature: str
    loop_independent_removed: bool = False
    carried_removed: tuple = ()  # context labels


class PSPDG:
    """The Parallel Semantics Program Dependence Graph of one function."""

    def __init__(self, function):
        self.function = function
        self.roots = []  # top-level nodes (forest)
        self.instruction_nodes = {}  # IR instruction -> InstructionNode
        self.contexts = {}  # label -> HierarchicalNode
        self.directed_edges = []
        self.undirected_edges = []
        self.variables = []
        self.accesses = []
        self.relaxations = []
        self.loops = []  # analysis Loop objects (outermost first)
        self.context_of_loop = {}  # header name -> context label

    # -- construction ---------------------------------------------------------

    def register_context(self, node):
        if node.context_label is None:
            raise ValueError("context nodes need a label")
        self.contexts[node.context_label] = node

    def add_directed_edge(self, edge):
        self.directed_edges.append(edge)
        return edge

    def add_undirected_edge(self, edge):
        self.undirected_edges.append(edge)
        return edge

    def add_variable(self, variable, use_nodes=(), def_nodes=()):
        self.variables.append(variable)
        self.accesses.append(
            VariableAccess(variable, list(use_nodes), list(def_nodes))
        )
        return variable

    def log_relaxation(self, relaxation):
        self.relaxations.append(relaxation)

    # -- queries -----------------------------------------------------------------

    def node_of(self, instruction):
        return self.instruction_nodes[instruction]

    def all_nodes(self):
        result = []
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            result.append(node)
            if isinstance(node, HierarchicalNode):
                stack.extend(node.children)
        return result

    def hierarchical_nodes(self):
        return [
            n for n in self.all_nodes() if isinstance(n, HierarchicalNode)
        ]

    def enclosing_region(self, instruction, kinds):
        """Innermost enclosing hierarchical node of one of ``kinds``."""
        node = self.instruction_nodes[instruction].parent
        while node is not None:
            if node.kind in kinds:
                return node
            node = node.parent
        return None

    def variables_for_context(self, context_label, semantics=None):
        chain = self.context_chain(context_label)
        selected = []
        for variable in self.variables:
            if variable.context in chain and (
                semantics is None or variable.semantics == semantics
            ):
                selected.append(variable)
        return selected

    def context_chain(self, context_label):
        """The label plus all enclosing context labels (inner to outer)."""
        labels = []
        node = self.contexts.get(context_label)
        while node is not None:
            if node.context_label is not None:
                labels.append(node.context_label)
            node = node.parent
        # Program-wide semantics (e.g. threadprivate) use the "" context.
        labels.append("")
        return labels

    def statistics(self):
        """Feature counts (Section 6.1-style construction statistics)."""
        hnodes = self.hierarchical_nodes()
        return {
            "instruction_nodes": len(self.instruction_nodes),
            "hierarchical_nodes": len(hnodes),
            "contexts": len(self.contexts),
            "traits": sum(len(n.traits) for n in self.all_nodes()),
            "directed_edges": len(self.directed_edges),
            "undirected_edges": len(self.undirected_edges),
            "selector_edges": sum(
                1 for e in self.directed_edges if e.selector is not None
            ),
            "variables": len(self.variables),
            "privatizable": sum(
                1
                for v in self.variables
                if v.semantics == VAR_PRIVATIZABLE
            ),
            "reducible": sum(1 for v in self.variables if v.is_reducible()),
            "relaxations": len(self.relaxations),
        }
