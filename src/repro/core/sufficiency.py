"""Sufficiency of the PS-PDG for OpenMP (§5) and Cilk (Appendix A).

The paper groups the targeted OpenMP 5.0 subset into three semantic
families and shows each maps onto PS-PDG features.  This module encodes the
mapping as data (:data:`OPENMP_FEATURE_MAP`, :data:`CILK_FEATURE_MAP`) and
provides :func:`expected_features`/:func:`realized_features` so tests can
verify, construct by construct, that our builder actually produces the
features the mapping promises — an executable version of the sufficiency
argument.

Excluded feature groups (per the paper): execution control, target offload,
runtime calls, tooling; Cilk inlets, array operations, elemental functions,
and the simd pragma (``cilk simd`` ≡ ``omp simd``); clauses that only tune
the *amount* of parallelism (num_threads, grainsize, schedule/chunk) map to
no semantic feature.
"""

from repro.core.model import (
    TRAIT_ATOMIC,
    TRAIT_SINGULAR,
    TRAIT_UNORDERED,
)

# Feature atoms used in the mapping.
F_HIERARCHICAL = "hierarchical_node"
F_CONTEXT = "context"
F_UNDIRECTED = "undirected_edge"
F_DIRECTED = "directed_edge"
F_TRAIT_ATOMIC = f"trait:{TRAIT_ATOMIC}"
F_TRAIT_SINGULAR = f"trait:{TRAIT_SINGULAR}"
F_TRAIT_UNORDERED = f"trait:{TRAIT_UNORDERED}"
F_VAR_PRIVATIZABLE = "variable:privatizable"
F_VAR_REDUCIBLE = "variable:reducible"
F_SEL_ANY = "selector:any_producer"
F_SEL_LAST = "selector:last_producer"
F_SEL_ALL = "selector:all_consumers"
F_INDEPENDENCE = "independence_relaxation"
F_SYNC = "sync_edge"

# §5.1 declaration of independence; §5.2 data properties; §5.3 ordering.
OPENMP_FEATURE_MAP = {
    "parallel": {F_HIERARCHICAL, F_CONTEXT},
    "for": {F_HIERARCHICAL, F_CONTEXT, F_INDEPENDENCE},
    "parallel_for": {F_HIERARCHICAL, F_CONTEXT, F_INDEPENDENCE},
    "taskloop": {F_HIERARCHICAL, F_CONTEXT, F_INDEPENDENCE},
    "simd": {F_HIERARCHICAL, F_CONTEXT, F_INDEPENDENCE},
    "sections": {F_HIERARCHICAL, F_CONTEXT},
    "section": {F_HIERARCHICAL, F_CONTEXT},
    "task": {F_HIERARCHICAL, F_CONTEXT},
    "barrier": {F_SYNC},
    "taskwait": {F_SYNC},
    "critical": {F_HIERARCHICAL, F_UNDIRECTED, F_TRAIT_ATOMIC},
    "atomic": {F_HIERARCHICAL, F_UNDIRECTED, F_TRAIT_ATOMIC},
    "ordered": {F_HIERARCHICAL, F_DIRECTED},
    "single": {F_HIERARCHICAL, F_TRAIT_SINGULAR, F_CONTEXT},
    "master": {F_HIERARCHICAL, F_TRAIT_SINGULAR, F_CONTEXT},
    "threadprivate": {F_VAR_PRIVATIZABLE},
}

# Clause-level mapping (§5.2).
OPENMP_CLAUSE_FEATURE_MAP = {
    "private": {F_VAR_PRIVATIZABLE},
    "firstprivate": {F_VAR_PRIVATIZABLE, F_SEL_ALL},
    "lastprivate": {F_VAR_PRIVATIZABLE, F_SEL_LAST},
    "reduction": {F_VAR_REDUCIBLE},
    "anyvalue": {F_SEL_ANY, F_VAR_PRIVATIZABLE},
}

# Appendix A: Cilk constructs.
CILK_FEATURE_MAP = {
    "cilk_spawn": {F_HIERARCHICAL, F_CONTEXT},
    "cilk_sync": {F_SYNC},
    "cilk_scope": {F_HIERARCHICAL, F_CONTEXT},
    "cilk_for": {F_HIERARCHICAL, F_CONTEXT, F_INDEPENDENCE},
    "cilk_reducer": {F_VAR_REDUCIBLE},
}


def expected_features(directive):
    """PS-PDG features one directive (with its clauses) should produce."""
    mapping = {**OPENMP_FEATURE_MAP, **CILK_FEATURE_MAP}
    features = set(mapping.get(directive.kind, set()))
    clauses = directive.clauses
    if clauses.private:
        features |= OPENMP_CLAUSE_FEATURE_MAP["private"]
    if clauses.firstprivate:
        features |= OPENMP_CLAUSE_FEATURE_MAP["firstprivate"]
    if clauses.lastprivate:
        features |= OPENMP_CLAUSE_FEATURE_MAP["lastprivate"]
    if clauses.reductions:
        features |= OPENMP_CLAUSE_FEATURE_MAP["reduction"]
    if clauses.anyvalue:
        features |= OPENMP_CLAUSE_FEATURE_MAP["anyvalue"]
    return features


def realized_features(pspdg, annotation):
    """Features the built PS-PDG actually exhibits for one annotation."""
    features = set()
    node = None
    for hnode in pspdg.hierarchical_nodes():
        if hnode.source_uid == annotation.uid:
            node = hnode
            break
    if node is not None:
        features.add(F_HIERARCHICAL)
        if node.is_context():
            features.add(F_CONTEXT)
        for trait in node.traits:
            features.add(f"trait:{trait.kind}")
        for uedge in pspdg.undirected_edges:
            if uedge.a is node or uedge.b is node:
                features.add(F_UNDIRECTED)
        members = set(node.leaf_instructions())
        for edge in pspdg.directed_edges:
            if edge.producer is node or edge.consumer is node:
                if edge.kind == "sync":
                    features.add(F_SYNC)
                else:
                    features.add(F_DIRECTED)
                continue
            # Ordered regions keep *instruction-level* directed carried
            # dependences among their members: that is the directed-edge
            # feature in action.
            sources = set(edge.producer.leaf_instructions())
            destinations = set(edge.consumer.leaf_instructions())
            if (
                edge.carried_contexts
                and sources <= members
                and destinations <= members
            ):
                features.add(F_DIRECTED)

    for relaxation in pspdg.relaxations:
        chain = {annotation.uid}
        if annotation.loop_header is not None:
            chain.add(f"loop:{annotation.loop_header}")
        if relaxation.context in chain:
            if relaxation.feature == "independence":
                features.add(F_INDEPENDENCE)
            elif relaxation.feature == "undirected":
                features.add(F_UNDIRECTED)

    for variable in pspdg.variables:
        contexts = {annotation.uid}
        if annotation.loop_header is not None:
            contexts.add(f"loop:{annotation.loop_header}")
        if variable.context in contexts:
            features.add(f"variable:{variable.semantics}")

    for edge in pspdg.directed_edges:
        if edge.selector is not None and edge.selector.context == annotation.uid:
            features.add(f"selector:{edge.selector.kind}")

    # Sync edges may target the annotation's node even when the node holds
    # no other features (barrier/taskwait/cilk_sync).
    if node is not None:
        for edge in pspdg.directed_edges:
            if edge.kind == "sync" and (
                edge.consumer is node or edge.producer is node
            ):
                features.add(F_SYNC)
    return features


def missing_features(pspdg, annotation):
    """Expected-but-not-realized features (empty = sufficiency holds)."""
    expected = expected_features(annotation.directive)
    realized = realized_features(pspdg, annotation)
    missing = set()
    for feature in expected:
        if feature in realized:
            continue
        # Independence/variable/selector features are only observable when
        # the loop actually has dependences to relax or live-outs to
        # select; treat "nothing to relax" as satisfied.
        if feature == F_INDEPENDENCE:
            continue
        missing.add(feature)
    return missing
