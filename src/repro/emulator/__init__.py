"""repro.emulator — reference interpreter, dynamic profiles, critical path."""

from repro.emulator.interp import (
    ExecutionResult,
    Interpreter,
    run_module,
    run_source,
)
from repro.emulator.profile import (
    FunctionProfile,
    IterationProfile,
    LoopInstanceProfile,
    Profiler,
)

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "run_module",
    "run_source",
    "FunctionProfile",
    "IterationProfile",
    "LoopInstanceProfile",
    "Profiler",
]
