"""Reference interpreter for the repro IR.

Executes a module sequentially, producing the program's observable output
(the ordered list of ``print`` records) plus dynamic instruction counts.
Optionally drives a :class:`~repro.emulator.profile.Profiler` that builds
the dynamic loop-nest tree the critical-path evaluator consumes.

Semantics notes:

* an ``alloca`` denotes one object per *function activation* (re-executing
  the instruction returns the same storage, zero-initialized at frame
  entry on first touch);
* integer division/remainder truncate toward zero (C semantics);
* pointers are (storage, offset) pairs; ``getelementptr`` is bounds-checked
  against the object's slot count, so wild indexing fails loudly.
"""

import dataclasses
import math

from repro.analysis.loops import find_natural_loops
from repro.ir import instructions as insts
from repro.ir.types import FLOAT, INT, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable
from repro.util.errors import EmulationError


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one interpreted run."""

    output: list  # [(label or None, tuple of values)]
    return_value: object
    steps: int
    profile: object = None  # FunctionProfile when profiling was requested
    # Per-region stats when the run used a parallel backend: header,
    # backend, schedule, workers, chunk, seconds, per_worker timings,
    # and (processes) payloads / payload_bytes / dirty_slots.
    parallel_regions: list = dataclasses.field(default_factory=list)
    # Sequential-stretch execution modes when region compilation was
    # on: how many function calls ran compiled vs interpreted.
    sequence_stats: dict = dataclasses.field(default_factory=dict)

    def formatted_output(self):
        lines = []
        for label, values in self.output:
            rendered = " ".join(_render(v) for v in values)
            if label is not None:
                lines.append(f"{label} {rendered}".rstrip())
            else:
                lines.append(rendered)
        return lines


def _render(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _trunc_div(a, b):
    if b == 0:
        raise EmulationError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _trunc_rem(a, b):
    return a - _trunc_div(a, b) * b


def record_write(log, storage, slot):
    """Mark ``storage[slot]`` dirty in a write log *before* overwriting it.

    The runtime's non-store mutation paths (diff merges, reduction and
    lastprivate joins) go through this so the parent's inter-region
    write log sees every shared-state change, not just interpreted
    stores.  No-op cost when logging is off: callers guard on the log.
    """
    key = (id(storage), slot)
    if key not in log:
        log[key] = (storage, storage[slot])


class _Frame:
    __slots__ = ("function", "args", "registers", "objects", "global_overlay")

    def __init__(self, function, args):
        self.function = function
        self.args = list(args)
        self.registers = {}
        self.objects = {}
        # Per-frame privatized globals (name -> storage); used by the
        # simulated parallel runtime for threadprivate/reduction copies.
        self.global_overlay = {}


class Interpreter:
    """Executes IR functions; reusable across runs of the same module."""

    def __init__(self, module, max_steps=50_000_000, global_storage=None):
        self.module = module
        self.max_steps = max_steps
        self.steps = 0
        self.output = []
        self.write_log = None  # see enable_write_log()
        self._global_storage = {}
        self._loops_cache = {}
        self._profiler = None
        self._profiled_function = None
        self._attributing_call = None
        if global_storage is not None:
            # Adopt live storage (a parallel worker joining a run in
            # progress) instead of re-initializing from the module.
            self._global_storage = global_storage
        else:
            for name, gvar in module.globals.items():
                self._global_storage[name] = self._initial_storage(gvar)

    # -- public API ---------------------------------------------------------

    def run(self, function_name="main", args=(), profiler=None):
        """Execute ``function_name``; returns an :class:`ExecutionResult`."""
        self.steps = 0
        self.output = []
        self._profiler = profiler
        self._profiled_function = (
            self.module.function(function_name) if profiler else None
        )
        function = self.module.function(function_name)
        return_value = self._run_function(function, list(args))
        profile = profiler.finish() if profiler else None
        return ExecutionResult(
            list(self.output), return_value, self.steps, profile
        )

    def global_value(self, name, offset=0):
        """Read a global's current value (for tests and examples)."""
        return self._global_storage[name][offset]

    def global_values(self, name):
        return list(self._global_storage[name])

    def enable_write_log(self, log=None):
        """Record an ``(object, slot)`` dirty mark for every store.

        Returns the log: ``(id(storage), slot) -> (storage, value before
        the first write)``.  Keeping the storage object in the entry
        pins it alive, so an id can never be recycled while the log is
        in use.  The parallel ``processes`` backend diffs shared state
        from this log (cost proportional to the writes a chunk made)
        instead of snapshotting and re-scanning every shared slot, and
        the parent interpreter keeps one enabled *between* regions so
        the payload codec can ship dirty-slot deltas against the pool
        workers' resident preludes.

        ``log`` lets several interpreters share one dict (the threads
        backend's worker shims feed the parent's inter-region log, so a
        threads-fallback region cannot mutate shared state behind the
        resident-prelude protocol's back).

        Installed as an instance-level handler-table override so the
        plain sequential interpreter's store path stays branch-free.
        """
        self.write_log = {} if log is None else log
        handlers = dict(type(self)._HANDLERS)
        handlers[insts.Store] = Interpreter._exec_store_logged
        self._HANDLERS = handlers
        return self.write_log

    # -- storage ----------------------------------------------------------------

    def _initial_storage(self, gvar):
        slots = gvar.value_type.slots()
        init = gvar.initializer
        if init is None:
            return self._zero_storage(gvar.value_type)
        if isinstance(init, list):
            if len(init) != slots:
                raise EmulationError(
                    f"initializer for @{gvar.name} has {len(init)} values, "
                    f"object has {slots} slots"
                )
            return list(init)
        storage = self._zero_storage(gvar.value_type)
        storage[0] = init
        return storage

    def _zero_storage(self, value_type):
        zero = 0
        scalar = value_type
        while hasattr(scalar, "element"):
            scalar = scalar.element
        if scalar == FLOAT:
            zero = 0.0
        return [zero] * value_type.slots()

    # -- execution ---------------------------------------------------------------

    def _run_function(self, function, args):
        frame = _Frame(function, args)
        profiling = function is self._profiled_function
        loops_by_header = None
        loop_stack = []
        if profiling:
            loops_by_header = self._loops_by_header(function)

        block = function.entry
        position = 0
        while True:
            if position >= len(block.instructions):
                raise EmulationError(
                    f"fell off the end of block {block.name} in "
                    f"@{function.name}"
                )
            inst = block.instructions[position]
            self.steps += 1
            if self.steps > self.max_steps:
                raise EmulationError(
                    f"exceeded max_steps={self.max_steps}; infinite loop?"
                )
            self._account(inst, profiling)

            if isinstance(inst, insts.Terminator):
                if isinstance(inst, insts.Return):
                    if profiling:
                        while loop_stack:
                            loop_stack.pop()
                            self._profiler.exit_loop()
                    if inst.operands:
                        return self._value(inst.value, frame)
                    return None
                next_block = self._branch_target(inst, frame)
                takeover = self._maybe_run_parallel_loop(
                    next_block, block, frame
                )
                if takeover is not None:
                    next_block = takeover
                if profiling:
                    self._track_loops(
                        next_block, loops_by_header, loop_stack
                    )
                block = next_block
                position = 0
                continue

            self._execute(inst, frame)
            position += 1

    def _branch_target(self, inst, frame):
        if isinstance(inst, insts.Jump):
            return inst.target
        if isinstance(inst, insts.Branch):
            condition = self._value(inst.condition, frame)
            return inst.if_true if condition else inst.if_false
        raise EmulationError(f"unknown terminator {inst.opcode}")

    def _maybe_run_parallel_loop(self, next_block, from_block, frame):
        """Hook for the simulated parallel runtime.

        Called on every block transition; a subclass may execute an entire
        planned loop in (simulated) parallel and return the loop's exit
        block to resume from.  The base interpreter never takes over.
        """
        return None

    def _track_loops(self, block, loops_by_header, loop_stack):
        # Leaving loops whose block set no longer contains the target.
        while loop_stack and block not in loop_stack[-1].blocks:
            loop_stack.pop()
            self._profiler.exit_loop()
        loop = loops_by_header.get(block)
        if loop is None:
            return
        if loop_stack and loop_stack[-1] is loop:
            self._profiler.next_iteration()
        else:
            loop_stack.append(loop)
            self._profiler.enter_loop(loop.header.name)

    def _loops_by_header(self, function):
        if function.name not in self._loops_cache:
            loops = find_natural_loops(function)
            self._loops_cache[function.name] = {
                loop.header: loop for loop in loops
            }
        return self._loops_cache[function.name]

    def _account(self, inst, profiling):
        if self._profiler is None:
            return
        if profiling:
            self._profiler.count(inst.uid)
        elif self._attributing_call is not None:
            self._profiler.count(self._attributing_call)

    # -- instruction semantics -----------------------------------------------------

    def _value(self, value, frame):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Argument):
            return frame.args[value.index]
        if isinstance(value, GlobalVariable):
            overlay = frame.global_overlay.get(value.name)
            if overlay is not None:
                return (overlay, 0)
            return (self._global_storage[value.name], 0)
        if isinstance(value, insts.Instruction):
            try:
                return frame.registers[value]
            except KeyError:
                raise EmulationError(
                    f"use of unexecuted instruction %{value.uid}"
                ) from None
        raise EmulationError(f"cannot evaluate {value!r}")

    def _execute(self, inst, frame):
        handler = self._HANDLERS[type(inst)]
        handler(self, inst, frame)

    def _exec_alloca(self, inst, frame):
        if inst not in frame.objects:
            frame.objects[inst] = self._zero_storage(inst.allocated_type)
        frame.registers[inst] = (frame.objects[inst], 0)

    def _exec_load(self, inst, frame):
        storage, offset = self._value(inst.pointer, frame)
        frame.registers[inst] = storage[offset]

    def _exec_store(self, inst, frame):
        value = self._value(inst.value, frame)
        storage, offset = self._value(inst.pointer, frame)
        storage[offset] = value

    def _exec_store_logged(self, inst, frame):
        value = self._value(inst.value, frame)
        storage, offset = self._value(inst.pointer, frame)
        key = (id(storage), offset)
        log = self.write_log
        if key not in log:
            log[key] = (storage, storage[offset])
        storage[offset] = value

    def _exec_gep(self, inst, frame):
        storage, offset = self._value(inst.pointer, frame)
        index = self._value(inst.index, frame)
        array_type = inst.pointer.type.pointee
        if not 0 <= index < array_type.count:
            raise EmulationError(
                f"index {index} out of bounds for {array_type!r} "
                f"(gep #{inst.uid})"
            )
        stride = array_type.element.slots()
        frame.registers[inst] = (storage, offset + index * stride)

    def _exec_binop(self, inst, frame):
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        op = inst.op
        if op == "add":
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        elif op == "div":
            if inst.type == INT:
                result = _trunc_div(a, b)
            else:
                if b == 0:
                    raise EmulationError("float division by zero")
                result = a / b
        elif op == "rem":
            result = _trunc_rem(a, b)
        elif op == "min":
            result = min(a, b)
        elif op == "max":
            result = max(a, b)
        elif op == "pow":
            result = a**b
        elif op == "and":
            result = a & b
        elif op == "or":
            result = a | b
        elif op == "xor":
            result = a ^ b
        elif op == "shl":
            result = a << b
        elif op == "shr":
            result = a >> b
        else:
            raise EmulationError(f"unknown binop {op}")
        frame.registers[inst] = result

    def _exec_unop(self, inst, frame):
        value = self._value(inst.operand, frame)
        op = inst.op
        try:
            if op == "neg":
                result = -value
            elif op == "not":
                result = (not value) if isinstance(value, bool) else ~value
            elif op == "abs":
                result = abs(value)
            elif op == "sqrt":
                result = math.sqrt(value)
            elif op == "sin":
                result = math.sin(value)
            elif op == "cos":
                result = math.cos(value)
            elif op == "exp":
                result = math.exp(value)
            elif op == "log":
                result = math.log(value)
            elif op == "floor":
                result = float(math.floor(value))
            else:
                raise EmulationError(f"unknown unop {op}")
        except ValueError as error:
            raise EmulationError(f"math error in {op}: {error}") from None
        frame.registers[inst] = result

    def _exec_cmp(self, inst, frame):
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        predicate = inst.predicate
        if predicate == "eq":
            result = a == b
        elif predicate == "ne":
            result = a != b
        elif predicate == "lt":
            result = a < b
        elif predicate == "le":
            result = a <= b
        elif predicate == "gt":
            result = a > b
        else:
            result = a >= b
        frame.registers[inst] = result

    def _exec_select(self, inst, frame):
        condition = self._value(inst.condition, frame)
        chosen = inst.if_true if condition else inst.if_false
        frame.registers[inst] = self._value(chosen, frame)

    def _exec_cast(self, inst, frame):
        value = self._value(inst.operand, frame)
        if inst.kind == "int_to_float":
            result = float(value)
        elif inst.kind == "float_to_int":
            result = int(value)
        else:  # bool_to_int
            result = 1 if value else 0
        frame.registers[inst] = result

    def _exec_call(self, inst, frame):
        args = [self._value(op, frame) for op in inst.operands]
        outer_attribution = self._attributing_call
        if (
            self._profiler is not None
            and frame.function is self._profiled_function
        ):
            self._attributing_call = inst.uid
        result = self._run_function(inst.callee, args)
        self._attributing_call = outer_attribution
        if inst.callee.return_type.slots() != 0:
            frame.registers[inst] = result

    def _exec_print(self, inst, frame):
        values = tuple(self._value(op, frame) for op in inst.operands)
        self.output.append((inst.label, values))

    _HANDLERS = {
        insts.Alloca: _exec_alloca,
        insts.Load: _exec_load,
        insts.Store: _exec_store,
        insts.GetElementPtr: _exec_gep,
        insts.BinaryOp: _exec_binop,
        insts.UnaryOp: _exec_unop,
        insts.Compare: _exec_cmp,
        insts.Select: _exec_select,
        insts.Cast: _exec_cast,
        insts.Call: _exec_call,
        insts.Print: _exec_print,
    }


def run_module(module, function_name="main", args=(), profile=False):
    """Interpret a module's function; optionally build a loop-nest profile."""
    from repro.emulator.profile import Profiler

    interpreter = Interpreter(module)
    profiler = Profiler(function_name) if profile else None
    return interpreter.run(function_name, args, profiler)


def run_source(source, function_name="main", args=(), profile=False):
    """Compile MiniOMP source and interpret it in one call."""
    from repro.frontend import compile_source

    module = compile_source(source)
    return run_module(module, function_name, args, profile)
