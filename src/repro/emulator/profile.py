"""Dynamic loop-nest profiles.

The ideal-machine critical-path methodology (paper §6.3) needs to know, for
every dynamic loop instance, how much work each iteration did and which
static instructions it executed.  The profiler organizes the execution of
one *profiled function* into a tree:

* the root is a pseudo-iteration covering the whole function body;
* each loop instance entered contributes a :class:`LoopInstanceProfile`
  child holding one :class:`IterationProfile` per dynamic iteration;
* instruction executions are counted on the innermost active iteration,
  keyed by static instruction uid.  Work done inside *callees* is
  attributed to the call instruction in the profiled function, so plans
  over the profiled function see call cost without needing callee
  structure.
"""


class IterationProfile:
    """One dynamic iteration (or the whole-function pseudo-iteration)."""

    __slots__ = ("counts", "children")

    def __init__(self):
        self.counts = {}
        self.children = []

    def add(self, uid, amount=1):
        self.counts[uid] = self.counts.get(uid, 0) + amount

    def direct_total(self):
        """Instructions executed at this level, excluding nested loops."""
        return sum(self.counts.values())

    def total(self):
        """Instructions executed at this level including nested loops."""
        return self.direct_total() + sum(
            child.total() for child in self.children
        )

    def count_of(self, uids):
        """Direct executions of any of the given static uids."""
        # Iterate the (small) per-iteration counter, not the uid set.
        return sum(
            count for uid, count in self.counts.items() if uid in uids
        )


class LoopInstanceProfile:
    """One dynamic activation of a static loop (all its iterations)."""

    __slots__ = ("header_name", "iterations")

    def __init__(self, header_name):
        self.header_name = header_name
        self.iterations = []

    def begin_iteration(self):
        iteration = IterationProfile()
        self.iterations.append(iteration)
        return iteration

    @property
    def trip_count(self):
        return len(self.iterations)

    def total(self):
        return sum(iteration.total() for iteration in self.iterations)

    def __repr__(self):
        return (
            f"<loop-instance {self.header_name}: {self.trip_count} "
            f"iterations, {self.total()} insts>"
        )


class FunctionProfile:
    """Profile of one profiled function execution (root of the tree)."""

    def __init__(self, function_name):
        self.function_name = function_name
        self.root = IterationProfile()

    def total(self):
        return self.root.total()

    def loop_instances(self, header_name=None):
        """All loop instances in the tree (optionally for one static loop)."""
        found = []
        stack = [self.root]
        while stack:
            iteration = stack.pop()
            for child in iteration.children:
                if header_name is None or child.header_name == header_name:
                    found.append(child)
                stack.extend(child.iterations)
        return found

    def __repr__(self):
        return f"<profile @{self.function_name}: {self.total()} insts>"


class Profiler:
    """Interpreter hook building a :class:`FunctionProfile`.

    The interpreter drives it with :meth:`enter_loop`, :meth:`next_iteration`,
    :meth:`exit_loop`, and :meth:`count`.
    """

    def __init__(self, function_name):
        self.profile = FunctionProfile(function_name)
        self._iteration_stack = [self.profile.root]
        self._loop_stack = []

    @property
    def current_iteration(self):
        return self._iteration_stack[-1]

    def enter_loop(self, header_name):
        instance = LoopInstanceProfile(header_name)
        self.current_iteration.children.append(instance)
        self._loop_stack.append(instance)
        self._iteration_stack.append(instance.begin_iteration())

    def next_iteration(self):
        self._iteration_stack.pop()
        self._iteration_stack.append(self._loop_stack[-1].begin_iteration())

    def exit_loop(self):
        self._iteration_stack.pop()
        self._loop_stack.pop()

    def count(self, uid, amount=1):
        self.current_iteration.add(uid, amount)

    def finish(self):
        return self.profile
