"""repro.frontend — MiniOMP/Cilk source to annotated IR.

The one-call entry point::

    from repro.frontend import compile_source
    module = compile_source(source_text)

mirrors the paper's custom clang-based pipeline stage: parse the pragmas,
lower to sequential IR, and carry the parallel semantics as metadata
(``Function.annotations``) for the PS-PDG builder.
"""

from repro.frontend.ast import Program
from repro.frontend.directives import (
    Clauses,
    Directive,
    RegionAnnotation,
    REDUCTION_OPS,
)
from repro.frontend.lexer import Token, tokenize
from repro.frontend.lower import Lowerer, ir_type_of, lower_program
from repro.frontend.parser import Parser, parse_source
from repro.frontend.sema import (
    BUILTIN_FUNCTIONS,
    ProgramInfo,
    SemanticChecker,
    check_program,
)


def compile_source(source, module_name="miniomp"):
    """Compile MiniOMP source text to a verified, annotated IR module."""
    program = parse_source(source)
    return lower_program(program, module_name)


__all__ = [
    "Program",
    "Clauses",
    "Directive",
    "RegionAnnotation",
    "REDUCTION_OPS",
    "Token",
    "tokenize",
    "Lowerer",
    "ir_type_of",
    "lower_program",
    "Parser",
    "parse_source",
    "BUILTIN_FUNCTIONS",
    "ProgramInfo",
    "SemanticChecker",
    "check_program",
    "compile_source",
]
