"""Abstract syntax tree for the MiniOMP language.

Nodes are plain dataclasses.  Every statement node carries an optional
``pragmas`` list (parsed directives waiting to be bound to the lowered
region) and a source ``line`` for diagnostics.
"""

import dataclasses


@dataclasses.dataclass
class TypeSpec:
    """Source-level type: scalar base plus optional array dimensions."""

    base: str  # "int" | "float" | "bool" | "void"
    dims: list = dataclasses.field(default_factory=list)  # outermost first

    def is_array(self):
        return bool(self.dims)

    def __repr__(self):
        suffix = "".join(f"[{d}]" for d in self.dims)
        return f"{self.base}{suffix}"


# --- expressions -----------------------------------------------------------


@dataclasses.dataclass
class Expr:
    line: int = dataclasses.field(default=None, kw_only=True)


@dataclasses.dataclass
class IntLit(Expr):
    value: int


@dataclasses.dataclass
class FloatLit(Expr):
    value: float


@dataclasses.dataclass
class BoolLit(Expr):
    value: bool


@dataclasses.dataclass
class StringLit(Expr):
    value: str


@dataclasses.dataclass
class VarRef(Expr):
    name: str


@dataclasses.dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclasses.dataclass
class BinExpr(Expr):
    op: str  # source operator: + - * / % == != < <= > >= && || & | ^
    lhs: Expr
    rhs: Expr


@dataclasses.dataclass
class UnExpr(Expr):
    op: str  # "-" | "!"
    operand: Expr


@dataclasses.dataclass
class CallExpr(Expr):
    name: str
    args: list


# --- statements -----------------------------------------------------------


@dataclasses.dataclass
class Stmt:
    line: int = dataclasses.field(default=None, kw_only=True)
    pragmas: list = dataclasses.field(default_factory=list, kw_only=True)


@dataclasses.dataclass
class Block(Stmt):
    statements: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class VarDecl(Stmt):
    name: str = ""
    type: TypeSpec = None
    init: Expr = None
    reducer_op: str = None  # Cilk hyperobject: reduction operator name


@dataclasses.dataclass
class Assign(Stmt):
    target: Expr = None  # VarRef or Index chain
    value: Expr = None


@dataclasses.dataclass
class If(Stmt):
    condition: Expr = None
    then_body: Block = None
    else_body: Block = None


@dataclasses.dataclass
class While(Stmt):
    condition: Expr = None
    body: Block = None


@dataclasses.dataclass
class For(Stmt):
    var: str = ""
    lower: Expr = None
    upper: Expr = None
    step: Expr = None  # None -> 1
    body: Block = None


@dataclasses.dataclass
class PrintStmt(Stmt):
    args: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ReturnStmt(Stmt):
    value: Expr = None


@dataclasses.dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # call expression used as a statement


@dataclasses.dataclass
class StandaloneDirective(Stmt):
    """barrier / taskwait / cilk_sync as a statement of its own."""

    directive: object = None


@dataclasses.dataclass
class SpawnStmt(Stmt):
    """``spawn f(args);`` or ``spawn x = f(args);`` (Cilk)."""

    call: CallExpr = None
    target: Expr = None  # optional assignment target


# --- top level ------------------------------------------------------------


@dataclasses.dataclass
class Param:
    name: str
    type: TypeSpec


@dataclasses.dataclass
class FuncDecl:
    name: str
    params: list
    return_type: TypeSpec
    body: Block
    line: int = None


@dataclasses.dataclass
class GlobalDecl:
    name: str
    type: TypeSpec
    init: Expr = None
    threadprivate: bool = False
    line: int = None


@dataclasses.dataclass
class Program:
    globals: list
    functions: list
