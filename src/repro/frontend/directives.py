"""Parallel directive model: the OpenMP/Cilk subset the paper targets.

A :class:`Directive` is the parsed form of one pragma (kind + clauses).
During lowering each directive becomes a :class:`RegionAnnotation` bound to
the IR blocks it governs — this is the "IR with custom metadata" stage of
the paper's pipeline (Fig. 12), from which the PS-PDG builder works.

Supported directive kinds (Section 5's three semantic groups):

* declaration of independence — ``parallel``, ``for``, ``parallel for``,
  ``task``, ``taskloop``, ``sections``/``section``, ``simd``, plus the
  constraining ``barrier`` and ``taskwait``;
* data properties — ``threadprivate`` and the ``private`` /
  ``firstprivate`` / ``lastprivate`` / ``reduction`` / ``anyvalue`` clauses;
* ordering — ``critical``, ``atomic``, ``ordered``, ``single``, ``master``.

``anyvalue(x)`` is our explicit spelling of the Fig. 11-D "left program"
semantics: any iteration's write to ``x`` may provide the value observed
after the loop (Any-Producer data selector).
"""

import dataclasses

from repro.util.errors import FrontendError

DIRECTIVE_KINDS = frozenset(
    {
        "parallel",
        "for",
        "parallel_for",
        "critical",
        "atomic",
        "single",
        "master",
        "barrier",
        "task",
        "taskwait",
        "taskloop",
        "sections",
        "section",
        "simd",
        "ordered",
        "threadprivate",
        # Cilk constructs are normalized onto the same model:
        "cilk_spawn",
        "cilk_sync",
        "cilk_scope",
        "cilk_for",
        # Cilk hyperobject declaration (var x: T reducer(+)):
        "cilk_reducer",
    }
)

# Directives that declare independence of the iterations of the loop they
# annotate (the "worksharing-like" group).
LOOP_INDEPENDENCE_KINDS = frozenset(
    {"for", "parallel_for", "taskloop", "simd", "cilk_for"}
)

# Directives that stand alone as synchronization statements.
STANDALONE_KINDS = frozenset({"barrier", "taskwait", "cilk_sync"})

REDUCTION_OPS = {
    "+": "add",
    "*": "mul",
    "min": "min",
    "max": "max",
    "&": "and",
    "|": "or",
    "^": "xor",
}


@dataclasses.dataclass
class Clauses:
    """Clause payload of a directive.  Variable names, resolved later."""

    private: list = dataclasses.field(default_factory=list)
    firstprivate: list = dataclasses.field(default_factory=list)
    lastprivate: list = dataclasses.field(default_factory=list)
    shared: list = dataclasses.field(default_factory=list)
    reductions: list = dataclasses.field(default_factory=list)  # (op, name)
    anyvalue: list = dataclasses.field(default_factory=list)
    schedule: tuple = None  # (kind, chunk or None)
    nowait: bool = False
    critical_name: str = None
    depends: list = dataclasses.field(default_factory=list)  # (mode, name)
    ordered_clause: bool = False

    def all_variable_names(self):
        names = []
        names.extend(self.private)
        names.extend(self.firstprivate)
        names.extend(self.lastprivate)
        names.extend(self.shared)
        names.extend(self.anyvalue)
        names.extend(name for _op, name in self.reductions)
        names.extend(name for _mode, name in self.depends)
        return names


@dataclasses.dataclass
class Directive:
    """One parsed pragma."""

    kind: str
    clauses: Clauses = dataclasses.field(default_factory=Clauses)
    line: int = None

    def __post_init__(self):
        if self.kind not in DIRECTIVE_KINDS:
            raise FrontendError(f"unknown directive kind {self.kind!r}", self.line)

    def declares_loop_independence(self):
        return self.kind in LOOP_INDEPENDENCE_KINDS

    def is_standalone(self):
        return self.kind in STANDALONE_KINDS

    def describe(self):
        parts = [f"omp {self.kind}"]
        c = self.clauses
        if c.critical_name:
            parts.append(f"({c.critical_name})")
        for op, name in c.reductions:
            parts.append(f"reduction({op}: {name})")
        for group, label in (
            (c.private, "private"),
            (c.firstprivate, "firstprivate"),
            (c.lastprivate, "lastprivate"),
            (c.shared, "shared"),
            (c.anyvalue, "anyvalue"),
        ):
            if group:
                parts.append(f"{label}({', '.join(group)})")
        if c.schedule:
            kind, chunk = c.schedule
            parts.append(
                f"schedule({kind}{', ' + str(chunk) if chunk else ''})"
            )
        if c.nowait:
            parts.append("nowait")
        if c.ordered_clause:
            parts.append("ordered")
        for mode, name in c.depends:
            parts.append(f"depend({mode}: {name})")
        return " ".join(parts)


@dataclasses.dataclass
class RegionAnnotation:
    """A directive bound to the IR region it governs.

    Attributes:
        uid: unique id (also used as the PS-PDG context label).
        directive: the source directive.
        block_names: names of the blocks forming the region (SESE by
            construction; for loop directives, the loop body blocks).
        loop_header: header block name when the directive annotates a loop.
        var_bindings: clause variable name -> IR value (Alloca, Global or
            Argument) resolved at lowering time.
        parent_uid: uid of the innermost enclosing annotated region, if any.
    """

    uid: str
    directive: Directive
    block_names: list
    loop_header: str = None
    var_bindings: dict = dataclasses.field(default_factory=dict)
    parent_uid: str = None

    def describe(self):
        loop = f" loop={self.loop_header}" if self.loop_header else ""
        return (
            f"region {self.uid}: {self.directive.describe()}{loop} "
            f"blocks={self.block_names}"
        )

    def binding(self, name):
        try:
            return self.var_bindings[name]
        except KeyError:
            raise FrontendError(
                f"clause variable {name!r} not bound in region {self.uid}"
            ) from None
