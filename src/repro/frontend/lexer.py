"""Tokenizer for the MiniOMP language."""

import re

from repro.util.errors import FrontendError

KEYWORDS = frozenset(
    {
        "func",
        "global",
        "var",
        "if",
        "else",
        "while",
        "for",
        "in",
        "step",
        "return",
        "print",
        "true",
        "false",
        "pragma",
        "omp",
        "int",
        "float",
        "bool",
        "void",
        "spawn",
        "sync",
        "cilk_for",
        "cilk_scope",
        "reducer",
    }
)

# Type keywords get a _KW suffix so they cannot collide with the INT/FLOAT
# literal token kinds.
_KEYWORD_KINDS = {
    "int": "INT_KW",
    "float": "FLOAT_KW",
    "bool": "BOOL_KW",
    "void": "VOID_KW",
}

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*"),
    # Negative lookahead keeps "0..10" from lexing as the float "0.".
    ("FLOAT", r"\d+\.(?!\.)\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+"),
    ("INT", r"\d+"),
    ("STRING", r'"[^"\n]*"'),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("DOTDOT", r"\.\."),
    ("ARROW", r"->"),
    ("LE", r"<="),
    ("GE", r">="),
    ("EQ", r"=="),
    ("NE", r"!="),
    ("AND", r"&&"),
    ("OR", r"\|\|"),
    ("AMP", r"&"),
    ("PIPE", r"\|"),
    ("CARET", r"\^"),
    ("LT", r"<"),
    ("GT", r">"),
    ("ASSIGN", r"="),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("PERCENT", r"%"),
    ("BANG", r"!"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("SEMI", r";"),
    ("COLON", r":"),
    ("COMMA", r","),
    ("NEWLINE", r"\n"),
    ("WS", r"[ \t\r]+"),
]

_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
)


class Token:
    """One lexical token with source position."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source):
    """Convert source text into a token list (EOF token appended).

    Newlines matter only for pragma lines, so the lexer keeps NEWLINE
    tokens; the parser skips them except while reading a pragma.
    """
    tokens = []
    line = 1
    line_start = 0
    position = 0
    length = len(source)
    while position < length:
        match = _MASTER_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise FrontendError(
                f"unexpected character {source[position]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind == "NEWLINE":
            tokens.append(Token("NEWLINE", text, line, column))
            line += 1
            line_start = match.end()
        elif kind in ("WS", "COMMENT"):
            pass
        elif kind == "IDENT" and text in KEYWORDS:
            keyword_kind = _KEYWORD_KINDS.get(text, text.upper())
            tokens.append(Token(keyword_kind, text, line, column))
        else:
            tokens.append(Token(kind, text, line, column))
        position = match.end()
    tokens.append(Token("EOF", "", line, position - line_start + 1))
    return tokens
