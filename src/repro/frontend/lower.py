"""Lowering: MiniOMP AST -> repro IR with parallel-region annotations.

This is the "custom front-end" stage of the paper's pipeline (Fig. 12): it
produces sequential IR whose execution order realizes the program, plus
metadata (:class:`~repro.frontend.directives.RegionAnnotation`) recording
where each pragma applied and which IR values its clause variables resolve
to.  The PS-PDG builder consumes the metadata; sequential tools (PDG,
interpreter) can ignore it entirely.

Lowering conventions
--------------------
* Named variables live in memory: one ``alloca`` per declaration.  An
  alloca names a *static* per-invocation object (re-executing it yields the
  same storage), so declarations inside loops do not churn objects.
* ``for`` loops lower to the canonical preheader/header/body/latch/exit
  shape and record :class:`~repro.ir.loopinfo.CanonicalLoop` metadata.
* Every annotated statement is wrapped between a fresh ``<kind>.entry``
  block and ``<kind>.exit`` block, making the region single-entry
  single-exit; the annotation's block list is every block created in
  between (hierarchical nesting falls out of block-set containment).
* Numeric promotion: ``int`` operands promote to ``float`` when mixed;
  ``&&``/``||`` lower to ``select`` (non-short-circuit — MiniOMP
  expressions are side-effect-free except calls, and mirroring C's
  short-circuit CFG would only add blocks the analyses don't care about).
"""

from repro.frontend import ast
from repro.frontend.directives import (
    Clauses,
    Directive,
    RegionAnnotation,
)
from repro.frontend.sema import BUILTIN_FUNCTIONS, check_program
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.loopinfo import CanonicalLoop
from repro.ir.types import BOOL, FLOAT, INT, VOID, ArrayType, PointerType
from repro.ir.values import Constant
from repro.ir.verifier import verify_module
from repro.util.errors import FrontendError
from repro.util.ids import IdAllocator

_SCALAR_TYPES = {"int": INT, "float": FLOAT, "bool": BOOL, "void": VOID}

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
}

_CMP_MAP = {
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


def ir_type_of(spec):
    """Convert a source :class:`TypeSpec` to an IR type."""
    base = _SCALAR_TYPES[spec.base]
    result = base
    for dim in reversed(spec.dims):
        result = ArrayType(result, dim)
    return result


class _Scope:
    """Name -> IR storage (Alloca / GlobalVariable / Argument)."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = {}

    def declare(self, name, storage):
        self.bindings[name] = storage

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class Lowerer:
    """Lowers one checked program to an IR module."""

    def __init__(self, program, module_name="miniomp"):
        self.program = program
        self.info = check_program(program)
        self.module = Module(module_name)
        self.context_ids = IdAllocator("omp")
        self.builder = None
        self.function = None
        self._region_stack = []

    # -- top level -------------------------------------------------------------

    def run(self):
        for decl in self.program.globals:
            init = None
            if decl.init is not None:
                init = self._constant_fold(decl.init)
            self.module.add_global(decl.name, ir_type_of(decl.type), init)
        self.module.metadata["threadprivate"] = set(self.info.threadprivate)

        # Declare all functions first so calls resolve in any order.
        declared = {}
        for func in self.program.functions:
            arg_types = []
            for param in func.params:
                ir_type = ir_type_of(param.type)
                if param.type.is_array():
                    ir_type = PointerType(ir_type)
                arg_types.append(ir_type)
            declared[func.name] = self.module.create_function(
                func.name,
                arg_types,
                [p.name for p in func.params],
                ir_type_of(func.return_type),
            )

        for func in self.program.functions:
            self._lower_function(func, declared[func.name])

        verify_module(self.module)
        return self.module

    def _constant_fold(self, expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.UnExpr) and expr.op == "-":
            return -self._constant_fold(expr.operand)
        raise FrontendError(
            "global initializers must be constants", expr.line
        )

    # -- functions --------------------------------------------------------------

    def _lower_function(self, func_ast, function):
        self.function = function
        entry = function.create_block("entry")
        self.builder = IRBuilder(entry)
        self._region_stack = []

        scope = _Scope()
        for name, gvar in self.module.globals.items():
            scope.declare(name, gvar)
        scope = _Scope(scope)
        for param, argument in zip(func_ast.params, function.args):
            if param.type.is_array():
                scope.declare(param.name, argument)
            else:
                slot = self.builder.alloca(
                    ir_type_of(param.type), param.name
                )
                self.builder.store(argument, slot)
                scope.declare(param.name, slot)

        self._lower_block(func_ast.body, _Scope(scope))

        # Seal: any unterminated block gets an implicit return.
        for block in function.blocks:
            if not block.is_terminated():
                saved = self.builder.block
                self.builder.position_at_end(block)
                self._emit_default_return()
                self.builder.position_at_end(saved)

    def _emit_default_return(self):
        if self.function.return_type == VOID:
            self.builder.ret()
        elif self.function.return_type == FLOAT:
            self.builder.ret(self.builder.float(0.0))
        elif self.function.return_type == BOOL:
            self.builder.ret(self.builder.bool(False))
        else:
            self.builder.ret(self.builder.int(0))

    # -- statements -----------------------------------------------------------

    def _lower_block(self, block, scope):
        for statement in block.statements:
            if self.builder.block.is_terminated():
                # Unreachable code after return: lower into a fresh dead
                # block so the verifier still sees well-formed IR.
                dead = self.function.create_block("dead")
                self.builder.position_at_end(dead)
            self._lower_statement(statement, scope)

    def _lower_statement(self, statement, scope):
        pragmas = list(statement.pragmas)
        self._lower_with_pragmas(statement, pragmas, scope)

    def _lower_with_pragmas(self, statement, pragmas, scope):
        if not pragmas:
            return self._lower_base_statement(statement, scope)

        directive = pragmas[0]
        uid = self.context_ids.fresh()
        entry = self.function.create_block(f"{directive.kind}.entry")
        self.builder.jump(entry)
        self.builder.position_at_end(entry)
        start_index = len(self.function.blocks) - 1

        parent_uid = self._region_stack[-1] if self._region_stack else None
        self._region_stack.append(uid)
        result = self._lower_with_pragmas(statement, pragmas[1:], scope)
        self._region_stack.pop()

        exit_block = self.function.create_block(f"{directive.kind}.exit")
        self.builder.jump(exit_block)
        self.builder.position_at_end(exit_block)
        exit_index = len(self.function.blocks) - 1
        block_names = [
            b.name for b in self.function.blocks[start_index:exit_index]
        ]

        annotation = RegionAnnotation(
            uid=uid,
            directive=directive,
            block_names=block_names,
            loop_header=(result or {}).get("loop_header"),
            var_bindings=self._resolve_clause_bindings(
                directive, scope, (result or {}).get("loop_scope")
            ),
            parent_uid=parent_uid,
        )
        self.function.annotations.append(annotation)
        return result

    def _resolve_clause_bindings(self, directive, scope, loop_scope):
        bindings = {}
        for name in directive.clauses.all_variable_names():
            storage = None
            if loop_scope is not None:
                storage = loop_scope.lookup(name)
            if storage is None:
                storage = scope.lookup(name)
            if storage is None:
                raise FrontendError(
                    f"cannot resolve clause variable {name!r}",
                    directive.line,
                )
            bindings[name] = storage
        return bindings

    def _lower_base_statement(self, statement, scope):
        if isinstance(statement, ast.VarDecl):
            return self._lower_var_decl(statement, scope)
        if isinstance(statement, ast.Assign):
            return self._lower_assign(statement, scope)
        if isinstance(statement, ast.If):
            return self._lower_if(statement, scope)
        if isinstance(statement, ast.While):
            return self._lower_while(statement, scope)
        if isinstance(statement, ast.For):
            return self._lower_for(statement, scope)
        if isinstance(statement, ast.PrintStmt):
            return self._lower_print(statement, scope)
        if isinstance(statement, ast.ReturnStmt):
            return self._lower_return(statement, scope)
        if isinstance(statement, ast.ExprStmt):
            self._lower_expression(statement.expr, scope)
            return None
        if isinstance(statement, ast.Block):
            self._lower_block(statement, _Scope(scope))
            return None
        if isinstance(statement, ast.StandaloneDirective):
            return self._lower_standalone(statement, scope)
        if isinstance(statement, ast.SpawnStmt):
            return self._lower_spawn(statement, scope)
        raise FrontendError(
            f"unhandled statement {type(statement).__name__}", statement.line
        )

    def _lower_var_decl(self, statement, scope):
        slot = self.builder.alloca(ir_type_of(statement.type), statement.name)
        scope.declare(statement.name, slot)
        if statement.init is not None:
            value = self._lower_expression(statement.init, scope)
            value = self._coerce(
                value, _SCALAR_TYPES[statement.type.base], statement.line
            )
            self.builder.store(value, slot)
        if statement.reducer_op is not None:
            # Cilk hyperobject: record a whole-function reducible variable.
            clauses = Clauses(
                reductions=[(statement.reducer_op, statement.name)]
            )
            annotation = RegionAnnotation(
                uid=self.context_ids.fresh(),
                directive=Directive(
                    "cilk_reducer", clauses, line=statement.line
                ),
                block_names=[],
                var_bindings={statement.name: slot},
                parent_uid=(
                    self._region_stack[-1] if self._region_stack else None
                ),
            )
            self.function.annotations.append(annotation)
        return None

    def _lower_assign(self, statement, scope):
        value = self._lower_expression(statement.value, scope)
        address = self._lower_address(statement.target, scope)
        target_type = address.type.pointee
        value = self._coerce(value, target_type, statement.line)
        self.builder.store(value, address)
        return None

    def _lower_if(self, statement, scope):
        condition = self._lower_expression(statement.condition, scope)
        condition = self._require_bool(condition, statement.line)
        then_block = self.function.create_block("if.then")
        merge_block_name = "if.end"
        if statement.else_body is not None:
            else_block = self.function.create_block("if.else")
            self.builder.branch(condition, then_block, else_block)
        else:
            else_block = None
            merge = self.function.create_block(merge_block_name)
            self.builder.branch(condition, then_block, merge)

        self.builder.position_at_end(then_block)
        self._lower_block(statement.then_body, _Scope(scope))
        then_end = self.builder.block

        if statement.else_body is not None:
            self.builder.position_at_end(else_block)
            self._lower_block(statement.else_body, _Scope(scope))
            else_end = self.builder.block
            merge = self.function.create_block(merge_block_name)
            for end in (then_end, else_end):
                if not end.is_terminated():
                    self.builder.position_at_end(end)
                    self.builder.jump(merge)
        else:
            if not then_end.is_terminated():
                self.builder.position_at_end(then_end)
                self.builder.jump(merge)
        self.builder.position_at_end(merge)
        return None

    def _lower_while(self, statement, scope):
        header = self.function.create_block("while.header")
        self.builder.jump(header)
        self.builder.position_at_end(header)
        condition = self._lower_expression(statement.condition, scope)
        condition = self._require_bool(condition, statement.line)
        body = self.function.create_block("while.body")
        exit_block = self.function.create_block("while.exit")
        self.builder.branch(condition, body, exit_block)
        self.builder.position_at_end(body)
        self._lower_block(statement.body, _Scope(scope))
        if not self.builder.block.is_terminated():
            self.builder.jump(header)
        self.builder.position_at_end(exit_block)
        return None

    def _lower_for(self, statement, scope):
        lower = self._coerce(
            self._lower_expression(statement.lower, scope), INT, statement.line
        )
        upper = self._coerce(
            self._lower_expression(statement.upper, scope), INT, statement.line
        )
        if statement.step is None:
            step = self.builder.int(1)
        else:
            step = self._coerce(
                self._lower_expression(statement.step, scope),
                INT,
                statement.line,
            )

        induction = self.builder.alloca(INT, statement.var)
        self.builder.store(lower, induction)

        header = self.function.create_block("for.header")
        self.builder.jump(header)
        self.builder.position_at_end(header)
        current = self.builder.load(induction)
        condition = self.builder.cmp("lt", current, upper)
        body = self.function.create_block("for.body")
        exit_block_name_reserved = None
        latch = None  # created after the body so block order reads naturally
        # We need the exit block object for the branch now:
        exit_block = self.function.create_block("for.exit")
        self.builder.branch(condition, body, exit_block)

        loop_scope = _Scope(scope)
        loop_scope.declare(statement.var, induction)
        self.builder.position_at_end(body)
        self._lower_block(statement.body, _Scope(loop_scope))
        body_end = self.builder.block

        latch = self.function.create_block("for.latch")
        if not body_end.is_terminated():
            self.builder.position_at_end(body_end)
            self.builder.jump(latch)
        self.builder.position_at_end(latch)
        iv_value = self.builder.load(induction)
        next_value = self.builder.add(iv_value, step)
        self.builder.store(next_value, induction)
        self.builder.jump(header)

        self.builder.position_at_end(exit_block)
        self.function.loop_info[header.name] = CanonicalLoop(
            header=header.name,
            body=body.name,
            latch=latch.name,
            exit=exit_block.name,
            induction=induction,
            lower=lower,
            upper=upper,
            step=step,
        )
        del exit_block_name_reserved
        return {"loop_header": header.name, "loop_scope": loop_scope}

    def _lower_print(self, statement, scope):
        labels = []
        values = []
        for arg in statement.args:
            if isinstance(arg, ast.StringLit):
                labels.append(arg.value)
            else:
                values.append(self._lower_expression(arg, scope))
        label = " ".join(labels) if labels else None
        self.builder.print_(values)
        self.builder.block.instructions[-1].label = label
        return None

    def _lower_return(self, statement, scope):
        if statement.value is None:
            self.builder.ret()
        else:
            value = self._lower_expression(statement.value, scope)
            value = self._coerce(
                value, self.function.return_type, statement.line
            )
            self.builder.ret(value)
        return None

    def _lower_standalone(self, statement, scope):
        block = self.function.create_block(statement.directive.kind)
        self.builder.jump(block)
        self.builder.position_at_end(block)
        continuation = self.function.create_block(
            f"{statement.directive.kind}.cont"
        )
        self.builder.jump(continuation)
        annotation = RegionAnnotation(
            uid=self.context_ids.fresh(),
            directive=statement.directive,
            block_names=[block.name],
            parent_uid=self._region_stack[-1] if self._region_stack else None,
        )
        self.function.annotations.append(annotation)
        self.builder.position_at_end(continuation)
        return None

    def _lower_spawn(self, statement, scope):
        directive = Directive("cilk_spawn", line=statement.line)
        entry = self.function.create_block("cilk_spawn.entry")
        self.builder.jump(entry)
        self.builder.position_at_end(entry)
        start_index = len(self.function.blocks) - 1

        value = self._lower_expression(statement.call, scope)
        if statement.target is not None:
            address = self._lower_address(statement.target, scope)
            value = self._coerce(
                value, address.type.pointee, statement.line
            )
            self.builder.store(value, address)

        exit_block = self.function.create_block("cilk_spawn.exit")
        self.builder.jump(exit_block)
        self.builder.position_at_end(exit_block)
        exit_index = len(self.function.blocks) - 1
        annotation = RegionAnnotation(
            uid=self.context_ids.fresh(),
            directive=directive,
            block_names=[
                b.name
                for b in self.function.blocks[start_index:exit_index]
            ],
            parent_uid=self._region_stack[-1] if self._region_stack else None,
        )
        self.function.annotations.append(annotation)
        return None

    # -- expressions ----------------------------------------------------------

    def _lower_expression(self, expr, scope):
        if isinstance(expr, ast.IntLit):
            return self.builder.int(expr.value)
        if isinstance(expr, ast.FloatLit):
            return self.builder.float(expr.value)
        if isinstance(expr, ast.BoolLit):
            return self.builder.bool(expr.value)
        if isinstance(expr, ast.StringLit):
            raise FrontendError(
                "string literals are only allowed in print", expr.line
            )
        if isinstance(expr, ast.VarRef):
            storage = scope.lookup(expr.name)
            if storage is None:
                raise FrontendError(
                    f"undeclared variable {expr.name!r}", expr.line
                )
            if isinstance(storage.type, PointerType) and isinstance(
                storage.type.pointee, ArrayType
            ):
                return storage  # whole array: yields the pointer
            return self.builder.load(storage)
        if isinstance(expr, ast.Index):
            address = self._lower_address(expr, scope)
            if isinstance(address.type.pointee, ArrayType):
                return address  # partial index of a multi-dim array
            return self.builder.load(address)
        if isinstance(expr, ast.BinExpr):
            return self._lower_binary(expr, scope)
        if isinstance(expr, ast.UnExpr):
            return self._lower_unary(expr, scope)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, scope)
        raise FrontendError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )

    def _lower_address(self, expr, scope):
        if isinstance(expr, ast.VarRef):
            storage = scope.lookup(expr.name)
            if storage is None:
                raise FrontendError(
                    f"undeclared variable {expr.name!r}", expr.line
                )
            return storage
        if isinstance(expr, ast.Index):
            base = self._lower_address(expr.base, scope)
            if not isinstance(base.type.pointee, ArrayType):
                raise FrontendError("indexing a non-array value", expr.line)
            index = self._coerce(
                self._lower_expression(expr.index, scope), INT, expr.line
            )
            return self.builder.gep(base, index)
        raise FrontendError("expression is not addressable", expr.line)

    def _lower_binary(self, expr, scope):
        if expr.op in ("&&", "||"):
            lhs = self._require_bool(
                self._lower_expression(expr.lhs, scope), expr.line
            )
            rhs = self._require_bool(
                self._lower_expression(expr.rhs, scope), expr.line
            )
            if expr.op == "&&":
                return self.builder.select(lhs, rhs, self.builder.bool(False))
            return self.builder.select(lhs, self.builder.bool(True), rhs)

        lhs = self._lower_expression(expr.lhs, scope)
        rhs = self._lower_expression(expr.rhs, scope)
        lhs, rhs = self._promote_pair(lhs, rhs, expr.line)

        if expr.op in _CMP_MAP:
            return self.builder.cmp(_CMP_MAP[expr.op], lhs, rhs)
        if expr.op in _BINOP_MAP:
            return self.builder.binop(_BINOP_MAP[expr.op], lhs, rhs)
        raise FrontendError(f"unhandled operator {expr.op!r}", expr.line)

    def _lower_unary(self, expr, scope):
        operand = self._lower_expression(expr.operand, scope)
        if expr.op == "-":
            return self.builder.neg(operand)
        if expr.op == "!":
            operand = self._require_bool(operand, expr.line)
            return self.builder.unop("not", operand)
        raise FrontendError(f"unhandled unary {expr.op!r}", expr.line)

    def _lower_call(self, expr, scope):
        name = expr.name
        if name in BUILTIN_FUNCTIONS:
            return self._lower_builtin(expr, scope)
        callee = self.module.function(name)
        args = []
        for parameter, arg_expr in zip(callee.args, expr.args):
            if isinstance(parameter.type, PointerType):
                args.append(self._lower_address(arg_expr, scope))
            else:
                value = self._lower_expression(arg_expr, scope)
                args.append(
                    self._coerce(value, parameter.type, expr.line)
                )
        return self.builder.call(callee, args)

    def _lower_builtin(self, expr, scope):
        name = expr.name
        args = [self._lower_expression(a, scope) for a in expr.args]
        if name in ("sqrt", "sin", "cos", "exp", "log", "floor"):
            value = self._coerce(args[0], FLOAT, expr.line)
            return self.builder.unop(name, value)
        if name == "abs":
            return self.builder.unop("abs", args[0])
        if name in ("min", "max"):
            lhs, rhs = self._promote_pair(args[0], args[1], expr.line)
            return self.builder.binop(name, lhs, rhs)
        if name == "int":
            value = args[0]
            if value.type == INT:
                return value
            if value.type == BOOL:
                return self.builder.cast("bool_to_int", value)
            return self.builder.cast("float_to_int", value)
        if name == "float":
            value = args[0]
            if value.type == FLOAT:
                return value
            if value.type == BOOL:
                value = self.builder.cast("bool_to_int", value)
            return self.builder.cast("int_to_float", value)
        raise FrontendError(f"unhandled builtin {name!r}", expr.line)

    # -- type plumbing -----------------------------------------------------------

    def _promote_pair(self, lhs, rhs, line):
        if lhs.type == rhs.type:
            return lhs, rhs
        if lhs.type == INT and rhs.type == FLOAT:
            return self.builder.cast("int_to_float", lhs), rhs
        if lhs.type == FLOAT and rhs.type == INT:
            return lhs, self.builder.cast("int_to_float", rhs)
        raise FrontendError(
            f"incompatible operand types {lhs.type!r} and {rhs.type!r}", line
        )

    def _coerce(self, value, target_type, line):
        if value.type == target_type:
            return value
        if value.type == INT and target_type == FLOAT:
            return self.builder.cast("int_to_float", value)
        if value.type == FLOAT and target_type == INT:
            return self.builder.cast("float_to_int", value)
        if value.type == BOOL and target_type == INT:
            return self.builder.cast("bool_to_int", value)
        raise FrontendError(
            f"cannot convert {value.type!r} to {target_type!r}", line
        )

    def _require_bool(self, value, line):
        if value.type != BOOL:
            raise FrontendError(
                f"expected a bool expression, got {value.type!r}", line
            )
        return value


def lower_program(program, module_name="miniomp"):
    """Lower a parsed program; returns a verified IR module."""
    return Lowerer(program, module_name).run()
