"""Recursive-descent parser for MiniOMP.

MiniOMP is a small C-like language with OpenMP-style pragma lines and Cilk
keywords, rich enough to express the NAS kernel skeletons the paper
evaluates on::

    global key_buff: int[1024];

    func main() {
      var s: int = 0;
      pragma omp parallel
      {
        pragma omp for reduction(+: s) schedule(static)
        for i in 0..1024 {
          s = s + key_buff[i];
        }
        pragma omp single
        { print(s); }
      }
    }

Pragmas are line-oriented (as in C): the directive and its clauses must
stay on one line, and annotate the statement that follows.
"""

from repro.frontend import ast
from repro.frontend.directives import (
    Clauses,
    Directive,
    REDUCTION_OPS,
)
from repro.frontend.lexer import tokenize
from repro.util.errors import FrontendError

_TYPE_KEYWORDS = {
    "INT_KW": "int",
    "FLOAT_KW": "float",
    "BOOL_KW": "bool",
    "VOID_KW": "void",
}

_CLAUSE_NAMES = frozenset(
    {
        "private",
        "firstprivate",
        "lastprivate",
        "shared",
        "reduction",
        "schedule",
        "nowait",
        "depend",
        "anyvalue",
        "ordered",
    }
)


class _TokenStream:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def _skip_newlines(self):
        while self._tokens[self._pos].kind == "NEWLINE":
            self._pos += 1

    def peek(self, offset=0):
        self._skip_newlines()
        pos = self._pos
        seen = 0
        while True:
            token = self._tokens[pos]
            if token.kind != "NEWLINE":
                if seen == offset:
                    return token
                seen += 1
            if token.kind == "EOF":
                return token
            pos += 1

    def next(self):
        self._skip_newlines()
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def next_raw(self):
        """Advance without skipping newlines (pragma-line reading)."""
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token.kind != kind:
            raise FrontendError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                token.line,
                token.column,
            )
        return token

    def accept(self, kind):
        if self.peek().kind == kind:
            return self.next()
        return None


class Parser:
    """Parses a full MiniOMP program."""

    def __init__(self, source):
        self.stream = _TokenStream(tokenize(source))

    # -- top level -----------------------------------------------------------

    def parse_program(self):
        globals_, functions = [], []
        pending_threadprivate = []
        while True:
            token = self.stream.peek()
            if token.kind == "EOF":
                break
            if token.kind == "GLOBAL":
                globals_.append(self._parse_global())
            elif token.kind == "FUNC":
                functions.append(self._parse_function())
            elif token.kind == "PRAGMA":
                directive = self._parse_pragma_line()
                if directive.kind != "threadprivate":
                    raise FrontendError(
                        f"only threadprivate pragmas are allowed at top "
                        f"level, found {directive.kind!r}",
                        directive.line,
                    )
                pending_threadprivate.extend(directive.clauses.shared)
            else:
                raise FrontendError(
                    f"expected global/func declaration, found {token.text!r}",
                    token.line,
                    token.column,
                )
        for decl in globals_:
            if decl.name in pending_threadprivate:
                decl.threadprivate = True
                pending_threadprivate = [
                    n for n in pending_threadprivate if n != decl.name
                ]
        if pending_threadprivate:
            raise FrontendError(
                f"threadprivate names not declared as globals: "
                f"{pending_threadprivate}"
            )
        return ast.Program(globals_, functions)

    def _parse_global(self):
        token = self.stream.expect("GLOBAL")
        name = self.stream.expect("IDENT").text
        self.stream.expect("COLON")
        type_spec = self._parse_type()
        init = None
        if self.stream.accept("ASSIGN"):
            init = self._parse_expression()
        self.stream.expect("SEMI")
        return ast.GlobalDecl(name, type_spec, init, line=token.line)

    def _parse_function(self):
        token = self.stream.expect("FUNC")
        name = self.stream.expect("IDENT").text
        self.stream.expect("LPAREN")
        params = []
        if self.stream.peek().kind != "RPAREN":
            while True:
                pname = self.stream.expect("IDENT").text
                self.stream.expect("COLON")
                ptype = self._parse_type()
                params.append(ast.Param(pname, ptype))
                if not self.stream.accept("COMMA"):
                    break
        self.stream.expect("RPAREN")
        return_type = ast.TypeSpec("void")
        if self.stream.accept("ARROW"):
            return_type = self._parse_type()
        body = self._parse_block()
        return ast.FuncDecl(name, params, return_type, body, line=token.line)

    def _parse_type(self):
        token = self.stream.next()
        base = _TYPE_KEYWORDS.get(token.kind)
        if base is None:
            raise FrontendError(
                f"expected a type, found {token.text!r}", token.line
            )
        dims = []
        while self.stream.accept("LBRACKET"):
            size = self.stream.expect("INT")
            dims.append(int(size.text))
            self.stream.expect("RBRACKET")
        return ast.TypeSpec(base, dims)

    # -- pragmas -----------------------------------------------------------

    def _parse_pragma_line(self):
        """Parse ``pragma omp <directive> <clauses...>`` up to end of line."""
        token = self.stream.expect("PRAGMA")
        self.stream.expect("OMP")
        line_tokens = []
        while True:
            raw = self.stream._tokens[self.stream._pos]
            if raw.kind in ("NEWLINE", "EOF"):
                break
            line_tokens.append(self.stream.next_raw())
        return self._parse_directive(line_tokens, token.line)

    def _parse_directive(self, tokens, line):
        cursor = _ListCursor(tokens, line)
        head = cursor.expect_ident("directive name")
        kind = head
        if head == "parallel" and cursor.peek_text() == "for":
            cursor.advance()
            kind = "parallel_for"
        clauses = Clauses()
        if kind == "critical" and cursor.peek_kind() == "LPAREN":
            cursor.advance()
            clauses.critical_name = cursor.expect_ident("critical name")
            cursor.expect_kind("RPAREN")
        if kind == "threadprivate":
            cursor.expect_kind("LPAREN")
            while True:
                clauses.shared.append(cursor.expect_ident("variable"))
                if cursor.peek_kind() != "COMMA":
                    break
                cursor.advance()
            cursor.expect_kind("RPAREN")
        self._parse_clauses(cursor, clauses)
        return Directive(kind, clauses, line=line)

    def _parse_clauses(self, cursor, clauses):
        while True:
            name = cursor.peek_text()
            if name is None or name not in _CLAUSE_NAMES:
                if cursor.peek_kind() is not None:
                    token = cursor.tokens[cursor.pos]
                    raise FrontendError(
                        f"unexpected token {token.text!r} in pragma",
                        token.line,
                    )
                return
            cursor.advance()
            if name == "nowait":
                clauses.nowait = True
                continue
            if name == "ordered":
                clauses.ordered_clause = True
                continue
            cursor.expect_kind("LPAREN")
            if name == "reduction":
                op = cursor.expect_reduction_op()
                cursor.expect_kind("COLON")
                while True:
                    clauses.reductions.append(
                        (op, cursor.expect_ident("variable"))
                    )
                    if cursor.peek_kind() != "COMMA":
                        break
                    cursor.advance()
            elif name == "schedule":
                kind = cursor.expect_ident("schedule kind")
                chunk = None
                if cursor.peek_kind() == "COMMA":
                    cursor.advance()
                    chunk = int(cursor.expect_int("chunk size"))
                clauses.schedule = (kind, chunk)
            elif name == "depend":
                mode = cursor.expect_ident("depend mode")
                cursor.expect_kind("COLON")
                while True:
                    clauses.depends.append(
                        (mode, cursor.expect_ident("variable"))
                    )
                    if cursor.peek_kind() != "COMMA":
                        break
                    cursor.advance()
            else:
                bucket = getattr(clauses, name)
                while True:
                    bucket.append(cursor.expect_ident("variable"))
                    if cursor.peek_kind() != "COMMA":
                        break
                    cursor.advance()
            cursor.expect_kind("RPAREN")

    # -- statements ----------------------------------------------------------

    def _parse_block(self):
        open_token = self.stream.expect("LBRACE")
        statements = []
        while self.stream.peek().kind != "RBRACE":
            if self.stream.peek().kind == "EOF":
                raise FrontendError("unterminated block", open_token.line)
            statements.append(self._parse_statement())
        self.stream.expect("RBRACE")
        return ast.Block(statements, line=open_token.line)

    def _parse_statement(self):
        pragmas = []
        while self.stream.peek().kind == "PRAGMA":
            directive = self._parse_pragma_line()
            if directive.is_standalone():
                return ast.StandaloneDirective(
                    directive=directive, line=directive.line, pragmas=pragmas
                )
            pragmas.append(directive)
        statement = self._parse_base_statement()
        statement.pragmas = pragmas + statement.pragmas
        return statement

    def _parse_base_statement(self):
        token = self.stream.peek()
        kind = token.kind
        if kind == "VAR":
            return self._parse_var_decl()
        if kind == "IF":
            return self._parse_if()
        if kind == "WHILE":
            return self._parse_while()
        if kind == "FOR":
            return self._parse_for()
        if kind == "PRINT":
            return self._parse_print()
        if kind == "RETURN":
            self.stream.next()
            value = None
            if self.stream.peek().kind != "SEMI":
                value = self._parse_expression()
            self.stream.expect("SEMI")
            return ast.ReturnStmt(value=value, line=token.line)
        if kind == "LBRACE":
            return self._parse_block()
        if kind == "SPAWN":
            return self._parse_spawn()
        if kind == "SYNC":
            self.stream.next()
            self.stream.expect("SEMI")
            return ast.StandaloneDirective(
                directive=Directive("cilk_sync", line=token.line),
                line=token.line,
            )
        if kind == "CILK_FOR":
            return self._parse_for(cilk=True)
        if kind == "CILK_SCOPE":
            self.stream.next()
            block = self._parse_block()
            block.pragmas.append(Directive("cilk_scope", line=token.line))
            return block
        if kind == "IDENT":
            return self._parse_assign_or_call()
        raise FrontendError(
            f"unexpected token {token.text!r} at statement start",
            token.line,
            token.column,
        )

    def _parse_var_decl(self):
        token = self.stream.expect("VAR")
        name = self.stream.expect("IDENT").text
        self.stream.expect("COLON")
        type_spec = self._parse_type()
        reducer_op = None
        if self.stream.accept("REDUCER"):
            self.stream.expect("LPAREN")
            op_token = self.stream.next()
            if op_token.text not in REDUCTION_OPS:
                raise FrontendError(
                    f"unknown reducer operator {op_token.text!r}",
                    op_token.line,
                )
            reducer_op = op_token.text
            self.stream.expect("RPAREN")
        init = None
        if self.stream.accept("ASSIGN"):
            init = self._parse_expression()
        self.stream.expect("SEMI")
        return ast.VarDecl(
            name=name,
            type=type_spec,
            init=init,
            reducer_op=reducer_op,
            line=token.line,
        )

    def _parse_if(self):
        token = self.stream.expect("IF")
        self.stream.expect("LPAREN")
        condition = self._parse_expression()
        self.stream.expect("RPAREN")
        then_body = self._parse_block()
        else_body = None
        if self.stream.accept("ELSE"):
            if self.stream.peek().kind == "IF":
                nested = self._parse_if()
                else_body = ast.Block([nested], line=nested.line)
            else:
                else_body = self._parse_block()
        return ast.If(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            line=token.line,
        )

    def _parse_while(self):
        token = self.stream.expect("WHILE")
        self.stream.expect("LPAREN")
        condition = self._parse_expression()
        self.stream.expect("RPAREN")
        body = self._parse_block()
        return ast.While(condition=condition, body=body, line=token.line)

    def _parse_for(self, cilk=False):
        token = self.stream.next()  # FOR or CILK_FOR
        var = self.stream.expect("IDENT").text
        self.stream.expect("IN")
        lower = self._parse_expression()
        self.stream.expect("DOTDOT")
        upper = self._parse_expression()
        step = None
        if self.stream.accept("STEP"):
            step = self._parse_expression()
        body = self._parse_block()
        statement = ast.For(
            var=var,
            lower=lower,
            upper=upper,
            step=step,
            body=body,
            line=token.line,
        )
        if cilk:
            statement.pragmas.append(Directive("cilk_for", line=token.line))
        return statement

    def _parse_print(self):
        token = self.stream.expect("PRINT")
        self.stream.expect("LPAREN")
        args = []
        if self.stream.peek().kind != "RPAREN":
            while True:
                args.append(self._parse_expression())
                if not self.stream.accept("COMMA"):
                    break
        self.stream.expect("RPAREN")
        self.stream.expect("SEMI")
        return ast.PrintStmt(args=args, line=token.line)

    def _parse_spawn(self):
        token = self.stream.expect("SPAWN")
        first = self._parse_postfix()
        target = None
        if self.stream.accept("ASSIGN"):
            target = first
            call = self._parse_postfix()
        else:
            call = first
        if not isinstance(call, ast.CallExpr):
            raise FrontendError("spawn requires a call", token.line)
        self.stream.expect("SEMI")
        return ast.SpawnStmt(call=call, target=target, line=token.line)

    def _parse_assign_or_call(self):
        start = self.stream.peek()
        expr = self._parse_postfix()
        if self.stream.accept("ASSIGN"):
            value = self._parse_expression()
            self.stream.expect("SEMI")
            if not isinstance(expr, (ast.VarRef, ast.Index)):
                raise FrontendError(
                    "left side of assignment must be a variable or element",
                    start.line,
                )
            return ast.Assign(target=expr, value=value, line=start.line)
        self.stream.expect("SEMI")
        if not isinstance(expr, ast.CallExpr):
            raise FrontendError(
                "expression statement must be a call", start.line
            )
        return ast.ExprStmt(expr=expr, line=start.line)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        expr = self._parse_and()
        while self.stream.peek().kind == "OR":
            token = self.stream.next()
            rhs = self._parse_and()
            expr = ast.BinExpr("||", expr, rhs, line=token.line)
        return expr

    def _parse_and(self):
        expr = self._parse_bitwise()
        while self.stream.peek().kind == "AND":
            token = self.stream.next()
            rhs = self._parse_bitwise()
            expr = ast.BinExpr("&&", expr, rhs, line=token.line)
        return expr

    def _parse_bitwise(self):
        expr = self._parse_equality()
        while self.stream.peek().kind in ("AMP", "PIPE", "CARET"):
            token = self.stream.next()
            op = {"AMP": "&", "PIPE": "|", "CARET": "^"}[token.kind]
            rhs = self._parse_equality()
            expr = ast.BinExpr(op, expr, rhs, line=token.line)
        return expr

    def _parse_equality(self):
        expr = self._parse_relational()
        while self.stream.peek().kind in ("EQ", "NE"):
            token = self.stream.next()
            op = "==" if token.kind == "EQ" else "!="
            rhs = self._parse_relational()
            expr = ast.BinExpr(op, expr, rhs, line=token.line)
        return expr

    def _parse_relational(self):
        expr = self._parse_additive()
        while self.stream.peek().kind in ("LT", "LE", "GT", "GE"):
            token = self.stream.next()
            op = {"LT": "<", "LE": "<=", "GT": ">", "GE": ">="}[token.kind]
            rhs = self._parse_additive()
            expr = ast.BinExpr(op, expr, rhs, line=token.line)
        return expr

    def _parse_additive(self):
        expr = self._parse_multiplicative()
        while self.stream.peek().kind in ("PLUS", "MINUS"):
            token = self.stream.next()
            op = "+" if token.kind == "PLUS" else "-"
            rhs = self._parse_multiplicative()
            expr = ast.BinExpr(op, expr, rhs, line=token.line)
        return expr

    def _parse_multiplicative(self):
        expr = self._parse_unary()
        while self.stream.peek().kind in ("STAR", "SLASH", "PERCENT"):
            token = self.stream.next()
            op = {"STAR": "*", "SLASH": "/", "PERCENT": "%"}[token.kind]
            rhs = self._parse_unary()
            expr = ast.BinExpr(op, expr, rhs, line=token.line)
        return expr

    def _parse_unary(self):
        token = self.stream.peek()
        if token.kind == "MINUS":
            self.stream.next()
            return ast.UnExpr("-", self._parse_unary(), line=token.line)
        if token.kind == "BANG":
            self.stream.next()
            return ast.UnExpr("!", self._parse_unary(), line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self.stream.peek()
            if token.kind == "LBRACKET":
                self.stream.next()
                index = self._parse_expression()
                self.stream.expect("RBRACKET")
                expr = ast.Index(expr, index, line=token.line)
            elif token.kind == "LPAREN" and isinstance(expr, ast.VarRef):
                self.stream.next()
                args = []
                if self.stream.peek().kind != "RPAREN":
                    while True:
                        args.append(self._parse_expression())
                        if not self.stream.accept("COMMA"):
                            break
                self.stream.expect("RPAREN")
                expr = ast.CallExpr(expr.name, args, line=token.line)
            else:
                return expr

    def _parse_primary(self):
        token = self.stream.next()
        if token.kind == "INT":
            return ast.IntLit(int(token.text), line=token.line)
        if token.kind == "FLOAT":
            return ast.FloatLit(float(token.text), line=token.line)
        if token.kind == "TRUE":
            return ast.BoolLit(True, line=token.line)
        if token.kind == "FALSE":
            return ast.BoolLit(False, line=token.line)
        if token.kind == "STRING":
            return ast.StringLit(token.text[1:-1], line=token.line)
        if token.kind == "IDENT":
            return ast.VarRef(token.text, line=token.line)
        if token.kind == "LPAREN":
            expr = self._parse_expression()
            self.stream.expect("RPAREN")
            return expr
        if token.kind in _TYPE_KEYWORDS:
            # Cast syntax: int(expr), float(expr).
            self.stream.expect("LPAREN")
            inner = self._parse_expression()
            self.stream.expect("RPAREN")
            return ast.CallExpr(
                _TYPE_KEYWORDS[token.kind], [inner], line=token.line
            )
        raise FrontendError(
            f"unexpected token {token.text!r} in expression",
            token.line,
            token.column,
        )


class _ListCursor:
    """Cursor over the token list of a single pragma line."""

    def __init__(self, tokens, line):
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek_kind(self):
        if self.pos >= len(self.tokens):
            return None
        return self.tokens[self.pos].kind

    def peek_text(self):
        if self.pos >= len(self.tokens):
            return None
        return self.tokens[self.pos].text

    def advance(self):
        self.pos += 1

    def expect_kind(self, kind):
        if self.peek_kind() != kind:
            raise FrontendError(
                f"expected {kind} in pragma, found {self.peek_text()!r}",
                self.line,
            )
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_ident(self, what):
        token_kind = self.peek_kind()
        if token_kind is None:
            raise FrontendError(f"expected {what} in pragma", self.line)
        token = self.tokens[self.pos]
        # Keywords (e.g. 'for', 'single') arrive as keyword tokens; accept
        # any word-like token as an identifier inside pragmas.
        if not token.text.replace("_", "").isalnum():
            raise FrontendError(
                f"expected {what} in pragma, found {token.text!r}", self.line
            )
        self.pos += 1
        return token.text

    def expect_int(self, what):
        token = self.expect_kind("INT")
        return token.text

    def expect_reduction_op(self):
        token_text = self.peek_text()
        if token_text not in REDUCTION_OPS:
            raise FrontendError(
                f"unknown reduction operator {token_text!r}", self.line
            )
        self.pos += 1
        return token_text


def parse_source(source):
    """Parse MiniOMP source text into an AST :class:`~repro.frontend.ast.Program`."""
    return Parser(source).parse_program()
