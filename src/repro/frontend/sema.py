"""Semantic checks over the MiniOMP AST.

The semantic pass validates names and pragma placement before lowering:

* globals/functions/locals are declared once per scope and referenced
  declared;
* function signatures are consistent at call sites (arity; full type
  checking, including numeric promotion, happens during lowering where IR
  types are at hand);
* loop-independence pragmas (``for``, ``parallel for``, ``taskloop``,
  ``simd``, ``cilk_for``) annotate ``for`` statements;
* clause variables are declared in scope, and reduction/anyvalue clause
  variables are scalars.

It produces a :class:`ProgramInfo` with the signature tables the lowerer
needs.
"""

import dataclasses

from repro.frontend import ast
from repro.util.errors import FrontendError

BUILTIN_FUNCTIONS = frozenset(
    {
        "sqrt",
        "sin",
        "cos",
        "exp",
        "log",
        "floor",
        "abs",
        "min",
        "max",
        "int",
        "float",
    }
)


@dataclasses.dataclass
class ProgramInfo:
    """Symbol tables produced by semantic analysis."""

    global_types: dict  # name -> TypeSpec
    threadprivate: set  # global names marked threadprivate
    signatures: dict  # func name -> (list[TypeSpec], TypeSpec)


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def declare(self, name, type_spec, line=None):
        if name in self.names:
            raise FrontendError(f"duplicate declaration of {name!r}", line)
        self.names[name] = type_spec

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemanticChecker:
    """Walks the AST, raising :class:`FrontendError` on the first problem."""

    def __init__(self, program):
        self.program = program
        self.info = ProgramInfo({}, set(), {})

    def run(self):
        for decl in self.program.globals:
            if decl.name in self.info.global_types:
                raise FrontendError(
                    f"duplicate global {decl.name!r}", decl.line
                )
            self.info.global_types[decl.name] = decl.type
            if decl.threadprivate:
                self.info.threadprivate.add(decl.name)
            if decl.init is not None and decl.type.is_array():
                raise FrontendError(
                    "array globals cannot have initializers", decl.line
                )

        for func in self.program.functions:
            if func.name in self.info.signatures:
                raise FrontendError(f"duplicate function {func.name!r}", func.line)
            if func.name in BUILTIN_FUNCTIONS:
                raise FrontendError(
                    f"function name {func.name!r} shadows a builtin", func.line
                )
            self.info.signatures[func.name] = (
                [p.type for p in func.params],
                func.return_type,
            )

        for func in self.program.functions:
            self._check_function(func)
        return self.info

    # -- function bodies ---------------------------------------------------

    def _check_function(self, func):
        scope = _Scope()
        for name, type_spec in self.info.global_types.items():
            scope.declare(name, type_spec)
        inner = _Scope(scope)
        for param in func.params:
            inner.declare(param.name, param.type, func.line)
        self._check_block(func.body, _Scope(inner), func)

    def _check_block(self, block, scope, func):
        for statement in block.statements:
            self._check_statement(statement, scope, func)

    def _check_statement(self, statement, scope, func):
        self._check_pragmas(statement, scope)
        if isinstance(statement, ast.VarDecl):
            scope.declare(statement.name, statement.type, statement.line)
            if statement.init is not None:
                if statement.type.is_array():
                    raise FrontendError(
                        "array variables cannot have initializers",
                        statement.line,
                    )
                self._check_expression(statement.init, scope)
        elif isinstance(statement, ast.Assign):
            self._check_expression(statement.target, scope)
            self._check_expression(statement.value, scope)
        elif isinstance(statement, ast.If):
            self._check_expression(statement.condition, scope)
            self._check_block(statement.then_body, _Scope(scope), func)
            if statement.else_body is not None:
                self._check_block(statement.else_body, _Scope(scope), func)
        elif isinstance(statement, ast.While):
            self._check_expression(statement.condition, scope)
            self._check_block(statement.body, _Scope(scope), func)
        elif isinstance(statement, ast.For):
            self._check_expression(statement.lower, scope)
            self._check_expression(statement.upper, scope)
            if statement.step is not None:
                self._check_expression(statement.step, scope)
            loop_scope = _Scope(scope)
            loop_scope.declare(
                statement.var, ast.TypeSpec("int"), statement.line
            )
            self._check_block(statement.body, loop_scope, func)
        elif isinstance(statement, ast.PrintStmt):
            for arg in statement.args:
                self._check_expression(arg, scope)
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self._check_expression(statement.value, scope)
                if func.return_type.base == "void":
                    raise FrontendError(
                        "void function returns a value", statement.line
                    )
            elif func.return_type.base != "void":
                raise FrontendError(
                    "non-void function returns no value", statement.line
                )
        elif isinstance(statement, ast.ExprStmt):
            self._check_expression(statement.expr, scope)
        elif isinstance(statement, ast.Block):
            self._check_block(statement, _Scope(scope), func)
        elif isinstance(statement, ast.SpawnStmt):
            self._check_expression(statement.call, scope)
            if statement.target is not None:
                self._check_expression(statement.target, scope)
        elif isinstance(statement, ast.StandaloneDirective):
            pass
        else:
            raise FrontendError(
                f"unhandled statement {type(statement).__name__}",
                statement.line,
            )

    def _check_pragmas(self, statement, scope):
        for directive in statement.pragmas:
            if directive.declares_loop_independence() and not isinstance(
                statement, ast.For
            ):
                raise FrontendError(
                    f"directive {directive.kind!r} must annotate a for loop",
                    directive.line,
                )
            names = directive.clauses.all_variable_names()
            loop_var = (
                statement.var if isinstance(statement, ast.For) else None
            )
            for name in names:
                if name == loop_var:
                    continue
                if scope.lookup(name) is None:
                    raise FrontendError(
                        f"pragma clause names undeclared variable {name!r}",
                        directive.line,
                    )
            for _op, name in directive.clauses.reductions:
                type_spec = scope.lookup(name)
                if type_spec is not None and type_spec.is_array():
                    # Array reductions are allowed (element-wise merge);
                    # matches OpenMP 4.5+ array-section reductions.
                    continue
            for name in directive.clauses.anyvalue:
                type_spec = scope.lookup(name)
                if type_spec is not None and type_spec.is_array():
                    raise FrontendError(
                        f"anyvalue({name}) requires a scalar", directive.line
                    )

    # -- expressions -----------------------------------------------------------

    def _check_expression(self, expr, scope):
        if isinstance(
            expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StringLit)
        ):
            return
        if isinstance(expr, ast.VarRef):
            if scope.lookup(expr.name) is None:
                raise FrontendError(
                    f"undeclared variable {expr.name!r}", expr.line
                )
            return
        if isinstance(expr, ast.Index):
            self._check_expression(expr.base, scope)
            self._check_expression(expr.index, scope)
            return
        if isinstance(expr, ast.BinExpr):
            self._check_expression(expr.lhs, scope)
            self._check_expression(expr.rhs, scope)
            return
        if isinstance(expr, ast.UnExpr):
            self._check_expression(expr.operand, scope)
            return
        if isinstance(expr, ast.CallExpr):
            if expr.name not in BUILTIN_FUNCTIONS:
                signature = self.info.signatures.get(expr.name)
                if signature is None:
                    raise FrontendError(
                        f"call to undeclared function {expr.name!r}",
                        expr.line,
                    )
                if len(signature[0]) != len(expr.args):
                    raise FrontendError(
                        f"call to {expr.name!r} passes {len(expr.args)} "
                        f"arguments, expected {len(signature[0])}",
                        expr.line,
                    )
            for arg in expr.args:
                self._check_expression(arg, scope)
            return
        raise FrontendError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )


def check_program(program):
    """Run semantic analysis; returns :class:`ProgramInfo`."""
    return SemanticChecker(program).run()
