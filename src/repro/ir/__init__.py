"""repro.ir — the sequential core of the intermediate representation.

A compact LLVM-flavoured IR: typed values, alloca-based variables,
loads/stores, explicit CFG, and no phi nodes (source variables live in
memory).  Parallel semantics are layered on top by ``repro.frontend``
annotations; this package is purely sequential.
"""

from repro.ir.types import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VoidType,
    array_of,
    pointer_to,
)
from repro.ir.values import (
    Argument,
    Constant,
    GlobalVariable,
    Value,
    const_bool,
    const_float,
    const_int,
)
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Print,
    Return,
    Select,
    Store,
    Terminator,
    UnaryOp,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.loopinfo import CanonicalLoop
from repro.ir.parser import IRParser, parse_ir
from repro.ir.printer import dump, print_function, print_module
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "BOOL",
    "FLOAT",
    "INT",
    "VOID",
    "ArrayType",
    "BoolType",
    "FloatType",
    "IntType",
    "PointerType",
    "Type",
    "VoidType",
    "array_of",
    "pointer_to",
    "Argument",
    "Constant",
    "GlobalVariable",
    "Value",
    "const_bool",
    "const_float",
    "const_int",
    "Alloca",
    "BinaryOp",
    "Branch",
    "Call",
    "Cast",
    "Compare",
    "GetElementPtr",
    "Instruction",
    "Jump",
    "Load",
    "Print",
    "Return",
    "Select",
    "Store",
    "Terminator",
    "UnaryOp",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "CanonicalLoop",
    "IRParser",
    "parse_ir",
    "dump",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
