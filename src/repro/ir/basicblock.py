"""Basic blocks: straight-line instruction sequences ended by a terminator."""

from repro.ir.instructions import Terminator
from repro.util.errors import IRError


class BasicBlock:
    """A labeled sequence of instructions with exactly one terminator.

    Blocks know their parent function; predecessor/successor queries are
    computed from terminators on demand (the CFG is small and mutations are
    rare after construction).
    """

    def __init__(self, name, parent=None):
        self.name = name
        self.parent = parent
        self.instructions = []

    # -- construction ------------------------------------------------------

    def append(self, instruction):
        """Insert ``instruction`` at the end of the block.

        Assigns the function-unique ``uid`` and sets ``parent``.  Appending
        past a terminator is an error: dead instructions would silently be
        skipped by the interpreter and hide frontend bugs.
        """
        if self.is_terminated():
            raise IRError(
                f"block {self.name!r} already has a terminator; "
                f"cannot append {instruction.opcode}"
            )
        instruction.parent = self
        if self.parent is not None:
            instruction.uid = self.parent.allocate_uid()
        self.instructions.append(instruction)
        return instruction

    # -- structure queries ---------------------------------------------------

    @property
    def terminator(self):
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    def is_terminated(self):
        return self.terminator is not None

    def successors(self):
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self):
        """Blocks that branch to this one (computed from the function CFG)."""
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def non_terminator_instructions(self):
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self):
        return f"<block {self.name} ({len(self.instructions)} insts)>"
