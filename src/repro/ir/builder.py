"""Imperative construction of IR, in the style of ``llvm::IRBuilder``.

The builder tracks a current insertion block and provides one method per
instruction plus a handful of conveniences (typed constant helpers and
arithmetic sugar).  Structured control flow (ifs, counted loops) is lowered
by the MiniOMP frontend; the builder stays deliberately low level.
"""

from repro.ir import instructions as insts
from repro.ir.types import BOOL, FLOAT, INT
from repro.ir.values import Constant
from repro.util.errors import IRError


class IRBuilder:
    """Appends instructions to a current basic block."""

    def __init__(self, block=None):
        self.block = block

    def position_at_end(self, block):
        self.block = block
        return self

    @property
    def function(self):
        return self.block.parent if self.block is not None else None

    def _insert(self, instruction):
        if self.block is None:
            raise IRError("builder has no insertion block")
        return self.block.append(instruction)

    # -- constants ----------------------------------------------------------

    def int(self, value):
        return Constant(INT, int(value))

    def float(self, value):
        return Constant(FLOAT, float(value))

    def bool(self, value):
        return Constant(BOOL, bool(value))

    # -- memory ---------------------------------------------------------------

    def alloca(self, allocated_type, var_name=None):
        return self._insert(insts.Alloca(allocated_type, var_name))

    def load(self, pointer):
        return self._insert(insts.Load(pointer))

    def store(self, value, pointer):
        return self._insert(insts.Store(value, pointer))

    def gep(self, pointer, index):
        return self._insert(insts.GetElementPtr(pointer, index))

    # -- arithmetic -------------------------------------------------------------

    def binop(self, op, lhs, rhs):
        return self._insert(insts.BinaryOp(op, lhs, rhs))

    def add(self, lhs, rhs):
        return self.binop("add", lhs, rhs)

    def sub(self, lhs, rhs):
        return self.binop("sub", lhs, rhs)

    def mul(self, lhs, rhs):
        return self.binop("mul", lhs, rhs)

    def div(self, lhs, rhs):
        return self.binop("div", lhs, rhs)

    def rem(self, lhs, rhs):
        return self.binop("rem", lhs, rhs)

    def unop(self, op, operand):
        return self._insert(insts.UnaryOp(op, operand))

    def neg(self, operand):
        return self.unop("neg", operand)

    def cmp(self, predicate, lhs, rhs):
        return self._insert(insts.Compare(predicate, lhs, rhs))

    def select(self, condition, if_true, if_false):
        return self._insert(insts.Select(condition, if_true, if_false))

    def cast(self, kind, operand):
        return self._insert(insts.Cast(kind, operand))

    # -- calls and effects -------------------------------------------------------

    def call(self, callee, args=()):
        return self._insert(insts.Call(callee, list(args)))

    def print_(self, values):
        if not isinstance(values, (list, tuple)):
            values = [values]
        return self._insert(insts.Print(list(values)))

    # -- terminators ----------------------------------------------------------

    def jump(self, target):
        return self._insert(insts.Jump(target))

    def branch(self, condition, if_true, if_false):
        return self._insert(insts.Branch(condition, if_true, if_false))

    def ret(self, value=None):
        return self._insert(insts.Return(value))
