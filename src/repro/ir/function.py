"""Functions and modules of the repro IR."""

from repro.ir.basicblock import BasicBlock
from repro.ir.types import VOID
from repro.ir.values import Argument, GlobalVariable
from repro.util.errors import IRError


class Function:
    """A function: typed arguments, a CFG of basic blocks, and annotations.

    Two side tables carry frontend-produced metadata that the PS-PDG builder
    consumes (mirroring the paper's "IR with custom metadata", Fig. 12):

    ``loop_info``
        Maps a loop *header block name* to a :class:`CanonicalLoop` record
        (induction variable alloca, bounds, step) for loops lowered from
        structured ``for`` statements, giving DOALL its known trip counts.

    ``annotations``
        Ordered list of directive region annotations
        (:class:`repro.frontend.directives.RegionAnnotation`).
    """

    def __init__(self, name, arg_types=(), arg_names=(), return_type=VOID):
        if arg_names and len(arg_names) != len(arg_types):
            raise IRError("arg_names and arg_types must have equal length")
        names = list(arg_names) or [f"arg{i}" for i in range(len(arg_types))]
        self.name = name
        self.return_type = return_type
        self.args = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, names))
        ]
        self.blocks = []
        self._block_names = {}
        self._next_uid = 0
        self.loop_info = {}
        self.annotations = []

    # -- construction ------------------------------------------------------

    def allocate_uid(self):
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def create_block(self, name):
        """Create and append a new uniquely-named basic block."""
        unique = name
        counter = 1
        while unique in self._block_names:
            unique = f"{name}.{counter}"
            counter += 1
        block = BasicBlock(unique, parent=self)
        self._block_names[unique] = block
        self.blocks.append(block)
        return block

    def block(self, name):
        try:
            return self._block_names[name]
        except KeyError:
            raise IRError(f"no block named {name!r} in @{self.name}") from None

    @property
    def entry(self):
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    # -- iteration ------------------------------------------------------------

    def instructions(self):
        """Iterate all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self):
        return sum(len(b.instructions) for b in self.blocks)

    def find_instruction(self, uid):
        for inst in self.instructions():
            if inst.uid == uid:
                return inst
        raise IRError(f"no instruction #{uid} in @{self.name}")

    def __repr__(self):
        return f"<function @{self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A translation unit: named globals plus named functions."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.globals = {}
        # Free-form metadata side table (e.g. the frontend records the set
        # of threadprivate global names under "threadprivate").
        self.metadata = {}

    def add_function(self, function):
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        self.functions[function.name] = function
        return function

    def create_function(self, name, arg_types=(), arg_names=(), return_type=VOID):
        return self.add_function(
            Function(name, arg_types, arg_names, return_type)
        )

    def add_global(self, name, value_type, initializer=None):
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        gvar = GlobalVariable(name, value_type, initializer)
        self.globals[name] = gvar
        return gvar

    def function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module") from None

    def __repr__(self):
        return (
            f"<module {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions>"
        )
