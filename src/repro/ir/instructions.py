"""Instruction set of the repro IR.

The instruction set mirrors the subset of LLVM IR that the paper's pipeline
manipulates: stack allocation, loads/stores, element-pointer arithmetic,
integer/float arithmetic, comparisons, selects, casts, calls, an observable
``print``, and the three terminators (``jump``, ``branch``, ``return``).

Design notes
------------
* Instructions are :class:`~repro.ir.values.Value`\\ s; their results are
  single-assignment temporaries named ``%<n>``.
* There are **no phi nodes**: source variables live in memory, so values that
  cross control-flow edges do so through loads/stores ("clang -O0" shape).
  This keeps register dependences intra-block/intra-iteration and routes all
  loop-carried dataflow through the memory dependence analysis, which is
  where the PDG/PS-PDG distinction lives.
* Every instruction has a stable integer ``uid`` unique within its function,
  assigned when it is inserted into a block.
"""

from repro.ir.types import BOOL, FLOAT, INT, VOID, ArrayType, PointerType
from repro.ir.values import Value
from repro.util.errors import IRError

# Binary opcodes.  Arithmetic ops are polymorphic over int/float operands of
# matching type; bitwise/shift ops are integer only.
BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "rem",
        "min",
        "max",
        "pow",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
    }
)
INT_ONLY_BINARY_OPS = frozenset({"and", "or", "xor", "shl", "shr", "rem"})

UNARY_OPS = frozenset(
    {"neg", "not", "abs", "sqrt", "sin", "cos", "exp", "log", "floor"}
)
FLOAT_ONLY_UNARY_OPS = frozenset({"sqrt", "sin", "cos", "exp", "log", "floor"})

CMP_PREDICATES = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

CAST_KINDS = frozenset({"int_to_float", "float_to_int", "bool_to_int"})


class Instruction(Value):
    """Base class for all instructions.

    ``operands`` is the ordered list of :class:`Value` inputs.  Subclasses
    expose named accessors (e.g. :attr:`Store.pointer`) over fixed operand
    positions.
    """

    opcode = "<abstract>"

    def __init__(self, type_, operands):
        super().__init__(type_)
        self.operands = list(operands)
        self.parent = None  # BasicBlock, set on insertion
        self.uid = None  # int, set on insertion

    # -- classification helpers used throughout analyses ------------------

    def is_terminator(self):
        return False

    def reads_memory(self):
        return False

    def writes_memory(self):
        return False

    def has_side_effects(self):
        """True for instructions that must not be duplicated or dropped."""
        return self.writes_memory()

    def replace_operand(self, old, new):
        """Replace every occurrence of ``old`` in the operand list."""
        self.operands = [new if op is old else op for op in self.operands]

    def short(self):
        if self.type == VOID:
            return f"<{self.opcode}#{self.uid}>"
        return f"%{self.uid}"

    def describe(self):
        """One-line printable form, used by the IR printer."""
        ops = ", ".join(op.short() for op in self.operands)
        if self.type == VOID:
            return f"{self.opcode} {ops}"
        return f"%{self.uid} = {self.opcode} {ops}"

    def __repr__(self):
        return f"<{self.opcode}#{self.uid}>"


class Alloca(Instruction):
    """Reserve one stack object of ``allocated_type``; yields a pointer.

    ``var_name`` records the source-level variable name for diagnostics and
    for parallel-semantic-variable bookkeeping.
    """

    opcode = "alloca"

    def __init__(self, allocated_type, var_name=None):
        super().__init__(PointerType(allocated_type), [])
        self.allocated_type = allocated_type
        self.var_name = var_name

    def describe(self):
        suffix = f" ; {self.var_name}" if self.var_name else ""
        return f"%{self.uid} = alloca {self.allocated_type!r}{suffix}"


class Load(Instruction):
    """Read one scalar from memory through a pointer operand."""

    opcode = "load"

    def __init__(self, pointer):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"load requires a pointer operand, got {pointer.type!r}")
        super().__init__(pointer.type.pointee, [pointer])

    @property
    def pointer(self):
        return self.operands[0]

    def reads_memory(self):
        return True


class Store(Instruction):
    """Write one scalar to memory through a pointer operand."""

    opcode = "store"

    def __init__(self, value, pointer):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store requires a pointer operand, got {pointer.type!r}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self):
        return self.operands[0]

    @property
    def pointer(self):
        return self.operands[1]

    def writes_memory(self):
        return True


class GetElementPtr(Instruction):
    """Index into an array: ``gep ptr, idx`` yields ``&ptr[idx]``.

    The pointee of ``pointer`` must be an array type; the result points at
    one element.  Multi-dimensional indexing chains GEPs.
    """

    opcode = "gep"

    def __init__(self, pointer, index):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"gep requires a pointer operand, got {pointer.type!r}")
        pointee = pointer.type.pointee
        if not isinstance(pointee, ArrayType):
            raise IRError(f"gep requires a pointer-to-array, got {pointer.type!r}")
        super().__init__(PointerType(pointee.element), [pointer, index])

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def index(self):
        return self.operands[1]


class BinaryOp(Instruction):
    """Two-operand arithmetic/bitwise operation."""

    opcode = "binop"

    def __init__(self, op, lhs, rhs):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        if lhs.type != rhs.type:
            raise IRError(
                f"binary op {op!r} operand types differ: "
                f"{lhs.type!r} vs {rhs.type!r}"
            )
        if op in INT_ONLY_BINARY_OPS and lhs.type != INT:
            raise IRError(f"binary op {op!r} requires int operands")
        super().__init__(lhs.type, [lhs, rhs])
        self.op = op

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]

    def describe(self):
        return f"%{self.uid} = {self.op} {self.lhs.short()}, {self.rhs.short()}"


class UnaryOp(Instruction):
    """One-operand arithmetic operation (negation, sqrt, transcendental...)."""

    opcode = "unop"

    def __init__(self, op, operand):
        if op not in UNARY_OPS:
            raise IRError(f"unknown unary op {op!r}")
        if op in FLOAT_ONLY_UNARY_OPS and operand.type != FLOAT:
            raise IRError(f"unary op {op!r} requires a float operand")
        if op == "not" and operand.type not in (INT, BOOL):
            raise IRError("'not' requires an int or bool operand")
        super().__init__(operand.type, [operand])
        self.op = op

    @property
    def operand(self):
        return self.operands[0]

    def describe(self):
        return f"%{self.uid} = {self.op} {self.operand.short()}"


class Compare(Instruction):
    """Relational comparison producing a bool."""

    opcode = "cmp"

    def __init__(self, predicate, lhs, rhs):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"unknown comparison predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise IRError(
                f"cmp operand types differ: {lhs.type!r} vs {rhs.type!r}"
            )
        super().__init__(BOOL, [lhs, rhs])
        self.predicate = predicate

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]

    def describe(self):
        return (
            f"%{self.uid} = cmp {self.predicate} "
            f"{self.lhs.short()}, {self.rhs.short()}"
        )


class Select(Instruction):
    """``select cond, a, b``: value-level conditional (no control flow)."""

    opcode = "select"

    def __init__(self, condition, if_true, if_false):
        if condition.type != BOOL:
            raise IRError("select condition must be bool")
        if if_true.type != if_false.type:
            raise IRError("select arms must have matching types")
        super().__init__(if_true.type, [condition, if_true, if_false])

    @property
    def condition(self):
        return self.operands[0]

    @property
    def if_true(self):
        return self.operands[1]

    @property
    def if_false(self):
        return self.operands[2]


class Cast(Instruction):
    """Numeric conversion between int, float, and bool domains."""

    opcode = "cast"

    def __init__(self, kind, operand):
        if kind not in CAST_KINDS:
            raise IRError(f"unknown cast kind {kind!r}")
        result = {"int_to_float": FLOAT, "float_to_int": INT, "bool_to_int": INT}
        super().__init__(result[kind], [operand])
        self.kind = kind

    @property
    def operand(self):
        return self.operands[0]

    def describe(self):
        return f"%{self.uid} = {self.kind} {self.operand.short()}"


class Call(Instruction):
    """Direct call to another function in the module."""

    opcode = "call"

    def __init__(self, callee, args):
        expected = [arg.type for arg in callee.args]
        actual = [a.type for a in args]
        if expected != actual:
            raise IRError(
                f"call to @{callee.name}: argument types {actual!r} "
                f"do not match parameters {expected!r}"
            )
        super().__init__(callee.return_type, list(args))
        self.callee = callee

    def reads_memory(self):
        # Conservative: callees may touch any memory reachable from args
        # or globals.  The alias analysis refines this.
        return True

    def writes_memory(self):
        return True

    def has_side_effects(self):
        return True

    def describe(self):
        ops = ", ".join(op.short() for op in self.operands)
        if self.type == VOID:
            return f"call @{self.callee.name}({ops})"
        return f"%{self.uid} = call @{self.callee.name}({ops})"


class Print(Instruction):
    """Observable output (models printf); order of prints is program output.

    ``label`` is an optional literal prefix string (from string literals in
    the source ``print``), kept out of the operand list since it is not a
    :class:`Value`.
    """

    opcode = "print"

    def __init__(self, values, label=None):
        super().__init__(VOID, list(values))
        self.label = label

    def describe(self):
        ops = ", ".join(op.short() for op in self.operands)
        if self.label is not None:
            return f'print "{self.label}" {ops}'.rstrip()
        return f"print {ops}".rstrip()

    def has_side_effects(self):
        return True

    def reads_memory(self):
        return False

    def writes_memory(self):
        # Printing serializes with other prints; modelled as a write to a
        # distinguished "console" memory object by the alias analysis.
        return True


class Terminator(Instruction):
    """Base class for block terminators."""

    def is_terminator(self):
        return True

    def successors(self):
        """List of successor basic blocks."""
        raise NotImplementedError

    def has_side_effects(self):
        return True


class Jump(Terminator):
    """Unconditional branch."""

    opcode = "jump"

    def __init__(self, target):
        super().__init__(VOID, [])
        self.target = target

    def successors(self):
        return [self.target]

    def describe(self):
        return f"jump {self.target.name}"


class Branch(Terminator):
    """Conditional two-way branch."""

    opcode = "branch"

    def __init__(self, condition, if_true, if_false):
        if condition.type != BOOL:
            raise IRError("branch condition must be bool")
        super().__init__(VOID, [condition])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def condition(self):
        return self.operands[0]

    def successors(self):
        return [self.if_true, self.if_false]

    def describe(self):
        return (
            f"branch {self.condition.short()}, "
            f"{self.if_true.name}, {self.if_false.name}"
        )


class Return(Terminator):
    """Return from the enclosing function, optionally with a value."""

    opcode = "return"

    def __init__(self, value=None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self):
        return self.operands[0] if self.operands else None

    def successors(self):
        return []

    def describe(self):
        if self.operands:
            return f"return {self.value.short()}"
        return "return"
