"""Canonical-loop metadata attached to functions by the frontend.

OpenMP worksharing requires loops in *canonical form* (``for (i = lb; i < ub;
i += step)``).  Our frontend lowers every structured ``for`` to the same
shape and records the pieces here, keyed by header block name in
``Function.loop_info``.  The planner reads this to know trip counts (DOALL
requires them) and which alloca is the induction variable (so its
loop-carried update is recognized as privatizable control, not a real
dependence).
"""

import dataclasses


@dataclasses.dataclass
class CanonicalLoop:
    """Metadata for one structured counted loop.

    Attributes:
        header: name of the header block (evaluates the exit condition).
        body: name of the first body block.
        latch: name of the latch block (increments the induction variable).
        exit: name of the block control reaches after the loop.
        induction: the ``Alloca`` holding the induction variable.
        lower: Value of the first iteration's induction value.
        upper: Value of the (exclusive) upper bound.
        step: Value added each iteration (a positive integer constant in
            every loop our frontend produces).
    """

    header: str
    body: str
    latch: str
    exit: str
    induction: object
    lower: object
    upper: object
    step: object

    def block_names(self, function):
        """All block names belonging to the loop (header..latch, inclusive).

        Derived from the natural-loop analysis; provided here for callers
        that only have the metadata record.
        """
        from repro.analysis.loops import find_natural_loops

        for loop in find_natural_loops(function):
            if loop.header.name == self.header:
                return [b.name for b in loop.blocks]
        return [self.header, self.body, self.latch]
