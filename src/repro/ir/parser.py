"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Parses the printer's output back into a :class:`Module`, enabling IR-level
round-trip tests, golden files, and pasting dumped IR into bug reports.
Scope: globals, functions, blocks, and every instruction form the printer
emits.  The metadata comment lines (``; loop ...``, ``; region ...``) are
*not* reconstructed — parallel annotations reference frontend objects that
plain text cannot round-trip; parsed modules are sequential IR.
"""

import re

from repro.ir import instructions as insts
from repro.ir.function import Module
from repro.ir.types import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    PointerType,
)
from repro.ir.values import Constant
from repro.util.errors import IRError

_SCALARS = {"int": INT, "float": FLOAT, "bool": BOOL, "void": VOID}

_GLOBAL_RE = re.compile(r"^global @(\w+): (.+?)(?: = (.+))?$")
_FUNC_RE = re.compile(r"^func @(\w+)\((.*)\) -> (.+) \{$")
_BLOCK_RE = re.compile(r"^([\w.]+):$")
_ASSIGN_RE = re.compile(r"^%(\d+) = (.+)$")


def _parse_type(text):
    text = text.strip()
    if text.endswith("*"):
        return PointerType(_parse_type(text[:-1]))
    if text.startswith("["):
        if not text.endswith("]"):
            raise IRError(f"malformed array type {text!r}")
        inner = text[1:-1]
        count_text, _, element_text = inner.partition(" x ")
        return ArrayType(_parse_type(element_text), int(count_text))
    if text in _SCALARS:
        return _SCALARS[text]
    raise IRError(f"unknown type {text!r}")


def _split_operands(text):
    """Split a comma-separated operand list, respecting brackets."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class IRParser:
    """Parses one printed module."""

    def __init__(self, text):
        self.lines = [line.rstrip() for line in text.splitlines()]
        self.position = 0
        self.module = Module()

    def parse(self):
        while self.position < len(self.lines):
            line = self.lines[self.position].strip()
            if not line or line.startswith(";"):
                self.position += 1
                continue
            if line.startswith("global @"):
                self._parse_global(line)
                self.position += 1
                continue
            if line.startswith("func @"):
                self._parse_function_header(line)
                continue
            raise IRError(f"unexpected line {line!r}")
        self._resolve_all()
        return self.module

    # -- pieces -----------------------------------------------------------

    def _parse_global(self, line):
        match = _GLOBAL_RE.match(line)
        if match is None:
            raise IRError(f"malformed global {line!r}")
        name, type_text, init_text = match.groups()
        initializer = None
        if init_text is not None:
            initializer = eval(init_text, {"__builtins__": {}})  # literals only
        self.module.add_global(name, _parse_type(type_text), initializer)

    def _parse_function_header(self, line):
        match = _FUNC_RE.match(line)
        if match is None:
            raise IRError(f"malformed function header {line!r}")
        name, params_text, return_text = match.groups()
        arg_types = []
        arg_names = []
        if params_text.strip():
            for param in _split_operands(params_text):
                pname, _, ptype = param.partition(":")
                arg_names.append(pname.strip().lstrip("%"))
                arg_types.append(_parse_type(ptype))
        function = self.module.create_function(
            name, arg_types, arg_names, _parse_type(return_text)
        )
        self.position += 1
        self._parse_function_body(function)

    def _parse_function_body(self, function):
        # First pass: discover block labels so branches can forward-ref.
        scan = self.position
        while scan < len(self.lines):
            line = self.lines[scan].strip()
            if line == "}":
                break
            match = _BLOCK_RE.match(line)
            if match and not self.lines[scan].startswith("  "):
                function.create_block(match.group(1))
            scan += 1

        block = None
        pending = []  # (block, raw instruction text) in order
        while self.position < len(self.lines):
            raw = self.lines[self.position]
            line = raw.strip()
            self.position += 1
            if line == "}":
                break
            match = _BLOCK_RE.match(line)
            if match and not raw.startswith("  "):
                block = function.block(match.group(1))
                continue
            if not line or line.startswith(";"):
                continue
            pending.append((block, line))
        self._pending_functions = getattr(self, "_pending_functions", [])
        self._pending_functions.append((function, pending))

    def _resolve_all(self):
        """Second pass: build instructions (calls may be forward refs)."""
        for function, pending in getattr(self, "_pending_functions", []):
            values = {}  # "%N" -> Value
            for argument in function.args:
                values[f"%{argument.name}"] = argument

            for block, line in pending:
                inst, uid = self._build_instruction(function, line, values)
                block.append(inst)
                if uid is not None:
                    values[f"%{uid}"] = inst

    def _operand(self, text, values):
        text = text.strip()
        if text.startswith("@"):
            return self.module.globals[text[1:]]
        if text.startswith("%"):
            try:
                return values[text]
            except KeyError:
                raise IRError(f"use of undefined value {text}") from None
        if text == "True":
            return Constant(BOOL, True)
        if text == "False":
            return Constant(BOOL, False)
        try:
            return Constant(INT, int(text))
        except ValueError:
            return Constant(FLOAT, float(text))

    def _build_instruction(self, function, line, values):
        uid = None
        body = line
        match = _ASSIGN_RE.match(line)
        if match is not None:
            uid = int(match.group(1))
            body = match.group(2)

        opcode, _, rest = body.partition(" ")
        rest = rest.strip()

        if opcode == "alloca":
            type_text, _, comment = rest.partition(";")
            inst = insts.Alloca(
                _parse_type(type_text), comment.strip() or None
            )
        elif opcode == "load":
            inst = insts.Load(self._operand(rest, values))
        elif opcode == "store":
            value_text, pointer_text = _split_operands(rest)
            inst = insts.Store(
                self._operand(value_text, values),
                self._operand(pointer_text, values),
            )
        elif opcode == "gep":
            pointer_text, index_text = _split_operands(rest)
            inst = insts.GetElementPtr(
                self._operand(pointer_text, values),
                self._operand(index_text, values),
            )
        elif opcode in insts.BINARY_OPS:
            lhs, rhs = _split_operands(rest)
            inst = insts.BinaryOp(
                opcode, self._operand(lhs, values), self._operand(rhs, values)
            )
        elif opcode in insts.UNARY_OPS:
            inst = insts.UnaryOp(opcode, self._operand(rest, values))
        elif opcode == "cmp":
            predicate, _, operands = rest.partition(" ")
            lhs, rhs = _split_operands(operands)
            inst = insts.Compare(
                predicate,
                self._operand(lhs, values),
                self._operand(rhs, values),
            )
        elif opcode == "select":
            cond, if_true, if_false = _split_operands(rest)
            inst = insts.Select(
                self._operand(cond, values),
                self._operand(if_true, values),
                self._operand(if_false, values),
            )
        elif opcode in insts.CAST_KINDS:
            inst = insts.Cast(opcode, self._operand(rest, values))
        elif opcode == "call":
            name, _, arg_text = rest.partition("(")
            callee = self.module.function(name.strip().lstrip("@"))
            arg_text = arg_text.rstrip(")")
            args = [
                self._operand(a, values)
                for a in _split_operands(arg_text)
                if a
            ]
            inst = insts.Call(callee, args)
        elif opcode == "print":
            label = None
            if rest.startswith('"'):
                closing = rest.index('"', 1)
                label = rest[1:closing]
                rest = rest[closing + 1 :].strip()
            operands = [
                self._operand(o, values)
                for o in _split_operands(rest)
                if o
            ]
            inst = insts.Print(operands, label)
        elif opcode == "jump":
            inst = insts.Jump(function.block(rest))
        elif opcode == "branch":
            cond, if_true, if_false = _split_operands(rest)
            inst = insts.Branch(
                self._operand(cond, values),
                function.block(if_true),
                function.block(if_false),
            )
        elif opcode == "return":
            if rest:
                inst = insts.Return(self._operand(rest, values))
            else:
                inst = insts.Return()
        else:
            raise IRError(f"unknown instruction {line!r}")
        return inst, uid


def parse_ir(text):
    """Parse printed IR text back into a (sequential) Module."""
    return IRParser(text).parse()
