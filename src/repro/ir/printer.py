"""Textual dump of IR modules and functions.

The format is stable and human-oriented; golden tests compare against it.
Example::

    func @main() -> void {
    entry:
      %0 = alloca int ; sum
      store 0, %0
      jump header
    header:
      ...
    }
"""

from repro.ir.function import Function, Module


def print_function(function):
    """Return the textual form of one function."""
    params = ", ".join(f"%{a.name}: {a.type!r}" for a in function.args)
    lines = [f"func @{function.name}({params}) -> {function.return_type!r} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst.describe()}")
    lines.append("}")
    if function.loop_info:
        for header, loop in sorted(function.loop_info.items()):
            lines.append(
                f"; loop {header}: iv=%{loop.induction.uid} "
                f"lower={loop.lower.short()} upper={loop.upper.short()} "
                f"step={loop.step.short()}"
            )
    for annotation in function.annotations:
        lines.append(f"; {annotation.describe()}")
    return "\n".join(lines)


def print_module(module):
    """Return the textual form of a whole module."""
    lines = [f"; module {module.name}"]
    for name, gvar in module.globals.items():
        init = "" if gvar.initializer is None else f" = {gvar.initializer!r}"
        lines.append(f"global @{name}: {gvar.value_type!r}{init}")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)


def dump(item):
    """Print a module or function to stdout (debugging convenience)."""
    if isinstance(item, Module):
        text = print_module(item)
    elif isinstance(item, Function):
        text = print_function(item)
    else:
        raise TypeError(f"cannot dump {type(item).__name__}")
    print(text)
    return text
