"""Type system for the repro IR.

The IR is deliberately small: scalar ``int``/``float``/``bool``, ``void`` for
functions without a result, fixed-size (possibly nested) arrays, and typed
pointers.  Named program variables live in memory (``alloca``/globals), so
pointers appear pervasively even though the source language has none.

Memory is measured in *slots*: one slot holds one scalar.  An array of
``n`` elements occupies ``n * element.slots()`` consecutive slots.  This is
the unit used by ``getelementptr`` offset arithmetic and by the interpreter's
flat per-object storage.
"""


class Type:
    """Base class for IR types.  Types are immutable and compare by value."""

    def slots(self):
        """Number of scalar slots a value of this type occupies in memory."""
        raise NotImplementedError

    def is_scalar(self):
        return False

    def __eq__(self, other):
        return type(self) is type(other)

    def __hash__(self):
        return hash(type(self).__name__)


class IntType(Type):
    """Arbitrary-precision signed integer (models i64 without overflow)."""

    def slots(self):
        return 1

    def is_scalar(self):
        return True

    def __repr__(self):
        return "int"


class FloatType(Type):
    """IEEE double precision floating point."""

    def slots(self):
        return 1

    def is_scalar(self):
        return True

    def __repr__(self):
        return "float"


class BoolType(Type):
    """Single-bit predicate produced by comparisons."""

    def slots(self):
        return 1

    def is_scalar(self):
        return True

    def __repr__(self):
        return "bool"


class VoidType(Type):
    """The absence of a value (only valid as a function return type)."""

    def slots(self):
        return 0

    def __repr__(self):
        return "void"


class ArrayType(Type):
    """Fixed-size homogeneous array; elements may themselves be arrays."""

    def __init__(self, element, count):
        if count < 0:
            raise ValueError(f"array count must be non-negative, got {count}")
        self.element = element
        self.count = count

    def slots(self):
        return self.count * self.element.slots()

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and self.count == other.count
            and self.element == other.element
        )

    def __hash__(self):
        return hash(("array", self.count, self.element))

    def __repr__(self):
        return f"[{self.count} x {self.element!r}]"


class PointerType(Type):
    """Pointer to a value of the pointee type.  Occupies one slot."""

    def __init__(self, pointee):
        self.pointee = pointee

    def slots(self):
        return 1

    def __eq__(self, other):
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __repr__(self):
        return f"{self.pointee!r}*"


# Singleton instances: the scalar types carry no state, so share them.
INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
VOID = VoidType()


def pointer_to(pointee):
    """Convenience constructor mirroring LLVM's ``T*`` spelling."""
    return PointerType(pointee)


def array_of(element, count):
    """Convenience constructor mirroring LLVM's ``[n x T]`` spelling."""
    return ArrayType(element, count)
