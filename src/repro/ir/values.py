"""Value hierarchy for the repro IR.

Everything an instruction can reference as an operand is a :class:`Value`:
constants, function arguments, global variables, and instruction results.
Instruction results are single-assignment temporaries (``%0``, ``%1``, ...);
named source-level variables are *memory* (``alloca``/global) and are only
touched through ``load``/``store``.
"""

from repro.ir.types import BOOL, FLOAT, INT, PointerType


class Value:
    """Base class for anything usable as an instruction operand."""

    def __init__(self, type_, name=None):
        self.type = type_
        self.name = name

    def short(self):
        """Compact printable form used inside instruction operand lists."""
        return self.name if self.name is not None else repr(self)


class Constant(Value):
    """An immediate int/float/bool constant."""

    def __init__(self, type_, value):
        super().__init__(type_)
        self.value = value

    def short(self):
        return repr(self.value)

    def __repr__(self):
        return f"const({self.value!r}: {self.type!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self):
        return hash(("const", self.type, self.value))


def const_int(value):
    return Constant(INT, int(value))


def const_float(value):
    return Constant(FLOAT, float(value))


def const_bool(value):
    return Constant(BOOL, bool(value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_, name, index):
        super().__init__(type_, name)
        self.index = index

    def short(self):
        return f"%{self.name}"

    def __repr__(self):
        return f"arg(%{self.name}: {self.type!r})"


class GlobalVariable(Value):
    """A module-level memory object.

    ``value_type`` is the type of the stored data; the :class:`Value` type of
    the global itself is a pointer to it, exactly like LLVM globals.
    ``initializer`` is either ``None`` (zero-initialized), a scalar Python
    value, or a flat list of scalars covering every slot.
    """

    def __init__(self, name, value_type, initializer=None):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer

    def short(self):
        return f"@{self.name}"

    def __repr__(self):
        return f"global(@{self.name}: {self.value_type!r})"
