"""Structural verification of IR functions and modules.

Checks the invariants every later stage assumes.  Run it after frontend
lowering and after transforms; a verifier failure points at the producer,
not the consumer, which makes pipeline bugs much cheaper to find.
"""

from repro.ir.instructions import (
    Alloca,
    Instruction,
    Terminator,
)
from repro.ir.values import Argument, Constant, GlobalVariable
from repro.util.errors import VerificationError


def verify_function(function, module=None):
    """Raise :class:`VerificationError` on the first violated invariant.

    Invariants checked:

    1. The function has at least one block and every block is terminated.
    2. Terminators appear only in final position.
    3. Branch/jump targets belong to this function.
    4. Every instruction's parent/uid bookkeeping is consistent and uids
       are unique.
    5. Operands are constants, arguments, globals, or instructions of this
       same function that appear *before* their use in block order when in
       the same block (cross-block temporary uses are checked by dominance
       in the analysis layer; here we check same-block ordering which the
       frontend guarantees).
    6. Loop metadata refers to existing blocks and allocas.
    """
    if not function.blocks:
        raise VerificationError(f"@{function.name}: function has no blocks")

    block_set = set(function.blocks)
    seen_uids = set()
    defined = set()

    for block in function.blocks:
        if block.parent is not function:
            raise VerificationError(
                f"@{function.name}: block {block.name} has wrong parent"
            )
        if not block.is_terminated():
            raise VerificationError(
                f"@{function.name}: block {block.name} lacks a terminator"
            )
        for position, inst in enumerate(block.instructions):
            if inst.parent is not block:
                raise VerificationError(
                    f"@{function.name}:{block.name}: instruction "
                    f"{inst.opcode} has wrong parent"
                )
            if inst.uid is None or inst.uid in seen_uids:
                raise VerificationError(
                    f"@{function.name}:{block.name}: duplicate or missing "
                    f"uid on {inst.opcode}"
                )
            seen_uids.add(inst.uid)
            is_last = position == len(block.instructions) - 1
            if isinstance(inst, Terminator) and not is_last:
                raise VerificationError(
                    f"@{function.name}:{block.name}: terminator "
                    f"{inst.opcode} not in final position"
                )
            for target in inst.successors() if isinstance(inst, Terminator) else []:
                if target not in block_set:
                    raise VerificationError(
                        f"@{function.name}:{block.name}: branch to foreign "
                        f"block {target.name}"
                    )
            _check_operands(function, block, inst, defined)
            defined.add(inst)

    _check_loop_info(function)
    if module is not None:
        _check_calls(function, module)


def _check_operands(function, block, inst, defined):
    for op in inst.operands:
        if isinstance(op, (Constant, GlobalVariable)):
            continue
        if isinstance(op, Argument):
            if op not in function.args:
                raise VerificationError(
                    f"@{function.name}:{block.name}: foreign argument "
                    f"%{op.name}"
                )
            continue
        if isinstance(op, Instruction):
            if op not in defined:
                raise VerificationError(
                    f"@{function.name}:{block.name}: {inst.opcode}#{inst.uid} "
                    f"uses %{op.uid} before its definition"
                )
            continue
        raise VerificationError(
            f"@{function.name}:{block.name}: invalid operand kind "
            f"{type(op).__name__}"
        )


def _check_loop_info(function):
    names = {b.name for b in function.blocks}
    for header, loop in function.loop_info.items():
        for field in ("header", "body", "latch", "exit"):
            block_name = getattr(loop, field)
            if block_name not in names:
                raise VerificationError(
                    f"@{function.name}: loop metadata {header!r} names "
                    f"missing block {block_name!r}"
                )
        if not isinstance(loop.induction, Alloca):
            raise VerificationError(
                f"@{function.name}: loop metadata {header!r} induction "
                f"is not an alloca"
            )


def _check_calls(function, module):
    for inst in function.instructions():
        if inst.opcode == "call":
            callee = inst.callee
            if module.functions.get(callee.name) is not callee:
                raise VerificationError(
                    f"@{function.name}: call to @{callee.name} which is "
                    f"not in the module"
                )


def verify_module(module):
    """Verify every function of a module."""
    for function in module.functions.values():
        verify_function(function, module)
