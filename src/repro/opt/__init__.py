"""Optimization passes over (PS-PDG, ProgramPlan): the ``-O`` pipeline.

The paper positions the PS-PDG as a representation *for parallel
optimization*; this package is where the reproduction actually rewrites
plans instead of only reading the graph.  Three passes, all legality-
checked against the sequential PDG:

* :class:`~repro.opt.fusion.RegionFusionPass` — adjacent compatible
  DOALL loops become one dispatched region (one process-pool payload
  instead of several), with their privatization/reduction sets unified;
* :class:`~repro.opt.sync.SyncEliminationPass` — ``critical``/``atomic``
  locks whose guarded objects have no cross-worker dependence at the
  loop level are elided;
* :class:`~repro.opt.serialize.SmallRegionSerializationPass` — regions
  below the machine model's cost thresholds fall back to sequential or
  ``threads`` execution instead of paying process-pool pickling.

The ``-O3`` tier adds three transform passes plus a validation gate:

* :class:`~repro.opt.interchange.LoopInterchangePass` — a serial-outer /
  DOALL-inner nest whose direction vectors are all ``(*, =)`` dispatches
  once, partitioned over the inner space, instead of once per outer
  iteration;
* :class:`~repro.opt.fusion.SkewedRegionFusionPass` — fusion that also
  accepts uniform non-zero dependence distances by shifting the
  partner's partition;
* :class:`~repro.opt.tiling.TilingPass` — the machine model floors
  iterations-per-payload so tiny chunks stop paying dispatch overhead;
* :class:`~repro.opt.speculate.SpeculationValidationPass` — transforms
  applied on an *inconclusive* static test are validated against the
  simulated oracle (and vetoed on any divergence) before a real backend
  ever sees the plan.

Entry point: :func:`optimize_plan`; levels: :class:`OptLevel`.
"""

from repro.opt.context import OptContext
from repro.opt.fusion import RegionFusionPass, SkewedRegionFusionPass
from repro.opt.interchange import LoopInterchangePass
from repro.opt.legality import can_fuse, can_interchange, sync_is_redundant
from repro.opt.levels import OptLevel
from repro.opt.manager import (
    PIPELINES,
    OptimizationResult,
    OptReport,
    PassManager,
    optimize_plan,
    passes_for,
    seed_regions,
)
from repro.opt.serialize import SmallRegionSerializationPass
from repro.opt.speculate import SpeculationValidationPass
from repro.opt.sync import SyncEliminationPass
from repro.opt.tiling import TilingPass

__all__ = [
    "OptContext",
    "OptLevel",
    "OptReport",
    "OptimizationResult",
    "PassManager",
    "PIPELINES",
    "LoopInterchangePass",
    "RegionFusionPass",
    "SkewedRegionFusionPass",
    "SmallRegionSerializationPass",
    "SpeculationValidationPass",
    "SyncEliminationPass",
    "TilingPass",
    "can_fuse",
    "can_interchange",
    "optimize_plan",
    "passes_for",
    "seed_regions",
    "sync_is_redundant",
]
