"""Optimization passes over (PS-PDG, ProgramPlan): the ``-O`` pipeline.

The paper positions the PS-PDG as a representation *for parallel
optimization*; this package is where the reproduction actually rewrites
plans instead of only reading the graph.  Three passes, all legality-
checked against the sequential PDG:

* :class:`~repro.opt.fusion.RegionFusionPass` — adjacent compatible
  DOALL loops become one dispatched region (one process-pool payload
  instead of several), with their privatization/reduction sets unified;
* :class:`~repro.opt.sync.SyncEliminationPass` — ``critical``/``atomic``
  locks whose guarded objects have no cross-worker dependence at the
  loop level are elided;
* :class:`~repro.opt.serialize.SmallRegionSerializationPass` — regions
  below the machine model's cost thresholds fall back to sequential or
  ``threads`` execution instead of paying process-pool pickling.

Entry point: :func:`optimize_plan`; levels: :class:`OptLevel`.
"""

from repro.opt.context import OptContext
from repro.opt.fusion import RegionFusionPass
from repro.opt.legality import can_fuse, sync_is_redundant
from repro.opt.levels import OptLevel
from repro.opt.manager import (
    PIPELINES,
    OptimizationResult,
    OptReport,
    PassManager,
    optimize_plan,
    passes_for,
    seed_regions,
)
from repro.opt.serialize import SmallRegionSerializationPass
from repro.opt.sync import SyncEliminationPass

__all__ = [
    "OptContext",
    "OptLevel",
    "OptReport",
    "OptimizationResult",
    "PassManager",
    "PIPELINES",
    "RegionFusionPass",
    "SmallRegionSerializationPass",
    "SyncEliminationPass",
    "can_fuse",
    "optimize_plan",
    "passes_for",
    "seed_regions",
    "sync_is_redundant",
]
