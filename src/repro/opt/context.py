"""Shared analysis state for one optimization run.

The passes all ask the same questions — which loops are executable, what
recipe would the runtime derive for a loop, which memory dependences does
the *sequential* PDG record on an object — so the context computes each
answer once per :func:`repro.opt.optimize_plan` call and memoizes it.

Legality is deliberately grounded in the sequential PDG's memory edges
(plus the affine subscript analysis those edges were built from): the
PS-PDG tells the planner what *may* run in parallel, but a transform that
rewrites the plan must prove it preserves the sequential semantics, and
the PDG is the representation of exactly those semantics.
"""

from repro.analysis.loops import find_natural_loops
from repro.analysis.subscripts import affine_offset, induction_alloca_map
from repro.ir.instructions import Load, Store
from repro.planner.plans import TECH_DOALL


class OptContext:
    """Analyses shared by the passes of one ``optimize_plan`` call."""

    def __init__(self, function, module, pdg, pspdg, loops, machine,
                 payload_bytes=None, prelude_warm=None,
                 compile_regions=False, compiled_speedup=None):
        self.function = function
        self.module = module
        self.pdg = pdg
        self.pspdg = pspdg
        self.loops = list(loops) if loops is not None else find_natural_loops(
            function
        )
        self.machine = machine
        # Measured bytes-on-wire per region label from a previous run's
        # ``payload_bytes`` stats; feeds the serialization cost term of
        # the small-region pass.  Optional: {} means "no measurements".
        self.payload_bytes = dict(payload_bytes) if payload_bytes else {}
        # Measured resident-prelude hit fraction per region label
        # (``prelude_hits / payloads``): discounts the serialization
        # cost for regions whose shared state stays cached pool-side.
        self.prelude_warm = dict(prelude_warm) if prelude_warm else {}
        # Whether the runtime will execute region bodies through the
        # codegen path: per-step compute is cheaper, so the small-region
        # pass scales its cost estimates by the machine model's
        # ``compiled_speedup``.
        self.compile_regions = bool(compile_regions)
        # Measured compiled-over-interpreted step-rate ratio per region
        # label (``diagnostics.payload_feedback()``); overrides the
        # machine model's ``compiled_speedup`` prior for regions the
        # runtime actually observed in both modes.
        self.compiled_speedup = (
            dict(compiled_speedup) if compiled_speedup else {}
        )
        self.loops_by_header = {
            loop.header.name: loop for loop in self.loops
        }
        self.blocks_by_name = {
            block.name: block for block in function.blocks
        }
        self._iv_map = induction_alloca_map(self.loops)
        self._recipes = {}
        self._analyses = None
        self._accesses_by_loop = {}
        self._memory_edges = None

    # -- runtime recipe derivation (memoized per loop) ------------------------

    @property
    def analyses(self):
        if self._analyses is None:
            from repro.runtime.executor import _RecipeAnalyses

            self._analyses = _RecipeAnalyses(self.function, self.module)
        return self._analyses

    def recipe(self, header_name):
        """The runtime recipe the executor would derive for this loop."""
        if header_name not in self._recipes:
            from repro.runtime.executor import parallelization_from_pspdg

            loop = self.loops_by_header[header_name]
            self._recipes[header_name] = parallelization_from_pspdg(
                self.pspdg, loop, self.module, self.analyses
            )
        return self._recipes[header_name]

    def storage_object(self, storage):
        from repro.runtime.executor import _storage_object

        return _storage_object(self.analyses.alias, storage)

    # -- sequential-PDG dependence queries ------------------------------------

    def memory_edges(self):
        if self._memory_edges is None:
            self._memory_edges = self.pdg.memory_edges()
        return self._memory_edges

    def carried_edges_at(self, loop):
        """PDG memory edges carried at ``loop`` (matched by header name)."""
        header = loop.header.name
        return [
            edge
            for edge in self.memory_edges()
            if any(
                carried.header.name == header
                for carried in edge.carried_loops
            )
        ]

    # -- per-loop memory accesses with affine offsets -------------------------

    def loop_accesses(self, loop):
        """object -> [(instruction, is_write, AffineExpr|None)] in ``loop``."""
        header = loop.header.name
        if header not in self._accesses_by_loop:
            by_object = {}
            for access in self.analyses.accesses:
                if access.instruction.parent not in loop.blocks:
                    continue
                by_object.setdefault(access.obj, []).append(
                    (access.instruction, access.is_write, access.offset)
                )
            self._accesses_by_loop[header] = by_object
        return self._accesses_by_loop[header]

    # -- plan structure --------------------------------------------------------

    def executable_doall_headers(self, plan):
        """Headers the runtime would dispatch, in control-flow order.

        Mirrors the executor's historical selection: canonical-form DOALL
        loops not nested inside another planned canonical DOALL loop.
        """

        def inside_planned_parent(loop):
            parent = loop.parent
            while parent is not None:
                parent_plan = plan.plan_for(parent.header.name)
                if (
                    parent_plan is not None
                    and parent_plan.technique == TECH_DOALL
                    and parent.canonical is not None
                ):
                    return True
                parent = parent.parent
            return False

        headers = []
        for loop in self.loops:  # already in header-block order
            loop_plan = plan.plan_for(loop.header.name)
            if loop_plan is None or loop_plan.technique != TECH_DOALL:
                continue
            if loop.canonical is None or inside_planned_parent(loop):
                continue
            headers.append(loop.header.name)
        return headers

    # -- subscript helpers -----------------------------------------------------

    def affine_offset_of(self, instruction):
        """Affine slot offset of a Load/Store, or None."""
        if isinstance(instruction, (Load, Store)):
            return affine_offset(instruction.pointer, set(self._iv_map))
        return None
