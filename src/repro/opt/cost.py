"""Static cost estimation for parallel regions.

The small-region serialization pass needs to know, before execution,
roughly how much dynamic work one entry of a region performs.  For the
structured loops our frontend produces this is computable exactly when
every bound is a constant: cost(loop) = trip * (instructions in blocks
owned by the loop itself + cost of each directly nested loop).  A loop
with any non-constant bound has unknown trip count and poisons the
estimate (``None``), in which case the serialization pass leaves the
region alone — the safe direction, since serializing a huge region would
cost real parallelism while dispatching a small one only costs overhead.
"""

from repro.ir.values import Constant

#: Trip count assumed for non-canonical inner loops (e.g. ``while``)
#: nested inside a region.  Deliberately conservative-high so an unknown
#: inner loop biases a region toward staying parallel.
DEFAULT_INNER_TRIP = 16


def static_trip_count(loop):
    """Exact iteration count when lower/upper/step are constants, else None."""
    canonical = loop.canonical
    if canonical is None:
        return None
    bounds = (canonical.lower, canonical.upper, canonical.step)
    if not all(isinstance(value, Constant) for value in bounds):
        return None
    lower, upper, step = (value.value for value in bounds)
    if not all(isinstance(value, int) for value in (lower, upper, step)):
        return None
    if step <= 0:
        return None
    return max(0, (upper - lower + step - 1) // step)


def loop_cost(loop):
    """Estimated dynamic instructions per entry of ``loop``.

    Exact for constant-bound canonical nests; inner loops with unknown
    trip counts contribute ``DEFAULT_INNER_TRIP`` iterations each.  A
    *top-level* unknown trip count makes the whole estimate None — the
    serialization threshold must never fire on a loop whose iteration
    space the pass cannot see.
    """
    trip = static_trip_count(loop)
    if trip is None:
        return None
    return trip * _body_cost(loop)


def _body_cost(loop):
    child_blocks = set()
    for child in loop.children:
        child_blocks.update(child.blocks)
    own = sum(
        len(block.instructions)
        for block in loop.blocks
        if block not in child_blocks
    )
    nested = 0
    for child in loop.children:
        trip = static_trip_count(child)
        if trip is None:
            trip = DEFAULT_INNER_TRIP
        nested += trip * _body_cost(child)
    return own + nested


def region_cost(ctx, headers):
    """Summed per-entry cost of a region's member loops (None if unknown)."""
    total = 0
    for header in headers:
        cost = loop_cost(ctx.loops_by_header[header])
        if cost is None:
            return None
        total += cost
    return total
