"""Parallel-region fusion: adjacent compatible DOALL loops, one dispatch.

Greedy left-to-right over the plan's region list (which is in
control-flow order): each region tries to absorb its successor; a merged
region immediately tries to absorb the next one, so a run of k adjacent
compatible loops collapses into a single region in one sweep.  Every
rejected attempt is recorded with the legality predicate's reason — the
negative cases are as load-bearing for the test suite as the positives.
"""

from repro.opt.legality import can_fuse
from repro.planner.plans import RegionDescriptor


class RegionFusionPass:
    name = "region-fusion"

    def run(self, ctx, plan, report):
        regions = list(plan.regions)
        fused = []
        index = 0
        while index < len(regions):
            current = regions[index]
            cursor = index + 1
            while cursor < len(regions):
                candidate = regions[cursor]
                verdict = can_fuse(ctx, current, candidate)
                if not verdict:
                    report.rejected.append(
                        (
                            self.name,
                            current.headers + candidate.headers,
                            verdict.reason,
                        )
                    )
                    break
                current = RegionDescriptor(
                    headers=current.headers + candidate.headers,
                    technique=current.technique,
                    removed_sync_uids=(
                        current.removed_sync_uids
                        | candidate.removed_sync_uids
                    ),
                )
                report.fused.append(current.headers)
                cursor += 1
            fused.append(current)
            index = cursor
        return plan.with_regions(fused)
