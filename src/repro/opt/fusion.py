"""Parallel-region fusion: adjacent compatible DOALL loops, one dispatch.

Greedy left-to-right over the plan's region list (which is in
control-flow order): each region tries to absorb its successor; a merged
region immediately tries to absorb the next one, so a run of k adjacent
compatible loops collapses into a single region in one sweep.  Every
rejected attempt is recorded with the legality predicate's reason — the
negative cases are as load-bearing for the test suite as the positives.

:class:`SkewedRegionFusionPass` (the ``-O3`` variant) additionally
accepts cross-member dependences at a uniform non-zero iv-space
distance: the legality predicate derives the per-member partition shift
that keeps each such dependence worker-local, and the runtime executes
the member's chunks shifted by it.
"""

import dataclasses

from repro.opt.legality import can_fuse


class RegionFusionPass:
    name = "region-fusion"
    #: Accept uniform non-zero dependence distances by shifting the
    #: candidate member's partition (the ``-O3`` subclass flips this).
    skew = False

    def run(self, ctx, plan, report):
        regions = list(plan.regions)
        fused = []
        index = 0
        while index < len(regions):
            current = regions[index]
            cursor = index + 1
            while cursor < len(regions):
                candidate = regions[cursor]
                verdict = can_fuse(ctx, current, candidate, skew=self.skew)
                if not verdict:
                    report.rejected.append(
                        (
                            self.name,
                            current.headers + candidate.headers,
                            verdict.reason,
                        )
                    )
                    break
                shifts = verdict.shifts or ()
                current = dataclasses.replace(
                    current,
                    headers=current.headers + candidate.headers,
                    removed_sync_uids=(
                        current.removed_sync_uids
                        | candidate.removed_sync_uids
                    ),
                    member_shifts=shifts if any(shifts) else (),
                    witness=verdict.witness or current.witness,
                )
                report.fused.append(current.headers)
                if any(shifts):
                    report.skewed.append(
                        (current.headers, current.member_shifts)
                    )
                cursor += 1
            fused.append(current)
            index = cursor
        return plan.with_regions(fused)


class SkewedRegionFusionPass(RegionFusionPass):
    """Region fusion that also fuses across uniform non-zero distances."""

    skew = True
