"""Loop interchange: dispatch a serial-outer / DOALL-inner nest once.

A DOALL loop directly nested in a serial loop today costs one runtime
dispatch — worker frames, partitioning, and on the ``processes`` backend
a wire payload — *per outer iteration*.  When the direction-vector test
proves no dependence is carried by the inner loop under any outer
distance (every vector is ``(*, =)``), the whole nest may instead be
dispatched once: the inner iteration space is partitioned across workers
and each worker runs its slice in outer-major order, preserving the
sequential order of every remaining (outer-carried, same-inner-value)
dependence worker-locally.

The side condition is declared as data on the descriptor: the legality
predicate's witness rides along in ``RegionDescriptor.witness``, and an
*inconclusive* test (non-affine subscript) may still apply the transform
speculatively — flagged via ``RegionDescriptor.speculative`` — for the
oracle-validation pass to confirm or veto before a real backend runs it.
"""

import dataclasses

from repro.opt.cost import static_trip_count
from repro.opt.legality import can_interchange
from repro.planner.plans import TECH_DOALL
from repro.runtime import knobs


class LoopInterchangePass:
    name = "loop-interchange"

    def run(self, ctx, plan, report):
        regions = []
        for region in plan.regions:
            regions.append(
                self._interchanged(ctx, plan, region, report) or region
            )
        return plan.with_regions(regions)

    def _interchanged(self, ctx, plan, region, report):
        if (
            region.fused
            or region.backend_override
            or region.outer_header
            or region.technique != TECH_DOALL
        ):
            return None
        header = region.headers[0]
        inner = ctx.loops_by_header[header]
        outer = inner.parent
        if outer is None or outer.canonical is None:
            return None
        outer_plan = plan.plan_for(outer.header.name)
        if outer_plan is not None and outer_plan.technique == TECH_DOALL:
            return None  # the nest is already outer-parallel
        trip = static_trip_count(outer)
        if trip is None or trip <= 1:
            return None  # no dispatch-count win to be had
        subject = (outer.header.name, header)
        verdict = can_interchange(ctx, outer, inner, ctx.recipe(header))
        if verdict:
            report.interchanged.append(subject)
            return dataclasses.replace(
                region,
                outer_header=outer.header.name,
                witness=verdict.witness,
            )
        if verdict.inconclusive and knobs.REPRO_SPECULATE:
            report.speculated.append((self.name,) + subject)
            return dataclasses.replace(
                region,
                outer_header=outer.header.name,
                speculative=self.name,
                witness=verdict.witness or verdict.reason,
            )
        report.rejected.append((self.name, subject, verdict.reason))
        return None
