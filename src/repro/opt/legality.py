"""Legality predicates for the plan-rewriting passes.

Every transform here must preserve the *sequential* semantics of the
program, so each predicate is grounded in the sequential dependence
analyses (the PDG's memory edges and the affine subscript analysis they
were built from) — the PS-PDG's declared parallel semantics only ever
*enabled* the plan; it cannot justify reordering beyond what it states.

Fusion model: the runtime executes a fused region by giving each worker
the same iteration chunk for every member loop and running the members
back-to-back per worker with no barrier.  That is legal exactly when
every cross-member dependence stays within one worker, i.e. when each
dependence between member loops is *aligned* — source and destination
iterations have the same induction value — and the members share one
iteration space and one partition.  Dependences through storage that is
per-worker anyway (privatized scratch, same-operator reductions) are
also fine.  Everything else — unaligned affine subscripts, indirect
subscripts, scalars written by many iterations, console output — makes
fusion illegal here.
"""

from repro.analysis.alias import CONSOLE
from repro.analysis.loops import loop_of_block
from repro.ir.instructions import Alloca, Jump, Store
from repro.ir.values import Constant
from repro.planner.plans import TECH_DOALL

#: Upper bound on the straight-line block chain between fused loops.
_MAX_INTERLOOP_BLOCKS = 16

_SYNC_KINDS = ("critical", "atomic")


class Legality:
    """Verdict of one predicate: truthy iff the transform is allowed."""

    __slots__ = ("ok", "reason")

    def __init__(self, ok, reason=None):
        self.ok = ok
        self.reason = reason

    def __bool__(self):
        return self.ok

    @classmethod
    def yes(cls):
        return cls(True)

    @classmethod
    def no(cls, reason):
        return cls(False, reason)

    def __repr__(self):
        return f"<Legality {'ok' if self.ok else self.reason!r}>"


# -- parallel-region fusion ------------------------------------------------------


def can_fuse(ctx, region_a, region_b):
    """May ``region_b`` be appended to ``region_a`` as one dispatch?"""
    if region_a.technique != TECH_DOALL or region_b.technique != TECH_DOALL:
        return Legality.no("only DOALL regions fuse")
    if region_a.backend_override or region_b.backend_override:
        return Legality.no("region already rebound to another backend")

    loops_a = [ctx.loops_by_header[h] for h in region_a.headers]
    loops_b = [ctx.loops_by_header[h] for h in region_b.headers]

    verdict = _same_iteration_space(loops_a + loops_b)
    if not verdict:
        return verdict
    verdict = _same_chunk(ctx, region_a.headers + region_b.headers)
    if not verdict:
        return verdict
    verdict = _adjacent(ctx, loops_a[-1], loops_b[0])
    if not verdict:
        return verdict
    return _cross_dependences_aligned(
        ctx, region_a.headers, region_b.headers
    )


def _static_bounds(loop):
    canonical = loop.canonical
    if canonical is None:
        return None
    bounds = (canonical.lower, canonical.upper, canonical.step)
    if not all(isinstance(value, Constant) for value in bounds):
        return None
    return tuple(value.value for value in bounds)


def _same_iteration_space(loops):
    parents = {id(loop.parent) for loop in loops}
    if len(parents) != 1:
        return Legality.no("members nest in different parent loops")
    spaces = [_static_bounds(loop) for loop in loops]
    if any(space is None for space in spaces):
        return Legality.no("member bounds are not compile-time constants")
    if len(set(spaces)) != 1:
        return Legality.no(f"iteration spaces differ: {sorted(set(spaces))}")
    return Legality.yes()


def _same_chunk(ctx, headers):
    chunks = {ctx.recipe(header).chunk for header in headers}
    if len(chunks) != 1:
        return Legality.no(f"chunk sizes differ: {sorted(chunks)}")
    return Legality.yes()


def _adjacent(ctx, loop_a, loop_b):
    """Only trivial glue between A's exit and B's header.

    The fused takeover skips every instruction between the member loops,
    so the chain from A's canonical exit to B's header may contain only
    unconditional jumps plus B's induction-variable materialization (its
    ``alloca`` and the lower-bound seed ``store`` the per-worker frames
    re-do anyway).  Any other instruction, any branch, or any block owned
    by a loop that does not also contain both members breaks adjacency.
    """
    induction_b = loop_b.canonical.induction
    block = ctx.blocks_by_name.get(loop_a.canonical.exit)
    for _ in range(_MAX_INTERLOOP_BLOCKS):
        if block is None:
            return Legality.no("lost the interloop chain")
        if block is loop_b.header:
            return Legality.yes()
        if loop_of_block(ctx.loops, block) is not loop_a.parent:
            return Legality.no(
                f"interloop block {block.name} belongs to another loop"
            )
        for inst in block.instructions[:-1]:
            if isinstance(inst, Alloca) and inst is induction_b:
                continue
            if isinstance(inst, Store) and inst.pointer is induction_b:
                continue
            return Legality.no(
                f"interloop block {block.name} computes #{inst.uid}"
            )
        terminator = block.instructions[-1]
        if not isinstance(terminator, Jump):
            return Legality.no(
                f"interloop block {block.name} branches conditionally"
            )
        block = terminator.target
    return Legality.no("interloop chain too long")


def _reduction_op_for(ctx, recipe, obj):
    for storage, op in recipe.reductions:
        if ctx.storage_object(storage) == obj:
            return op
    return None


def _classify_private(ctx, recipe, obj):
    """How a recipe isolates ``obj`` per worker: 'reduction:<op>',
    'private', or None (shared)."""
    op = _reduction_op_for(ctx, recipe, obj)
    if op is not None:
        return f"reduction:{op}"
    for storage in recipe.privatized:
        if ctx.storage_object(storage) == obj:
            return "private"
    return None


def _member_classification(ctx, headers, obj):
    """Consistent per-worker classification across the members touching
    ``obj``, or ``"shared"``/``"mixed"``."""
    kinds = set()
    for header in headers:
        loop = ctx.loops_by_header[header]
        if obj not in ctx.loop_accesses(loop):
            continue
        kinds.add(_classify_private(ctx, ctx.recipe(header), obj))
    if not kinds:
        return None
    if len(kinds) > 1:
        return "mixed"
    kind = kinds.pop()
    return kind if kind is not None else "shared"


def _induction_objects(ctx, headers):
    objects = set()
    for header in headers:
        loop = ctx.loops_by_header[header]
        objects.add(ctx.storage_object(loop.canonical.induction))
    return objects


def _aligned_pair(ctx, loop_src, offset_src, loop_dst, offset_dst):
    """Same induction value => same slot, different values => different
    slots: offsets affine in exactly the member induction, with equal
    coefficient and constant."""
    if offset_src is None or offset_dst is None:
        return False
    iv_src = loop_src.canonical.induction
    iv_dst = loop_dst.canonical.induction
    if set(offset_src.coefficients) != {iv_src}:
        return False
    if set(offset_dst.coefficients) != {iv_dst}:
        return False
    if offset_src.coefficient(iv_src) != offset_dst.coefficient(iv_dst):
        return False
    if offset_src.coefficient(iv_src) == 0:
        return False
    return offset_src.constant == offset_dst.constant


def _member_of(ctx, headers, instruction):
    for header in headers:
        loop = ctx.loops_by_header[header]
        if instruction.parent in loop.blocks:
            return loop
    return None


def _cross_dependences_aligned(ctx, headers_a, headers_b):
    inductions = _induction_objects(ctx, headers_a + headers_b)
    access_a = {}
    for header in headers_a:
        for obj, entries in ctx.loop_accesses(
            ctx.loops_by_header[header]
        ).items():
            access_a.setdefault(obj, []).extend(entries)
    for header in headers_b:
        access_b = ctx.loop_accesses(ctx.loops_by_header[header])
        for obj, entries_b in access_b.items():
            if obj in inductions:
                continue  # every member privatizes its own induction
            entries_a = access_a.get(obj)
            if not entries_a:
                continue
            if not any(w for _, w, _ in entries_a) and not any(
                w for _, w, _ in entries_b
            ):
                continue  # read-only on both sides
            if obj == CONSOLE:
                return Legality.no("both members print")
            kind = _member_classification(
                ctx, headers_a + headers_b, obj
            )
            if kind in ("mixed",):
                return Legality.no(
                    f"members disagree on privatization of "
                    f"{_object_name(obj)}"
                )
            if kind is not None and kind != "shared":
                continue  # per-worker copies on every member: no flow
            for inst_a, write_a, offset_a in entries_a:
                for inst_b, write_b, offset_b in entries_b:
                    if not (write_a or write_b):
                        continue
                    loop_a = _member_of(ctx, headers_a, inst_a)
                    loop_b = _member_of(ctx, headers_b, inst_b)
                    if not _aligned_pair(
                        ctx, loop_a, offset_a, loop_b, offset_b
                    ):
                        return Legality.no(
                            f"unaligned dependence on "
                            f"{_object_name(obj)} "
                            f"(#{inst_a.uid} vs #{inst_b.uid})"
                        )
    return Legality.yes()


def _object_name(obj):
    return getattr(obj, "display_name", None) or repr(obj)


# -- redundant-synchronization elimination ---------------------------------------


def sync_annotations_in(ctx, loop):
    """(annotation, guarded block-name set) for criticals/atomics whose
    region intersects ``loop``."""
    loop_blocks = {block.name for block in loop.blocks}
    found = []
    for annotation in ctx.function.annotations:
        if annotation.directive.kind not in _SYNC_KINDS:
            continue
        guarded = set(annotation.block_names) & loop_blocks
        if guarded:
            found.append((annotation, guarded))
    return found


def sync_is_redundant(ctx, loop, recipe, annotation, guarded_blocks):
    """May this critical/atomic's lock be elided for this loop's region?

    Redundant iff every object the guarded instructions touch either has
    a per-worker copy in the recipe (privatized / firstprivate /
    lastprivate / reduction storage, or a member induction variable) or
    carries no sequential-PDG memory dependence at ``loop`` — no
    cross-iteration conflict means no cross-worker conflict for a DOALL
    partition, so mutual exclusion guards nothing.
    """
    guarded_instructions = set()
    for name in guarded_blocks:
        block = ctx.blocks_by_name.get(name)
        if block is not None:
            guarded_instructions.update(block.instructions)

    private_objects = {ctx.storage_object(loop.canonical.induction)}
    for storage in (
        list(recipe.privatized)
        + list(recipe.firstprivate)
        + list(recipe.lastprivate)
        + [storage for storage, _op in recipe.reductions]
    ):
        private_objects.add(ctx.storage_object(storage))

    guarded_objects = {
        access.obj
        for access in ctx.analyses.accesses
        if access.instruction in guarded_instructions
    }
    for obj in guarded_objects - private_objects:
        if obj == CONSOLE:
            return Legality.no("guarded code prints")
        for edge in ctx.carried_edges_at(loop):
            if edge.obj == obj:
                return Legality.no(
                    f"{_object_name(obj)} carries "
                    f"#{edge.source.uid}->#{edge.destination.uid} "
                    f"at {loop.header.name}"
                )
    return Legality.yes()
