"""Legality predicates for the plan-rewriting passes.

Every transform here must preserve the *sequential* semantics of the
program, so each predicate is grounded in the sequential dependence
analyses (the PDG's memory edges and the affine subscript analysis they
were built from) — the PS-PDG's declared parallel semantics only ever
*enabled* the plan; it cannot justify reordering beyond what it states.

Fusion model: the runtime executes a fused region by giving each worker
the same iteration chunk for every member loop and running the members
back-to-back per worker with no barrier.  That is legal exactly when
every cross-member dependence stays within one worker, i.e. when each
dependence between member loops is *aligned* — source and destination
iterations have the same induction value — and the members share one
iteration space and one partition.  Dependences through storage that is
per-worker anyway (privatized scratch, same-operator reductions) are
also fine.  Everything else — unaligned affine subscripts, indirect
subscripts, scalars written by many iterations, console output — makes
fusion illegal here.
"""

from repro.analysis.alias import CONSOLE, AllocaObject
from repro.analysis.deptests import test_level
from repro.analysis.loops import loop_of_block
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Cast,
    Compare,
    Instruction,
    Jump,
    Load,
    Store,
    UnaryOp,
)
from repro.ir.values import Constant
from repro.opt.cost import static_trip_count
from repro.planner.plans import TECH_DOALL

#: Upper bound on the straight-line block chain between fused loops.
_MAX_INTERLOOP_BLOCKS = 16

_SYNC_KINDS = ("critical", "atomic")


class Legality:
    """Verdict of one predicate: truthy iff the transform is allowed.

    ``witness`` is the predicate's evidence — the dependence pair (or
    distance) that decided the verdict — stored on the rewritten
    descriptor so reports and tests can audit the side condition.
    ``inconclusive`` marks a *maybe*: the static test could neither
    prove nor refute legality (non-affine subscript, unbounded range).
    A speculative pass may apply the transform anyway and must then
    validate the plan against the simulated oracle.  ``shifts`` carries
    the per-member partition shifts skew-enabled fusion derived.
    """

    __slots__ = ("ok", "reason", "witness", "inconclusive", "shifts")

    def __init__(self, ok, reason=None, witness=None, inconclusive=False,
                 shifts=None):
        self.ok = ok
        self.reason = reason
        self.witness = witness
        self.inconclusive = inconclusive
        self.shifts = shifts

    def __bool__(self):
        return self.ok

    @classmethod
    def yes(cls, witness=None, shifts=None):
        return cls(True, witness=witness, shifts=shifts)

    @classmethod
    def no(cls, reason, witness=None):
        return cls(False, reason, witness=witness)

    @classmethod
    def maybe(cls, reason, witness=None):
        """Inconclusive: not proven legal, not proven illegal."""
        return cls(False, reason, witness=witness, inconclusive=True)

    def __repr__(self):
        if self.ok:
            return "<Legality ok>"
        state = "maybe" if self.inconclusive else "no"
        return f"<Legality {state} {self.reason!r}>"


# -- parallel-region fusion ------------------------------------------------------


def can_fuse(ctx, region_a, region_b, skew=False):
    """May ``region_b`` be appended to ``region_a`` as one dispatch?

    With ``skew`` the alignment requirement relaxes: a cross-member
    dependence at a uniform non-zero iv-space distance ``d`` is accepted
    by shifting ``region_b``'s partition so source and destination land
    on one worker.  The verdict's ``shifts`` then carries the merged
    region's per-member shifts.
    """
    if region_a.technique != TECH_DOALL or region_b.technique != TECH_DOALL:
        return Legality.no("only DOALL regions fuse")
    if region_a.backend_override or region_b.backend_override:
        return Legality.no("region already rebound to another backend")
    if region_a.outer_header or region_b.outer_header:
        return Legality.no("interchanged nest regions do not fuse")

    loops_a = [ctx.loops_by_header[h] for h in region_a.headers]
    loops_b = [ctx.loops_by_header[h] for h in region_b.headers]

    verdict = _same_iteration_space(loops_a + loops_b)
    if not verdict:
        return verdict
    verdict = _same_chunk(ctx, region_a.headers + region_b.headers)
    if not verdict:
        return verdict
    verdict = _adjacent(ctx, loops_a[-1], loops_b[0])
    if not verdict:
        return verdict
    return _cross_dependences_aligned(
        ctx, region_a.headers, region_b.headers,
        shifts_a=region_a.member_shifts or None, skew=skew,
    )


def _static_bounds(loop):
    canonical = loop.canonical
    if canonical is None:
        return None
    bounds = (canonical.lower, canonical.upper, canonical.step)
    if not all(isinstance(value, Constant) for value in bounds):
        return None
    return tuple(value.value for value in bounds)


def _same_iteration_space(loops):
    parents = {id(loop.parent) for loop in loops}
    if len(parents) != 1:
        return Legality.no("members nest in different parent loops")
    spaces = [_static_bounds(loop) for loop in loops]
    if any(space is None for space in spaces):
        return Legality.no("member bounds are not compile-time constants")
    if len(set(spaces)) != 1:
        return Legality.no(f"iteration spaces differ: {sorted(set(spaces))}")
    return Legality.yes()


def _same_chunk(ctx, headers):
    chunks = {ctx.recipe(header).chunk for header in headers}
    if len(chunks) != 1:
        return Legality.no(f"chunk sizes differ: {sorted(chunks)}")
    return Legality.yes()


def _adjacent(ctx, loop_a, loop_b):
    """Only trivial glue between A's exit and B's header.

    The fused takeover skips every instruction between the member loops,
    so the chain from A's canonical exit to B's header may contain only
    unconditional jumps plus B's induction-variable materialization (its
    ``alloca`` and the lower-bound seed ``store`` the per-worker frames
    re-do anyway).  Any other instruction, any branch, or any block owned
    by a loop that does not also contain both members breaks adjacency.
    """
    induction_b = loop_b.canonical.induction
    block = ctx.blocks_by_name.get(loop_a.canonical.exit)
    for _ in range(_MAX_INTERLOOP_BLOCKS):
        if block is None:
            return Legality.no("lost the interloop chain")
        if block is loop_b.header:
            return Legality.yes()
        if loop_of_block(ctx.loops, block) is not loop_a.parent:
            return Legality.no(
                f"interloop block {block.name} belongs to another loop"
            )
        for inst in block.instructions[:-1]:
            if isinstance(inst, Alloca) and inst is induction_b:
                continue
            if isinstance(inst, Store) and inst.pointer is induction_b:
                continue
            return Legality.no(
                f"interloop block {block.name} computes #{inst.uid}"
            )
        terminator = block.instructions[-1]
        if not isinstance(terminator, Jump):
            return Legality.no(
                f"interloop block {block.name} branches conditionally"
            )
        block = terminator.target
    return Legality.no("interloop chain too long")


def _reduction_op_for(ctx, recipe, obj):
    for storage, op in recipe.reductions:
        if ctx.storage_object(storage) == obj:
            return op
    return None


def _classify_private(ctx, recipe, obj):
    """How a recipe isolates ``obj`` per worker: 'reduction:<op>',
    'private', or None (shared)."""
    op = _reduction_op_for(ctx, recipe, obj)
    if op is not None:
        return f"reduction:{op}"
    for storage in recipe.privatized:
        if ctx.storage_object(storage) == obj:
            return "private"
    return None


def _member_classification(ctx, headers, obj):
    """Consistent per-worker classification across the members touching
    ``obj``, or ``"shared"``/``"mixed"``."""
    kinds = set()
    for header in headers:
        loop = ctx.loops_by_header[header]
        if obj not in ctx.loop_accesses(loop):
            continue
        kinds.add(_classify_private(ctx, ctx.recipe(header), obj))
    if not kinds:
        return None
    if len(kinds) > 1:
        return "mixed"
    kind = kinds.pop()
    return kind if kind is not None else "shared"


def _induction_objects(ctx, headers):
    objects = set()
    for header in headers:
        loop = ctx.loops_by_header[header]
        objects.add(ctx.storage_object(loop.canonical.induction))
    return objects


#: ``_pair_shift`` result for slot sets that can never collide.
_DISJOINT = object()


def _pair_shift(loop_src, offset_src, loop_dst, offset_dst):
    """Relative partition shift keeping this dependence on one worker.

    Offsets must be affine in exactly their own member induction with
    one shared non-zero coefficient ``a``; then dst iteration ``j``
    touches the slot src iteration ``i = j + (c_dst - c_src) / a``
    touched, so assigning dst values from the base chunk shifted by
    ``S_dst = S_src + (c_dst - c_src) / a`` keeps the pair worker-local.
    Returns that relative shift (an int; 0 is classic alignment),
    ``_DISJOINT`` when the slot sets cannot intersect, or ``None`` when
    the subscripts are outside this form entirely.
    """
    if offset_src is None or offset_dst is None:
        return None
    iv_src = loop_src.canonical.induction
    iv_dst = loop_dst.canonical.induction
    if set(offset_src.coefficients) != {iv_src}:
        return None
    if set(offset_dst.coefficients) != {iv_dst}:
        return None
    a = offset_src.coefficient(iv_src)
    if a == 0 or a != offset_dst.coefficient(iv_dst):
        return None
    delta = offset_dst.constant - offset_src.constant
    if delta % a != 0:
        return _DISJOINT
    return delta // a


def _member_of(ctx, headers, instruction):
    for header in headers:
        loop = ctx.loops_by_header[header]
        if instruction.parent in loop.blocks:
            return loop
    return None


def _cross_dependences_aligned(ctx, headers_a, headers_b, shifts_a=None,
                               skew=False):
    """Every cross-member dependence must stay worker-local.

    Without ``skew`` that means classic alignment (relative shift 0
    everywhere).  With ``skew``, all write-involving cross pairs must
    agree on one relative shift for the candidate member; the verdict's
    ``shifts`` is then the merged region's per-member shift tuple.
    """
    if shifts_a is None:
        shifts_a = (0,) * len(headers_a)
    shift_of = dict(zip(headers_a, shifts_a))
    if skew and len(headers_b) != 1:
        skew = False  # only single-member candidates can be re-shifted
    required = None  # agreed absolute shift for the candidate member
    witness = None
    inductions = _induction_objects(ctx, headers_a + headers_b)
    access_a = {}
    inst_header_a = {}
    for header in headers_a:
        for obj, entries in ctx.loop_accesses(
            ctx.loops_by_header[header]
        ).items():
            access_a.setdefault(obj, []).extend(entries)
            for inst, _write, _offset in entries:
                inst_header_a[inst] = header
    for header in headers_b:
        access_b = ctx.loop_accesses(ctx.loops_by_header[header])
        for obj, entries_b in access_b.items():
            if obj in inductions:
                continue  # every member privatizes its own induction
            entries_a = access_a.get(obj)
            if not entries_a:
                continue
            if not any(w for _, w, _ in entries_a) and not any(
                w for _, w, _ in entries_b
            ):
                continue  # read-only on both sides
            if obj == CONSOLE:
                return Legality.no("both members print")
            kind = _member_classification(
                ctx, headers_a + headers_b, obj
            )
            if kind in ("mixed",):
                return Legality.no(
                    f"members disagree on privatization of "
                    f"{_object_name(obj)}"
                )
            if kind is not None and kind != "shared":
                continue  # per-worker copies on every member: no flow
            for inst_a, write_a, offset_a in entries_a:
                for inst_b, write_b, offset_b in entries_b:
                    if not (write_a or write_b):
                        continue
                    loop_a = _member_of(ctx, headers_a, inst_a)
                    loop_b = _member_of(ctx, headers_b, inst_b)
                    relative = _pair_shift(
                        loop_a, offset_a, loop_b, offset_b
                    )
                    if relative is _DISJOINT:
                        continue
                    if relative is None or (not skew and relative != 0):
                        return Legality.no(
                            f"unaligned dependence on "
                            f"{_object_name(obj)} "
                            f"(#{inst_a.uid} vs #{inst_b.uid})"
                        )
                    absolute = (
                        shift_of[inst_header_a[inst_a]] + relative
                    )
                    if required is None:
                        required = absolute
                        witness = (
                            f"distance {relative} on "
                            f"{_object_name(obj)} "
                            f"(#{inst_a.uid} vs #{inst_b.uid})"
                        )
                    elif required != absolute:
                        return Legality.no(
                            f"non-uniform dependence distances on "
                            f"{_object_name(obj)}: shift {absolute} "
                            f"vs {required} "
                            f"(#{inst_a.uid} vs #{inst_b.uid})"
                        )
    shifts = tuple(shifts_a) + (required or 0,) * len(headers_b)
    return Legality.yes(witness=witness, shifts=shifts)


def _object_name(obj):
    return getattr(obj, "display_name", None) or repr(obj)


# -- loop interchange -------------------------------------------------------------

#: Pure register-level glue the nest dispatch may skip (their only
#: effects are loop bookkeeping the workers redo per pair).
_PURE_GLUE = (BinaryOp, UnaryOp, Compare, Cast, Jump, Branch)


def can_interchange(ctx, outer, inner, recipe):
    """May the serial ``outer`` / DOALL ``inner`` nest run inner-partitioned?

    The runtime executes an interchanged nest by partitioning the
    *inner* iteration space across workers once and running each
    worker's slice in outer-major order — so two iterations with
    different inner values may land on different workers under *any*
    pair of outer values.  Legal exactly when the direction-vector test
    proves no dependence is carried by the inner loop for any outer
    distance (direction ``(*, <)`` or ``(*, >)`` must be empty); pairs
    the test cannot decide (non-affine subscripts) yield an
    *inconclusive* verdict the speculative mode may act on.
    """
    if outer.canonical is None or inner.canonical is None:
        return Legality.no("nest loops are not in canonical form")
    if inner.parent is not outer:
        return Legality.no("DOALL loop is not an immediate child")
    if len(outer.children) != 1:
        return Legality.no("outer loop carries siblings of the DOALL loop")
    if static_trip_count(outer) is None or static_trip_count(inner) is None:
        return Legality.no("nest bounds are not compile-time constants")

    from repro.ir.instructions import Call, Print

    for inst in outer.instructions():
        if isinstance(inst, (Call, Print)):
            return Legality.no(
                f"nest contains {inst.opcode} #{inst.uid}"
            )

    verdict = _nest_glue_is_pure(outer, inner)
    if not verdict:
        return verdict
    verdict = _inner_body_is_self_contained(outer, inner)
    if not verdict:
        return verdict
    return _nest_dependences_inner_independent(ctx, outer, inner, recipe)


def _nest_glue_is_pure(outer, inner):
    """Only loop bookkeeping between the outer header and the inner loop.

    The nest dispatch never executes the glue blocks (workers assign
    both induction storages directly per pair), so everything the outer
    loop owns outside the inner loop must be: the induction allocas,
    loads/stores of those inductions, pure register arithmetic, and
    (conditional) jumps.  Any other memory access, call, or print is a
    side effect the transformed schedule would drop.
    """
    inner_blocks = set(inner.blocks)
    inductions = {outer.canonical.induction, inner.canonical.induction}
    for block in outer.blocks:
        if block in inner_blocks:
            continue
        for inst in block.instructions:
            if isinstance(inst, Alloca) and inst in inductions:
                continue
            if isinstance(inst, Load) and inst.pointer in inductions:
                continue
            if isinstance(inst, Store) and inst.pointer in inductions:
                continue
            if isinstance(inst, _PURE_GLUE):
                continue
            return Legality.no(
                f"nest glue computes #{inst.uid} ({inst.opcode})"
            )
    return Legality.yes()


def _inner_body_is_self_contained(outer, inner):
    """No register flows from the (skipped) glue into the inner body."""
    inner_instructions = set()
    for block in inner.blocks:
        inner_instructions.update(block.instructions)
    outer_instructions = set()
    for block in outer.blocks:
        outer_instructions.update(block.instructions)
    glue = outer_instructions - inner_instructions
    inductions = {outer.canonical.induction, inner.canonical.induction}
    for inst in inner_instructions:
        for operand in inst.operands:
            if operand in inductions:
                continue  # rebound per pair by the nest dispatch
            if isinstance(operand, Instruction) and operand in glue:
                return Legality.no(
                    f"inner body consumes glue register %{operand.uid}"
                )
    return Legality.yes()


def _nest_dependences_inner_independent(ctx, outer, inner, recipe):
    inner_ivs = {
        alloca: loop
        for alloca, loop in ctx._iv_map.items()
        if loop is not inner
    }
    skip_objects = {
        ctx.storage_object(outer.canonical.induction),
        ctx.storage_object(inner.canonical.induction),
    }
    for storage in (
        list(recipe.privatized) + [s for s, _op in recipe.reductions]
    ):
        skip_objects.add(ctx.storage_object(storage))
    if recipe.firstprivate or recipe.lastprivate:
        # Their per-dispatch seed/writeback encodes a flow between
        # consecutive outer iterations; one nest-wide dispatch loses it.
        return Legality.no(
            "inner recipe carries first/lastprivate state across "
            "outer iterations"
        )

    pending = None
    checked = 0
    inner_blocks = set(inner.blocks)
    for obj, entries in ctx.loop_accesses(outer).items():
        if obj in skip_objects:
            continue
        if (isinstance(obj, AllocaObject)
                and obj.alloca.parent in inner_blocks):
            # Allocated inside the inner body: every iteration executes
            # the alloca and gets fresh storage, so no value can flow
            # between iterations through it on any schedule.
            continue
        if not any(write for _, write, _ in entries):
            continue
        if obj == CONSOLE:
            return Legality.no("nest prints")
        for index, (inst_a, write_a, offset_a) in enumerate(entries):
            for inst_b, write_b, offset_b in entries[index:]:
                if not (write_a or write_b):
                    continue
                pair = (
                    f"#{inst_a.uid} vs #{inst_b.uid} on "
                    f"{_object_name(obj)}"
                )
                if offset_a is None or offset_b is None:
                    pending = pending or Legality.maybe(
                        f"non-affine subscript leaves {pair} undecided",
                        witness=pair,
                    )
                    continue
                dep = test_level(offset_a, offset_b, inner, inner_ivs)
                if dep.carried_forward or dep.carried_backward:
                    if dep.exact:
                        return Legality.no(
                            f"dependence carried by "
                            f"{inner.header.name} across the nest "
                            f"({pair})",
                            witness=pair,
                        )
                    pending = pending or Legality.maybe(
                        f"direction-vector test undecided for {pair}",
                        witness=pair,
                    )
                elif not dep.exact:
                    pending = pending or Legality.maybe(
                        f"conservative fallback for {pair}",
                        witness=pair,
                    )
                else:
                    checked += 1
    if pending is not None:
        return pending
    return Legality.yes(
        witness=(
            f"direction vectors (*, =) only across {checked} "
            f"write-involving pairs"
        )
    )


# -- redundant-synchronization elimination ---------------------------------------


def sync_annotations_in(ctx, loop):
    """(annotation, guarded block-name set) for criticals/atomics whose
    region intersects ``loop``."""
    loop_blocks = {block.name for block in loop.blocks}
    found = []
    for annotation in ctx.function.annotations:
        if annotation.directive.kind not in _SYNC_KINDS:
            continue
        guarded = set(annotation.block_names) & loop_blocks
        if guarded:
            found.append((annotation, guarded))
    return found


def sync_is_redundant(ctx, loop, recipe, annotation, guarded_blocks):
    """May this critical/atomic's lock be elided for this loop's region?

    Redundant iff every object the guarded instructions touch either has
    a per-worker copy in the recipe (privatized / firstprivate /
    lastprivate / reduction storage, or a member induction variable) or
    carries no sequential-PDG memory dependence at ``loop`` — no
    cross-iteration conflict means no cross-worker conflict for a DOALL
    partition, so mutual exclusion guards nothing.
    """
    guarded_instructions = set()
    for name in guarded_blocks:
        block = ctx.blocks_by_name.get(name)
        if block is not None:
            guarded_instructions.update(block.instructions)

    private_objects = {ctx.storage_object(loop.canonical.induction)}
    for storage in (
        list(recipe.privatized)
        + list(recipe.firstprivate)
        + list(recipe.lastprivate)
        + [storage for storage, _op in recipe.reductions]
    ):
        private_objects.add(ctx.storage_object(storage))

    guarded_objects = {
        access.obj
        for access in ctx.analyses.accesses
        if access.instruction in guarded_instructions
    }
    for obj in guarded_objects - private_objects:
        if obj == CONSOLE:
            return Legality.no("guarded code prints")
        for edge in ctx.carried_edges_at(loop):
            if edge.obj == obj:
                return Legality.no(
                    f"{_object_name(obj)} carries "
                    f"#{edge.source.uid}->#{edge.destination.uid} "
                    f"at {loop.header.name}"
                )
    return Legality.yes()
