"""Optimization levels: which passes run over a chosen plan.

Kept free of heavy imports so :mod:`repro.pipeline.config` can embed an
:class:`OptLevel` in the frozen session configuration (and therefore in
every downstream cache key) without dragging the pass implementations —
and their analysis dependencies — into config construction.
"""

import enum


class OptLevel(enum.IntEnum):
    """``-O0`` (no transforms) / ``-O1`` (local: sync elimination +
    small-region serialization) / ``-O2`` (``-O1`` + parallel-region
    fusion) / ``-O3`` (``-O2`` + loop interchange, skewed fusion, and
    machine-model tiling, with oracle-validated speculation)."""

    O0 = 0
    O1 = 1
    O2 = 2
    O3 = 3

    @classmethod
    def coerce(cls, value):
        """An :class:`OptLevel` from 2, "2", "O2", "-O2", or an OptLevel."""
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise ValueError(f"not an optimization level: {value!r}")
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, str):
            text = value.strip().lstrip("-")
            if text.upper().startswith("O"):
                text = text[1:]
            if text.isdigit():
                return cls(int(text))
            raise ValueError(f"not an optimization level: {value!r}")
        raise ValueError(f"not an optimization level: {value!r}")

    @property
    def flag(self):
        return f"-O{int(self)}"

    def __repr__(self):  # stable across python versions, cache-key safe
        return f"OptLevel.{self.name}"
