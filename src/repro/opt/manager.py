"""The pass manager: ``-O`` levels over (PS-PDG, ProgramPlan).

``optimize_plan`` is the single entry point: it seeds the plan's region
descriptors (one per executable DOALL loop — byte-for-byte the runtime's
historical dispatch set, so ``-O0`` is exactly the legacy behavior),
then runs the level's pass pipeline, each pass rewriting the region list
under the legality predicates of :mod:`repro.opt.legality`.  The result
carries both the rewritten plan and an :class:`OptReport` the CLI's
``report`` subcommand and the test suite consume.
"""

import dataclasses

from repro.opt.context import OptContext
from repro.opt.fusion import RegionFusionPass
from repro.opt.levels import OptLevel
from repro.opt.serialize import SmallRegionSerializationPass
from repro.opt.sync import SyncEliminationPass
from repro.planner.machine import DEFAULT_MACHINE
from repro.planner.plans import RegionDescriptor


@dataclasses.dataclass
class OptReport:
    """What the pipeline did (and refused to do) to one plan."""

    level: OptLevel
    plan_name: str
    fused: list = dataclasses.field(default_factory=list)
    syncs_removed: list = dataclasses.field(default_factory=list)
    serialized: list = dataclasses.field(default_factory=list)
    rejected: list = dataclasses.field(default_factory=list)

    def summary(self):
        return {
            "fused": len(self.fused),
            "syncs_removed": len(self.syncs_removed),
            "serialized": len(self.serialized),
        }

    def rejections_for(self, pass_name):
        return [entry for entry in self.rejected if entry[0] == pass_name]

    def describe(self):
        lines = [f"{self.level.flag} optimization of plan {self.plan_name!r}:"]
        for headers in self.fused:
            lines.append(f"  fused      {'+'.join(headers)}")
        for header, kind, uid in self.syncs_removed:
            lines.append(f"  sync-drop  {kind} @{header} (annotation {uid})")
        for label, cost, override in self.serialized:
            lines.append(f"  serialize  {label} cost={cost} -> {override}")
        for pass_name, subject, reason in self.rejected:
            lines.append(f"  rejected   [{pass_name}] {subject}: {reason}")
        if len(lines) == 1:
            lines.append("  (no transforms applied)")
        return "\n".join(lines)


class PassManager:
    """Runs a pass pipeline over one plan within one context."""

    def __init__(self, passes):
        self.passes = tuple(passes)

    def run(self, ctx, plan, report):
        for pass_ in self.passes:
            plan = pass_.run(ctx, plan, report)
        return plan


#: Pass pipeline per level.  O1 is the "local" tier (nothing moves code
#: across loops); O2 adds region fusion.  Fusion runs first so merged
#: regions are costed — and kept parallel — as wholes.
PIPELINES = {
    OptLevel.O0: (),
    OptLevel.O1: (SyncEliminationPass, SmallRegionSerializationPass),
    OptLevel.O2: (
        RegionFusionPass,
        SyncEliminationPass,
        SmallRegionSerializationPass,
    ),
}


def passes_for(level):
    return tuple(pass_cls() for pass_cls in PIPELINES[OptLevel.coerce(level)])


def seed_regions(ctx, plan):
    """One single-loop descriptor per executable DOALL loop (CFG order)."""
    return plan.with_regions(
        RegionDescriptor(headers=(header,))
        for header in ctx.executable_doall_headers(plan)
    )


@dataclasses.dataclass
class OptimizationResult:
    """An optimized plan plus the report of how it got that way."""

    plan: object
    report: OptReport
    level: OptLevel


def optimize_plan(
    function, module, pdg, pspdg, plan, level, machine=None, loops=None,
    payload_bytes=None, prelude_warm=None, compile_regions=False,
    compiled_speedup=None,
):
    """Run the ``level`` pipeline over ``plan``; never mutates the input.

    ``payload_bytes`` optionally maps region labels to measured
    bytes-on-wire from a previous run (the runtime's ``payload_bytes``
    stat); the small-region serialization pass folds it into the
    machine model's dispatch-cost bar.  ``prelude_warm`` maps the same
    labels to measured resident-prelude hit fractions, discounting the
    bar for regions whose shared state the pool already holds.
    ``compiled_speedup`` maps the same labels to measured compiled-over-
    interpreted step-rate ratios, replacing the machine model's assumed
    ``compiled_speedup`` prior per region
    (``diagnostics.payload_feedback()`` produces all three).
    """
    level = OptLevel.coerce(level)
    machine = machine if machine is not None else DEFAULT_MACHINE
    ctx = OptContext(function, module, pdg, pspdg, loops, machine,
                     payload_bytes=payload_bytes,
                     prelude_warm=prelude_warm,
                     compile_regions=compile_regions,
                     compiled_speedup=compiled_speedup)
    report = OptReport(level=level, plan_name=plan.name)
    seeded = seed_regions(ctx, plan)
    optimized = PassManager(passes_for(level)).run(ctx, seeded, report)
    return OptimizationResult(plan=optimized, report=report, level=level)
