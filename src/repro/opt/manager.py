"""The pass manager: ``-O`` levels over (PS-PDG, ProgramPlan).

``optimize_plan`` is the single entry point: it seeds the plan's region
descriptors (one per executable DOALL loop — byte-for-byte the runtime's
historical dispatch set, so ``-O0`` is exactly the legacy behavior),
then runs the level's pass pipeline, each pass rewriting the region list
under the legality predicates of :mod:`repro.opt.legality`.  The result
carries both the rewritten plan and an :class:`OptReport` the CLI's
``report`` subcommand and the test suite consume.
"""

import dataclasses
import time

from repro.opt.context import OptContext
from repro.opt.fusion import RegionFusionPass, SkewedRegionFusionPass
from repro.opt.interchange import LoopInterchangePass
from repro.opt.levels import OptLevel
from repro.opt.serialize import SmallRegionSerializationPass
from repro.opt.speculate import SpeculationValidationPass
from repro.opt.sync import SyncEliminationPass
from repro.opt.tiling import TilingPass
from repro.planner.machine import DEFAULT_MACHINE
from repro.planner.plans import RegionDescriptor


@dataclasses.dataclass
class OptReport:
    """What the pipeline did (and refused to do) to one plan."""

    level: OptLevel
    plan_name: str
    fused: list = dataclasses.field(default_factory=list)
    syncs_removed: list = dataclasses.field(default_factory=list)
    serialized: list = dataclasses.field(default_factory=list)
    rejected: list = dataclasses.field(default_factory=list)
    interchanged: list = dataclasses.field(default_factory=list)
    skewed: list = dataclasses.field(default_factory=list)
    tiled: list = dataclasses.field(default_factory=list)
    speculated: list = dataclasses.field(default_factory=list)
    validated: list = dataclasses.field(default_factory=list)
    vetoed: list = dataclasses.field(default_factory=list)
    #: pass name -> wall-clock seconds spent in its ``run``.
    pass_seconds: dict = dataclasses.field(default_factory=dict)

    def summary(self):
        return {
            "fused": len(self.fused),
            "syncs_removed": len(self.syncs_removed),
            "serialized": len(self.serialized),
            "interchanged": len(self.interchanged),
            "skewed": len(self.skewed),
            "tiled": len(self.tiled),
            "speculated": len(self.speculated),
            "vetoed": len(self.vetoed),
        }

    def rejections_for(self, pass_name):
        return [entry for entry in self.rejected if entry[0] == pass_name]

    def rejection_counts(self):
        """pass name -> number of recorded rejections (0 for clean runs)."""
        counts = {name: 0 for name in self.pass_seconds}
        for pass_name, _subject, _reason in self.rejected:
            counts[pass_name] = counts.get(pass_name, 0) + 1
        return counts

    def describe(self):
        lines = [f"{self.level.flag} optimization of plan {self.plan_name!r}:"]
        for outer, inner in self.interchanged:
            lines.append(f"  interchange {outer}/{inner}")
        for headers, shifts in self.skewed:
            lines.append(
                f"  skew-fuse  {'+'.join(headers)} "
                f"shifts={','.join(str(s) for s in shifts)}"
            )
        for headers in self.fused:
            lines.append(f"  fused      {'+'.join(headers)}")
        for header, kind, uid in self.syncs_removed:
            lines.append(f"  sync-drop  {kind} @{header} (annotation {uid})")
        for label, cost, override in self.serialized:
            lines.append(f"  serialize  {label} cost={cost} -> {override}")
        for label, tile in self.tiled:
            lines.append(f"  tile       {label} tile={tile}")
        for pass_name, outer, inner in self.speculated:
            lines.append(f"  speculate  [{pass_name}] {outer}/{inner}")
        for label, pass_name in self.validated:
            lines.append(f"  validated  {label} ({pass_name}, oracle agreed)")
        for pass_name, label, reason in self.vetoed:
            lines.append(f"  vetoed     [{pass_name}] {label}: {reason}")
        for pass_name, subject, reason in self.rejected:
            lines.append(f"  rejected   [{pass_name}] {subject}: {reason}")
        if len(lines) == 1:
            lines.append("  (no transforms applied)")
        return "\n".join(lines)


class PassManager:
    """Runs a pass pipeline over one plan within one context."""

    def __init__(self, passes):
        self.passes = tuple(passes)

    def run(self, ctx, plan, report):
        for pass_ in self.passes:
            start = time.perf_counter()
            plan = pass_.run(ctx, plan, report)
            elapsed = time.perf_counter() - start
            report.pass_seconds[pass_.name] = (
                report.pass_seconds.get(pass_.name, 0.0) + elapsed
            )
        return plan


#: Pass pipeline per level.  O1 is the "local" tier (nothing moves code
#: across loops); O2 adds region fusion.  Fusion runs first so merged
#: regions are costed — and kept parallel — as wholes.  O3 adds loop
#: interchange (before fusion: a nest region must not be absorbed),
#: skew-enabled fusion, and the oracle-validation gate for speculative
#: transforms; serialization and machine-model tiling run *after* the
#: gate so they cost the final post-veto region shapes — a vetoed nest
#: reverts to the tiny inner loop, which must still be serialized away
#: exactly as -O2 would.
PIPELINES = {
    OptLevel.O0: (),
    OptLevel.O1: (SyncEliminationPass, SmallRegionSerializationPass),
    OptLevel.O2: (
        RegionFusionPass,
        SyncEliminationPass,
        SmallRegionSerializationPass,
    ),
    OptLevel.O3: (
        LoopInterchangePass,
        SkewedRegionFusionPass,
        SyncEliminationPass,
        SpeculationValidationPass,
        SmallRegionSerializationPass,
        TilingPass,
    ),
}


def passes_for(level):
    return tuple(pass_cls() for pass_cls in PIPELINES[OptLevel.coerce(level)])


def seed_regions(ctx, plan):
    """One single-loop descriptor per executable DOALL loop (CFG order)."""
    return plan.with_regions(
        RegionDescriptor(headers=(header,))
        for header in ctx.executable_doall_headers(plan)
    )


@dataclasses.dataclass
class OptimizationResult:
    """An optimized plan plus the report of how it got that way."""

    plan: object
    report: OptReport
    level: OptLevel


def optimize_plan(
    function, module, pdg, pspdg, plan, level, machine=None, loops=None,
    payload_bytes=None, prelude_warm=None, compile_regions=False,
    compiled_speedup=None,
):
    """Run the ``level`` pipeline over ``plan``; never mutates the input.

    ``payload_bytes`` optionally maps region labels to measured
    bytes-on-wire from a previous run (the runtime's ``payload_bytes``
    stat); the small-region serialization pass folds it into the
    machine model's dispatch-cost bar.  ``prelude_warm`` maps the same
    labels to measured resident-prelude hit fractions, discounting the
    bar for regions whose shared state the pool already holds.
    ``compiled_speedup`` maps the same labels to measured compiled-over-
    interpreted step-rate ratios, replacing the machine model's assumed
    ``compiled_speedup`` prior per region
    (``diagnostics.payload_feedback()`` produces all three).
    """
    level = OptLevel.coerce(level)
    machine = machine if machine is not None else DEFAULT_MACHINE
    ctx = OptContext(function, module, pdg, pspdg, loops, machine,
                     payload_bytes=payload_bytes,
                     prelude_warm=prelude_warm,
                     compile_regions=compile_regions,
                     compiled_speedup=compiled_speedup)
    report = OptReport(level=level, plan_name=plan.name)
    seeded = seed_regions(ctx, plan)
    optimized = PassManager(passes_for(level)).run(ctx, seeded, report)
    return OptimizationResult(plan=optimized, report=report, level=level)
