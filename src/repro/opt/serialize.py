"""Small-region serialization.

Dispatching a parallel region is not free — worker frames, partitioning,
and (on the ``processes`` backend) pickling the module plus per-worker
state.  A region whose statically estimated per-entry cost is below the
machine model's thresholds is rebound: below ``serial_region_cost`` it
is not dispatched at all (the sequential interpreter just runs the
loop); below ``threads_region_cost`` it still runs in parallel but never
on the process pool.  This is exactly the LU fix from the roadmap: the
wavefront's 18-iteration inner loops stop paying a process-pool payload
per anti-diagonal per timestep.
"""

import dataclasses

from repro.opt.cost import region_cost, static_trip_count
from repro.planner.plans import OVERRIDE_SEQUENTIAL, OVERRIDE_THREADS


class SmallRegionSerializationPass:
    name = "small-region-serialization"

    def run(self, ctx, plan, report):
        machine = ctx.machine
        regions = []
        for region in plan.regions:
            # Under region compilation a worker retires steps faster, so
            # the same static cost buys less wall-clock: the effective
            # cost shrinks and borderline regions serialize.  Dispatch
            # overhead (the bars) is interpreter-independent.  A
            # measured per-region speedup (bench feedback) replaces the
            # model's prior when the runtime observed one.
            cost = region_cost(ctx, region.headers)
            if cost is not None and region.outer_header:
                # An interchanged nest dispatches once for the whole
                # outer extent; its per-entry work scales accordingly.
                outer_trip = static_trip_count(
                    ctx.loops_by_header[region.outer_header]
                )
                cost = None if outer_trip is None else cost * outer_trip
            cost = machine.effective_region_cost(
                cost,
                compiled=ctx.compile_regions,
                speedup=ctx.compiled_speedup.get(region.label),
            )
            override = None
            if cost is not None:
                # Measured bytes-on-wire (a previous run's payload_bytes
                # stat) raise the process-pool bar: a region must do
                # enough work to amortize what its payloads actually
                # cost to ship, not just the fixed dispatch overhead.
                # The measured resident-prelude hit rate discounts that
                # bar — a region whose prelude stays cached in the pool
                # workers ships dirty deltas, not state, on repeats.
                measured = ctx.payload_bytes.get(region.label)
                warm = ctx.prelude_warm.get(region.label, 0.0)
                threads_bar = (
                    machine.threads_region_cost
                    + machine.serialization_cost(measured, warm)
                )
                if cost < machine.serial_region_cost:
                    override = OVERRIDE_SEQUENTIAL
                elif cost < threads_bar:
                    override = OVERRIDE_THREADS
            if override is None:
                regions.append(region)
                continue
            report.serialized.append((region.label, cost, override))
            regions.append(
                dataclasses.replace(region, backend_override=override)
            )
        return plan.with_regions(regions)
