"""Oracle validation for speculative transforms.

A pass may apply a transform whose static side condition came back
*inconclusive* (a non-affine subscript the direction-vector test cannot
bound), marking the descriptor ``speculative``.  Such a plan must never
reach a real backend unchecked: this pass — always last in the ``-O3``
pipeline — executes the candidate plan on the *simulated* backend (the
seeded-interleaving oracle the adversarial-plan suite already proves
catches wrong plans) across several seeds and compares the formatted
output against the sequential interpreter's.  Any divergence or runtime
error vetoes the speculation: the region reverts to its
unspeculated shape and the veto is recorded with the failing witness.

Validation runs the whole function per (seed, check), so it only fires
when a speculative descriptor actually exists in the plan.
"""

import dataclasses

#: Seeded interleavings the candidate must survive.
ORACLE_SEEDS = (0, 1, 2)

#: Workers for the oracle runs — enough to split every partition.
ORACLE_WORKERS = 4


class SpeculationValidationPass:
    name = "speculation-oracle"

    def run(self, ctx, plan, report):
        speculative = [r for r in plan.regions if r.speculative]
        if not speculative:
            return plan
        verdict = _oracle_agrees(ctx, plan)
        regions = []
        for region in plan.regions:
            if not region.speculative:
                regions.append(region)
                continue
            if verdict is None:
                report.validated.append((region.label, region.speculative))
                regions.append(_validated(region))
            else:
                report.vetoed.append(
                    (region.speculative, region.label, verdict)
                )
                regions.append(_reverted(region))
        return plan.with_regions(regions)


def _validated(region):
    """The descriptor with its speculation discharged.

    The runtime refuses to dispatch a still-``speculative`` region on
    any real backend, so passing oracle validation must *clear* the
    marker — the transform survives, now carrying an empirical witness.
    """
    witness = region.witness or ""
    stamp = "oracle-validated across seeded interleavings"
    return dataclasses.replace(
        region,
        speculative=None,
        witness=f"{witness}; {stamp}" if witness else stamp,
    )


def _reverted(region):
    """The descriptor with the speculative transform undone.

    Only interchange speculates today, so reverting means dropping the
    nest fields; sync-elision decisions were nest-independent and stay.
    The backend override is cleared too — it was priced on the nest's
    per-dispatch cost, which no longer applies.
    """
    return dataclasses.replace(
        region,
        outer_header=None,
        tile=None,
        speculative=None,
        witness=None,
        backend_override=None,
    )


def _oracle_agrees(ctx, plan):
    """None when every oracle run matches sequential, else the reason."""
    from repro.emulator.interp import run_module
    from repro.runtime.executor import run_plan
    from repro.util.errors import ReproError

    name = ctx.function.name
    try:
        expected = run_module(ctx.module, name).formatted_output()
    except ReproError as exc:  # pragma: no cover - broken input program
        return f"sequential oracle run failed: {exc}"
    for seed in ORACLE_SEEDS:
        try:
            result = run_plan(
                ctx.module,
                ctx.pspdg,
                plan,
                function_name=name,
                workers=ORACLE_WORKERS,
                seed=seed,
                backend="simulated",
            )
        except ReproError as exc:
            return f"oracle run (seed {seed}) raised: {exc}"
        if result.formatted_output() != expected:
            return (
                f"oracle output diverged from sequential at seed {seed}"
            )
    return None
