"""Redundant-synchronization elimination.

A ``critical``/``atomic`` region inside a planned DOALL loop serializes
its workers.  When the guarded objects either live in per-worker storage
or carry no sequential dependence at that loop level, the lock orders
nothing observable: drop it.  The descriptor records the elided
annotation uids (the runtime skips them when building its lock map — and
the ``processes`` backend no longer needs its shared-memory fallback),
and the loop's :class:`LoopPlan` sheds the matching ``serialized_uids``
so the analytical critical-path model sees the win too.
"""

import dataclasses

from repro.opt.legality import sync_annotations_in, sync_is_redundant
from repro.planner.plans import ProgramPlan


class SyncEliminationPass:
    name = "sync-elimination"

    def run(self, ctx, plan, report):
        loop_plans = dict(plan.loop_plans)
        regions = []
        for region in plan.regions:
            removed = set(region.removed_sync_uids)
            for header in region.headers:
                loop = ctx.loops_by_header[header]
                recipe = ctx.recipe(header)
                for annotation, guarded in sync_annotations_in(ctx, loop):
                    if annotation.uid in removed:
                        continue
                    verdict = sync_is_redundant(
                        ctx, loop, recipe, annotation, guarded
                    )
                    if not verdict:
                        report.rejected.append(
                            (
                                self.name,
                                (header, annotation.directive.kind),
                                verdict.reason,
                            )
                        )
                        continue
                    removed.add(annotation.uid)
                    report.syncs_removed.append(
                        (header, annotation.directive.kind, annotation.uid)
                    )
                    self._shed_serialized_uids(
                        ctx, loop_plans, header, guarded
                    )
            # ``replace`` (not a field-by-field rebuild) so descriptor
            # fields later passes own — shifts, tiles, nest headers —
            # survive this pass untouched.
            regions.append(
                dataclasses.replace(
                    region, removed_sync_uids=frozenset(removed)
                )
            )
        return ProgramPlan(
            plan.name, loop_plans, plan.loop_uids, tuple(regions)
        )

    @staticmethod
    def _shed_serialized_uids(ctx, loop_plans, header, guarded_blocks):
        loop_plan = loop_plans.get(header)
        if loop_plan is None or not loop_plan.serialized_uids:
            return
        guarded_uids = set()
        for name in guarded_blocks:
            block = ctx.blocks_by_name.get(name)
            if block is not None:
                guarded_uids.update(inst.uid for inst in block.instructions)
        loop_plans[header] = dataclasses.replace(
            loop_plan,
            serialized_uids=loop_plan.serialized_uids - guarded_uids,
        )
