"""Strip-mine/tiling: a machine-model floor on iterations per payload.

Every dispatched chunk pays fixed overhead — worker frames, scheduling,
and on the ``processes`` backend a wire round-trip the resident-prelude
cache only partly hides.  When a region's static cost and trip count are
known, :meth:`MachineModel.tile_iterations` derives the smallest chunk
whose compute amortizes that overhead; the descriptor records it as the
region's tile shape and the runtime caps the effective worker count at
``ceil(trip / tile)``, padding the remaining workers with empty chunks.
A coarser partition of a DOALL space is just another legal schedule, so
this pass needs no legality predicate — only the cost model.

Runs last in the ``-O3`` pipeline so it sees final region shapes
(fused members, interchanged nests) and tiles the space the runtime
will actually partition.
"""

import dataclasses

from repro.opt.cost import region_cost, static_trip_count
from repro.planner.plans import OVERRIDE_SEQUENTIAL


class TilingPass:
    name = "tiling"

    def run(self, ctx, plan, report):
        machine = ctx.machine
        regions = []
        for region in plan.regions:
            if region.backend_override == OVERRIDE_SEQUENTIAL or region.tile:
                regions.append(region)
                continue
            cost = region_cost(ctx, region.headers)
            # The partitioned space is the members' shared iteration
            # space — for an interchanged nest, the *inner* space, each
            # value of which carries the whole outer extent of work.
            trip = static_trip_count(ctx.loops_by_header[region.headers[0]])
            if cost is not None and region.outer_header:
                outer_trip = static_trip_count(
                    ctx.loops_by_header[region.outer_header]
                )
                cost = None if outer_trip is None else cost * outer_trip
            tile = machine.tile_iterations(cost, trip)
            if tile is None:
                regions.append(region)
                continue
            report.tiled.append((region.label, tile))
            regions.append(dataclasses.replace(region, tile=tile))
        return plan.with_regions(regions)
