"""repro.pdg — the sequential Program Dependence Graph."""

from repro.pdg.builder import build_pdg
from repro.pdg.graph import (
    EDGE_CONTROL,
    EDGE_MEMORY,
    EDGE_REGISTER,
    PDG,
    PDGEdge,
)

__all__ = [
    "build_pdg",
    "EDGE_CONTROL",
    "EDGE_MEMORY",
    "EDGE_REGISTER",
    "PDG",
    "PDGEdge",
]
