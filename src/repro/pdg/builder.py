"""PDG construction from IR + sequential analyses (paper pipeline step 1).

The PDG of a function contains:

* **control** edges from each conditional branch to every instruction
  control-dependent on it (Ferrante-style, via postdominance);
* **register** edges for SSA def-use pairs (never loop-carried in this IR:
  temporaries cannot outlive an iteration without passing through memory);
* **memory** edges from the alias/subscript-driven memory dependence
  analysis, annotated with loop-carried levels.
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.controldep import controlling_branch_instructions
from repro.analysis.memdep import MemoryDependenceAnalysis
from repro.ir.instructions import Instruction
from repro.pdg.graph import (
    EDGE_CONTROL,
    EDGE_MEMORY,
    EDGE_REGISTER,
    PDG,
    PDGEdge,
)


def build_pdg(function, module, alias=None):
    """Build the full sequential PDG of ``function``."""
    alias = alias if alias is not None else AliasAnalysis(module)
    pdg = PDG(function)

    # Control dependences.
    controllers = controlling_branch_instructions(function)
    for inst in pdg.nodes:
        for branch in controllers.get(inst, []):
            pdg.add_edge(
                PDGEdge(branch, inst, EDGE_CONTROL, loop_independent=True)
            )

    # Register (def-use) dependences.
    for inst in pdg.nodes:
        for operand in inst.operands:
            if isinstance(operand, Instruction):
                pdg.add_edge(
                    PDGEdge(
                        operand, inst, EDGE_REGISTER, loop_independent=True
                    )
                )

    # Memory dependences.
    analysis = MemoryDependenceAnalysis(function, module, alias)
    pdg.loops = analysis.loops
    for dep in analysis.run():
        pdg.add_edge(
            PDGEdge(
                dep.source,
                dep.destination,
                EDGE_MEMORY,
                mem_kind=dep.kind,
                obj=dep.obj,
                loop_independent=dep.loop_independent,
                carried_loops=tuple(dep.carried_loops),
            )
        )
    return pdg
