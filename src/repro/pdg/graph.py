"""The sequential Program Dependence Graph (Ferrante/Ottenstein/Warren).

One node per IR instruction; edges carry control, register (SSA def-use),
or memory dependences.  Memory edges record whether the dependence has a
loop-independent component and the set of loops at which it is carried —
the loop-level view the parallelization planner works from.
"""

import dataclasses

EDGE_CONTROL = "control"
EDGE_REGISTER = "register"
EDGE_MEMORY = "memory"


@dataclasses.dataclass
class PDGEdge:
    """A dependence from ``source`` to ``destination`` (instructions)."""

    source: object
    destination: object
    kind: str  # control | register | memory
    mem_kind: str = None  # RAW | WAR | WAW (memory edges only)
    obj: object = None  # MemoryObject (memory edges only)
    loop_independent: bool = True
    carried_loops: tuple = ()

    def is_loop_carried_at(self, loop):
        return loop in self.carried_loops

    def describe(self):
        parts = [f"#{self.source.uid} -> #{self.destination.uid}", self.kind]
        if self.mem_kind:
            parts.append(self.mem_kind)
        if self.obj is not None:
            parts.append(getattr(self.obj, "display_name", repr(self.obj)))
        if not self.loop_independent:
            parts.append("carried-only")
        if self.carried_loops:
            names = ",".join(l.header.name for l in self.carried_loops)
            parts.append(f"carried@[{names}]")
        return " ".join(parts)


class PDG:
    """Dependence graph over the instructions of one function."""

    def __init__(self, function):
        self.function = function
        self.nodes = list(function.instructions())
        self.edges = []
        self.loops = []  # filled by the builder (natural loops, outer first)
        self._out = {inst: [] for inst in self.nodes}
        self._in = {inst: [] for inst in self.nodes}

    def add_edge(self, edge):
        self.edges.append(edge)
        self._out[edge.source].append(edge)
        self._in[edge.destination].append(edge)
        return edge

    def out_edges(self, inst):
        return list(self._out[inst])

    def in_edges(self, inst):
        return list(self._in[inst])

    def edges_between(self, source, destination):
        return [
            e for e in self._out[source] if e.destination is destination
        ]

    def edge_count(self):
        return len(self.edges)

    def memory_edges(self):
        return [e for e in self.edges if e.kind == EDGE_MEMORY]

    def statistics(self):
        """Summary counts, used by construction benchmarks and tests."""
        by_kind = {}
        carried = 0
        for edge in self.edges:
            by_kind[edge.kind] = by_kind.get(edge.kind, 0) + 1
            if edge.carried_loops:
                carried += 1
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "carried_edges": carried,
            **{f"{kind}_edges": count for kind, count in by_kind.items()},
        }

    # -- loop-level views -----------------------------------------------------

    def loop_nodes(self, loop):
        return [inst for inst in self.nodes if loop.contains_instruction(inst)]

    def loop_edges(self, loop, include_carried_at=None):
        """Edges internal to ``loop``.

        ``include_carried_at``: if given, keep carried edges only when they
        are carried at that loop (plus all loop-independent edges); if
        None, keep everything internal.
        """
        selected = []
        for edge in self.edges:
            if not (
                loop.contains_instruction(edge.source)
                and loop.contains_instruction(edge.destination)
            ):
                continue
            if include_carried_at is None:
                selected.append(edge)
                continue
            if edge.loop_independent or edge.is_loop_carried_at(
                include_carried_at
            ):
                selected.append(edge)
        return selected

    def loop_adjacency(self, loop):
        """node -> successor nodes, restricted to edges relevant at ``loop``.

        Relevant edges: loop-independent edges plus edges carried at
        ``loop`` (carried at inner loops only matters when planning those
        inner loops).
        """
        nodes = self.loop_nodes(loop)
        node_set = set(nodes)
        adjacency = {inst: [] for inst in nodes}
        for edge in self.loop_edges(loop, include_carried_at=loop):
            if edge.source in node_set and edge.destination in node_set:
                adjacency[edge.source].append(edge.destination)
        return nodes, adjacency

    def to_dot(self, name="pdg"):
        """GraphViz rendering (debugging/docs)."""
        lines = [f"digraph {name} {{"]
        for inst in self.nodes:
            label = inst.describe().replace('"', "'")
            lines.append(f'  n{inst.uid} [label="{label}"];')
        styles = {
            EDGE_CONTROL: "dashed",
            EDGE_REGISTER: "solid",
            EDGE_MEMORY: "bold",
        }
        for edge in self.edges:
            style = styles[edge.kind]
            color = "red" if edge.carried_loops else "black"
            lines.append(
                f"  n{edge.source.uid} -> n{edge.destination.uid} "
                f'[style={style}, color={color}];'
            )
        lines.append("}")
        return "\n".join(lines)
