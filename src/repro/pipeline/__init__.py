"""repro.pipeline — the staged, cached pipeline behind :class:`repro.Session`.

The paper's Fig. 12 pipeline (source -> annotated IR -> profile -> PDG ->
PS-PDG -> views -> planning) is modelled as an explicit stage graph
(:mod:`repro.pipeline.stages`) whose artifacts are materialized lazily,
exactly once, into a content-hash keyed store
(:mod:`repro.pipeline.cache`).  Per-stage wall time, run counts, and
artifact statistics are collected in :mod:`repro.pipeline.diagnostics`;
:mod:`repro.pipeline.config` carries every knob that used to be a
scattered positional argument.
"""

from repro.pipeline.cache import PipelineCache, content_key
from repro.pipeline.config import SessionConfig
from repro.pipeline.diagnostics import Diagnostics, StageRecord
from repro.pipeline.stages import STAGES, Stage, stage_order

__all__ = [
    "PipelineCache",
    "content_key",
    "SessionConfig",
    "Diagnostics",
    "StageRecord",
    "STAGES",
    "Stage",
    "stage_order",
]
