"""Content-hash keyed artifact store for pipeline stages.

Each artifact is stored under ``(stage name, content key)`` where the
content key hashes everything the artifact depends on: the session's
source text (or module identity), the config fingerprint, and any
per-query parameters (machine model, coverage threshold, ...).  Changing
the source or the configuration therefore changes every key — stale
artifacts can never be returned, and invalidation is a plain sweep.
"""

import hashlib
import time


def content_key(*parts):
    """A stable hex digest over the ``repr`` of the given parts."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class PipelineCache:
    """Memoization store with hit/miss accounting.

    ``get_or_build`` is the only write path: on a miss it times the
    builder, records the run in the session diagnostics, and stores the
    artifact; on a hit it returns the stored artifact untouched and never
    re-enters the builder — the "each stage runs exactly once" guarantee
    the benchmarks assert.
    """

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def peek(self, key):
        return self._entries.get(key)

    def get_or_build(self, stage, key, builder, diagnostics=None, stats=None):
        """Return the cached artifact for ``key`` or build and record it."""
        full_key = (stage, key)
        if full_key in self._entries:
            self.hits += 1
            if diagnostics is not None:
                diagnostics.record_hit(stage)
            return self._entries[full_key]

        self.misses += 1
        started = time.perf_counter()
        artifact = builder()
        elapsed = time.perf_counter() - started
        self._entries[full_key] = artifact
        if diagnostics is not None:
            artifact_stats = stats(artifact) if stats is not None else None
            diagnostics.record_run(stage, elapsed, artifact_stats)
        return artifact

    def invalidate(self, stage=None):
        """Drop every entry, or only the entries of one stage."""
        if stage is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        doomed = [k for k in self._entries if k[0] == stage]
        for key in doomed:
            del self._entries[key]
        return len(doomed)
