"""Session configuration: every pipeline knob in one frozen value object.

Before the :class:`~repro.session.Session` API these settings were
scattered positional arguments (``function_name`` on
``prepare_benchmark``, ``machine``/``min_coverage`` on ``fig13_options``,
per-abstraction planning behavior hardcoded inside
``fig14_critical_paths``).  The config is hashable and participates in
the cache key, so two sessions that differ only in configuration never
share stale artifacts.
"""

import dataclasses

from repro.opt.levels import OptLevel
from repro.planner.machine import DEFAULT_MACHINE, MachineModel

#: Dependence abstractions the evaluation compares (paper §6.2).
ALL_ABSTRACTIONS = ("PDG", "J&K", "PS-PDG")


@dataclasses.dataclass(frozen=True, slots=True)
class SessionConfig:
    """Immutable pipeline configuration for one :class:`repro.Session`.

    Attributes:
        name: benchmark/session label used in reports and plan names.
        function_name: profiled entry point of the module.
        machine: :class:`MachineModel` for option enumeration and plans.
        abstractions: dependence views to build (subset of
            ``ALL_ABSTRACTIONS``; "OpenMP" is always implied).
        min_coverage: minimum dynamic-instruction share for a loop to be
            a planning candidate (§6.1's 1%).
        plan_hierarchical: abstractions whose plans inherit the
            developer's inner-loop parallelization (J&K, PS-PDG).
        plan_all_loops: abstractions allowed to plan *every* loop,
            innermost first, not just outermost ones (PS-PDG).
        ablate_features: PS-PDG feature names (``repro.core.ablation``)
            projected out by :meth:`repro.Session.reduced_signature` —
            the Section 4 ablation knob.
        workers: worker count for parallel execution.
        seed: scheduler seed (interleaving order of the ``simulated``
            backend; ignored by the real backends).
        backend: execution backend — ``"simulated"`` (the seeded
            interleaving oracle), ``"threads"``, or ``"processes"``.
        schedule: chunk schedule — ``"static"``, ``"dynamic"``, or
            ``"guided"`` (partitioning is shared by all backends).
        chunk: chunk-size override; ``None`` uses each loop recipe's own
            chunk (source ``schedule(..., n)`` clause, default 1).
        opt_level: :class:`~repro.opt.levels.OptLevel` of the pipeline's
            ``optimize`` stage — ``O0`` (plans run as chosen), ``O1``
            (sync elimination + small-region serialization), ``O2``
            (``O1`` + parallel-region fusion), ``O3`` (``O2`` + loop
            interchange, skew-enabled fusion, machine-model tiling, and
            oracle-validated speculation).  Accepts 0/1/2/3, "O3", or
            "-O3".
        compile_regions: run region bodies through the
            :mod:`repro.codegen` exec-compiled path.  ``True``/``False``
            force it; ``None`` (the default) defers to the
            ``REPRO_COMPILE`` environment knob.
        retry_budget: per-region retry budget for supervised
            ``processes`` dispatch (re-dispatches after worker death,
            hangs, or poisoned payloads).  ``None`` (the default)
            defers to the ``REPRO_RETRY_BUDGET`` environment knob.
        failover: enable the graceful-degradation ladder (processes →
            threads → serial) once retries are exhausted.
            ``True``/``False`` force it; ``None`` (the default) defers
            to the ``REPRO_FAILOVER`` environment knob.
        calibrate: distill each run's region stats into measured
            machine-model coefficients (a
            :class:`repro.planner.calibration.CalibrationStore`) and
            plan subsequent runs with them instead of ``machine``'s
            static values.  ``True``/``False`` force it; ``None`` (the
            default) defers to the ``REPRO_CALIBRATE`` environment
            knob.
        adaptive: default for ``Session.run(adaptive=)`` — mid-run
            replanning of the remaining regions' cost decisions when a
            dispatch diverges from the plan's predictions.
            ``True``/``False`` force it; ``None`` (the default) defers
            to the ``REPRO_ADAPTIVE`` environment knob.  Implies
            calibration for the run's own observations.
        profile_path: where the calibration profile JSON persists
            across sessions.  ``None`` (the default) defers to the
            ``REPRO_PROFILE`` environment knob; empty means in-memory
            only.
    """

    name: str = "session"
    function_name: str = "main"
    machine: MachineModel = DEFAULT_MACHINE
    abstractions: tuple = ALL_ABSTRACTIONS
    min_coverage: float = 0.01
    plan_hierarchical: tuple = ("J&K", "PS-PDG")
    plan_all_loops: tuple = ("PS-PDG",)
    ablate_features: tuple = ()
    workers: int = 4
    seed: int = 0
    backend: str = "simulated"
    schedule: str = "static"
    chunk: int | None = None
    opt_level: OptLevel = OptLevel.O0
    compile_regions: bool | None = None
    retry_budget: int | None = None
    failover: bool | None = None
    calibrate: bool | None = None
    adaptive: bool | None = None
    profile_path: str | None = None

    def __post_init__(self):
        unknown = set(self.abstractions) - set(ALL_ABSTRACTIONS)
        if unknown:
            raise ValueError(
                f"unknown abstractions {sorted(unknown)}; "
                f"choose from {ALL_ABSTRACTIONS}"
            )
        # Normalize 2 / "2" / "O2" / "-O2" spellings up front so the
        # config fingerprint (and with it every cache key) is stable.
        level = OptLevel.coerce(self.opt_level)
        if level is not self.opt_level:
            object.__setattr__(self, "opt_level", level)

    def derive(self, **changes):
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self):
        """Stable textual identity of this config (cache-key component)."""
        parts = []
        for field in dataclasses.fields(self):
            parts.append(f"{field.name}={getattr(self, field.name)!r}")
        return ";".join(parts)
