"""Per-stage wall time, run counts, and artifact statistics.

``Session.diagnostics`` answers two questions the repository's
benchmarks keep asking: *did this stage run more than once?* (it must
not, per session and content key) and *where did the time go?*  The
report renders the stage table the CLI's ``report`` subcommand prints.
"""

import dataclasses


@dataclasses.dataclass(slots=True)
class StageRecord:
    """Accounting for one pipeline stage within one session."""

    stage: str
    runs: int = 0
    hits: int = 0
    seconds: float = 0.0
    stats: dict = dataclasses.field(default_factory=dict)


class Diagnostics:
    """Collects :class:`StageRecord` entries as stages materialize."""

    def __init__(self):
        self._records = {}
        self.events = []  # (stage, seconds) per actual build, in order
        self.parallel_regions = []  # per parallel loop execution, in order

    def _record(self, stage):
        if stage not in self._records:
            self._records[stage] = StageRecord(stage)
        return self._records[stage]

    def record_run(self, stage, seconds, stats=None):
        record = self._record(stage)
        record.runs += 1
        record.seconds += seconds
        if stats:
            record.stats = dict(stats)
        self.events.append((stage, seconds))

    def record_hit(self, stage):
        self._record(stage).hits += 1

    def record_parallel(self, region):
        """Record one parallel region execution (from ``Session.run``).

        ``region`` is the runtime's stats dict: header, backend,
        schedule, workers, chunk, iterations, seconds, a ``per_worker``
        list of {worker, iterations, steps, seconds}, and — for
        ``processes`` dispatches — ``payloads``, ``payload_bytes``
        (bytes shipped to the pool for the region), ``dirty_slots``
        (write-log marks the workers reported), plus the resident-
        prelude columns ``prelude_hits`` (payloads served from resident
        worker state), ``prelude_misses`` (full-state retries), and
        ``prelude_bytes_saved`` (estimated state bytes the hits
        avoided shipping).  Under region compilation,
        ``compiled_chunks``/``interpreted_chunks`` count the chunks that
        ran through exec-compiled bodies vs the interpreter fallback.
        Supervised dispatch adds ``retries`` (re-dispatches after
        infrastructure failures), ``failovers`` (degradation-ladder rung
        changes), ``faults_injected`` (REPRO_FAULTS scenarios fired),
        and ``recovery_ms`` (wall-clock spent respawning/backing off).
        """
        self.parallel_regions.append(dict(region))

    def payload_feedback(self):
        """Measured wire feedback for ``optimize_plan``, per region label.

        Returns ``(payload_bytes, prelude_warm, compiled_speedup,
        recovery)``: average bytes-on-wire per dispatch, the
        resident-prelude hit fraction, the measured
        compiled-over-interpreted step-rate ratio, and the supervision
        ledger, each aggregated over every recorded execution of its
        region.  Feed the first three to
        ``optimize_plan(payload_bytes=..., prelude_warm=...,
        compiled_speedup=...)`` so the small-region pass prices regions
        at what their dispatches *actually* cost — cached preludes and
        real codegen gains included — instead of at the cold-start
        worst case and the machine model's prior.

        ``compiled_speedup`` only covers regions observed in *both*
        modes (pure compiled and pure interpreted executions); mixed
        executions are skipped because their rate is not attributable
        to either engine.

        ``recovery`` maps each label that ever needed supervision to
        ``{"retries", "failovers", "faults_injected", "recovery_ms",
        "replans"}`` totals — labels with an all-zero ledger are
        omitted, so an empty dict means every dispatch was clean and
        never triggered an adaptive replan.
        """
        totals = {}
        rates = {}
        recovery = {}
        for region in self.parallel_regions:
            label = region["header"]
            payloads = region.get("payloads", 0)
            if payloads:
                entry = totals.setdefault(
                    label, {"bytes": 0, "payloads": 0, "hits": 0}
                )
                entry["bytes"] += region.get("payload_bytes", 0)
                entry["payloads"] += payloads
                entry["hits"] += region.get("prelude_hits", 0)
            ledger = {
                "retries": region.get("retries", 0),
                "failovers": region.get("failovers", 0),
                "faults_injected": region.get("faults_injected", 0),
                "recovery_ms": region.get("recovery_ms", 0.0),
                "replans": region.get("replans", 0),
            }
            if any(ledger.values()):
                entry = recovery.setdefault(label, {
                    "retries": 0, "failovers": 0,
                    "faults_injected": 0, "recovery_ms": 0.0,
                    "replans": 0,
                })
                for key, value in ledger.items():
                    entry[key] += value
            compiled = region.get("compiled_chunks", 0)
            interpreted = region.get("interpreted_chunks", 0)
            if bool(compiled) == bool(interpreted):  # mixed or empty
                continue
            steps = sum(
                worker["steps"] for worker in region.get("per_worker", ())
            )
            seconds = region.get("seconds", 0.0)
            if not steps or seconds <= 0.0:
                continue
            mode = "compiled" if compiled else "interpreted"
            entry = rates.setdefault(
                label,
                {"compiled": [0, 0.0], "interpreted": [0, 0.0]},
            )
            entry[mode][0] += steps
            entry[mode][1] += seconds
        payload_bytes = {
            label: entry["bytes"] // max(1, entry["payloads"])
            for label, entry in totals.items()
        }
        prelude_warm = {
            label: entry["hits"] / entry["payloads"]
            for label, entry in totals.items()
        }
        compiled_speedup = {}
        for label, entry in rates.items():
            compiled_steps, compiled_seconds = entry["compiled"]
            interp_steps, interp_seconds = entry["interpreted"]
            if compiled_steps and interp_steps:
                compiled_speedup[label] = (
                    (compiled_steps / compiled_seconds)
                    / (interp_steps / interp_seconds)
                )
        return payload_bytes, prelude_warm, compiled_speedup, recovery

    def runs(self, stage):
        """How many times ``stage`` actually executed (0 if never)."""
        record = self._records.get(stage)
        return record.runs if record else 0

    def hits(self, stage):
        record = self._records.get(stage)
        return record.hits if record else 0

    def stats(self, stage):
        record = self._records.get(stage)
        return dict(record.stats) if record else {}

    def total_seconds(self):
        return sum(record.seconds for record in self._records.values())

    def records(self):
        """Stage records in first-build order."""
        seen = []
        for stage, _seconds in self.events:
            if stage not in seen:
                seen.append(stage)
        for stage in self._records:
            if stage not in seen:
                seen.append(stage)
        return [self._records[stage] for stage in seen]

    def as_dict(self):
        return {
            record.stage: {
                "runs": record.runs,
                "hits": record.hits,
                "seconds": record.seconds,
                "stats": dict(record.stats),
            }
            for record in self.records()
        }

    def parallel_report(self):
        """A printable per-region, per-worker execution table.

        The ``phit``/``pmiss``/``saved`` columns are the resident-
        prelude protocol: payloads served from resident worker state,
        full-state miss retries, and the estimated bytes the hits kept
        off the wire.  ``rtry``/``fo``/``flt``/``rec-ms`` are the
        supervision ledger: region re-dispatches after infrastructure
        failures, degradation-ladder failovers, injected faults, and
        milliseconds spent in recovery (pool respawn + backoff).
        ``rpl`` counts the adaptive replans this dispatch triggered.
        """
        if not self.parallel_regions:
            return "no parallel regions executed"
        lines = [
            f"{'loop':16} {'backend':26} {'sched':8} {'W':>2} "
            f"{'iters':>6} {'bytes':>8} {'phit':>4} {'pmiss':>5} "
            f"{'saved':>8} {'cc':>4} {'ic':>4} {'rtry':>4} {'fo':>3} "
            f"{'flt':>4} {'rec-ms':>7} {'rpl':>3} {'seconds':>9}  "
            f"per-worker steps"
        ]
        lines.append("-" * len(lines[0]))
        for region in self.parallel_regions:
            steps = "/".join(
                str(worker["steps"]) for worker in region["per_worker"]
            )
            lines.append(
                f"{region['header']:16} {region['backend']:26} "
                f"{region['schedule']:8} {region['workers']:>2} "
                f"{region['iterations']:>6} "
                f"{region.get('payload_bytes', 0):>8} "
                f"{region.get('prelude_hits', 0):>4} "
                f"{region.get('prelude_misses', 0):>5} "
                f"{region.get('prelude_bytes_saved', 0):>8} "
                f"{region.get('compiled_chunks', 0):>4} "
                f"{region.get('interpreted_chunks', 0):>4} "
                f"{region.get('retries', 0):>4} "
                f"{region.get('failovers', 0):>3} "
                f"{region.get('faults_injected', 0):>4} "
                f"{region.get('recovery_ms', 0.0):>7.1f} "
                f"{region.get('replans', 0):>3} "
                f"{region['seconds']:>9.4f}  "
                f"{steps}"
            )
        return "\n".join(lines)

    def report(self):
        """A printable per-stage table."""
        lines = [f"{'stage':16} {'runs':>4} {'hits':>4} {'seconds':>9}  stats"]
        lines.append("-" * 72)
        for record in self.records():
            rendered = " ".join(
                f"{key}={value}" for key, value in record.stats.items()
            )
            lines.append(
                f"{record.stage:16} {record.runs:>4} {record.hits:>4} "
                f"{record.seconds:>9.4f}  {rendered}"
            )
        lines.append("-" * 72)
        lines.append(f"{'total':16} {'':>4} {'':>4} {self.total_seconds():>9.4f}")
        return "\n".join(lines)
