"""The pipeline stage graph (paper Fig. 12, made explicit).

Each :class:`Stage` names its upstream dependencies and knows how to
build its artifact from a session.  The session materializes stages
lazily: asking for ``pspdg`` pulls ``module -> function -> alias -> pdg``
first, each through the content-keyed cache, each exactly once.

Builders receive the owning :class:`repro.Session` and reach upstream
artifacts through its properties; the ``deps`` edges mirror that data
flow and are load-bearing — the session derives each stage's cache-key
config fields from the transitive dependency closure, so a config
change re-keys exactly the stages it can affect.  ``stats`` callbacks
summarize the artifact for :mod:`repro.pipeline.diagnostics`.
"""

import dataclasses

from repro.analysis.alias import AliasAnalysis
from repro.analysis.loops import find_natural_loops
from repro.core.builder import PSPDGBuilder
from repro.emulator.interp import Interpreter
from repro.emulator.profile import Profiler
from repro.frontend import compile_source
from repro.pdg.builder import build_pdg
from repro.planner.views import JKView, PDGView, PSPDGView


@dataclasses.dataclass(frozen=True, slots=True)
class Stage:
    """One node of the pipeline graph."""

    name: str
    deps: tuple
    build: callable
    stats: callable = None


def _build_module(session):
    if session._module is not None:
        return session._module
    return compile_source(session.source, session.config.name)


def _module_stats(module):
    return {
        "functions": len(module.functions),
        "instructions": sum(
            len(block.instructions)
            for function in module.functions.values()
            for block in function.blocks
        ),
    }


def _build_function(session):
    return session.module.function(session.config.function_name)


def _build_profile(session):
    name = session.config.function_name
    interpreter = Interpreter(session.module)
    return interpreter.run(name, profiler=Profiler(name))


def _build_alias(session):
    return AliasAnalysis(session.module)


def _build_pdg(session):
    return build_pdg(session.function, session.module, session.alias)


def _build_loops(session):
    return find_natural_loops(session.function)


def _build_pspdg(session):
    builder = PSPDGBuilder(
        session.function, session.module, session.alias, pdg=session.pdg
    )
    return builder.build()


_VIEW_FACTORIES = {
    "PDG": lambda s: PDGView(s.function, s.module, s.pdg, s.alias),
    "J&K": lambda s: JKView(s.function, s.module, s.pdg, s.pspdg, s.alias),
    "PS-PDG": lambda s: PSPDGView(
        s.function, s.module, s.pdg, s.pspdg, s.alias
    ),
}


def _build_views(session):
    return {
        name: _VIEW_FACTORIES[name](session)
        for name in session.config.abstractions
    }


def _build_calibrate(session):
    """The effective (possibly measured) machine model + wire feedback.

    With calibration off the artifact is the config's static machine
    and empty feedback, so downstream keys and decisions are byte-
    identical to the pre-calibration pipeline.  With calibration on,
    the session's :class:`~repro.planner.calibration.CalibrationStore`
    (loaded from the ``REPRO_PROFILE`` path at construction) supplies
    measured coefficients and the per-region-label payload feedback it
    remembered for this program — keyed by the module's content hash,
    per the graph-labelling idea of profiling region shapes rather than
    source positions.
    """
    base = session.config.machine
    if not session.calibrate_enabled:
        return {
            "machine": base,
            "payload_bytes": {},
            "prelude_warm": {},
            "compiled_speedup": {},
            "measured": {},
        }
    store = session.calibration
    payload_bytes, prelude_warm, compiled_speedup = store.region_feedback(
        session.program_key()
    )
    return {
        "machine": store.calibrated_machine(base),
        "payload_bytes": payload_bytes,
        "prelude_warm": prelude_warm,
        "compiled_speedup": compiled_speedup,
        "measured": {
            name: value
            for name, (value, _samples)
            in store.measured_coefficients().items()
        },
    }


def _calibrate_stats(artifact):
    return {
        "coefficients": len(artifact["measured"]),
        "labels": len(artifact["payload_bytes"]),
    }


def _build_optimize(session):
    """Run the ``-O`` pass pipeline over every planned abstraction.

    The artifact maps abstraction name -> :class:`OptimizationResult`
    (rewritten plan + report).  Keyed by ``opt_level`` and ``machine``
    (plus the planning fields), so flipping ``-O`` levels re-keys only
    this stage and ``recipes`` — the parse/PDG/PS-PDG artifacts upstream
    stay cached.  The machine model and wire feedback come from the
    ``calibrate`` stage: static defaults normally, measured coefficients
    when the session calibrates (the stage key carries the store's
    version, so a new observation re-prices plans on next access).
    """
    from repro.opt import optimize_plan

    calibrated = session.calibrated
    results = {}
    for name, entry in session.critical_paths().items():
        plan = entry.get("plan")
        if plan is None:
            continue
        results[name] = optimize_plan(
            session.function,
            session.module,
            session.pdg,
            session.pspdg,
            plan,
            session.config.opt_level,
            machine=calibrated["machine"],
            loops=session.loops,
            payload_bytes=calibrated["payload_bytes"] or None,
            prelude_warm=calibrated["prelude_warm"] or None,
            compiled_speedup=calibrated["compiled_speedup"] or None,
            compile_regions=session.compile_regions_enabled,
        )
    return results


def _optimize_stats(results):
    totals = {}
    for result in results.values():
        for key, value in result.report.summary().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _build_recipes(session):
    """Region execution recipes per abstraction, from the optimized plans."""
    from repro.runtime.executor import recipes_from_plan

    return {
        name: recipes_from_plan(
            session.module, session.pspdg, result.plan, session.function
        )
        for name, result in session.optimizations.items()
    }


def _recipes_stats(recipes):
    return {
        "regions": sum(len(regions) for regions in recipes.values()),
        "fused": sum(
            1
            for regions in recipes.values()
            for region in regions
            if region.fused
        ),
    }


def _build_compile_regions(session):
    """Precompile every planned region loop through :mod:`repro.codegen`.

    Warms the codegen cache parent-side (both store variants: the
    threads backend's shims may or may not feed a write log) so region
    dispatch never pays compile latency, and reports which loops lowered
    and which fell back.  The compiled functions themselves live in the
    codegen cache keyed by the session's module object — they close
    over IR identities, so the *artifact* carries only the summary.
    Warming passes the module's wire key so the lowered *source* also
    lands in the content-hash cache: pool children fork with it and can
    rebuild entries for their re-decoded modules without re-lowering.
    """
    from repro.codegen import cache as codegen_cache
    from repro.runtime import payload as payload_codec

    loops_by_header = {
        loop.header.name: loop for loop in session.loops
    }
    module_key = payload_codec.module_codec(session.module).key
    summary = {"compiled": [], "fallback": [], "module_key": module_key}
    seen = set()
    for regions in session.region_recipes.values():
        for region in regions:
            for header in region.headers:
                loop = loops_by_header.get(header)
                if loop is None or loop.canonical is None or header in seen:
                    continue
                seen.add(header)
                entries = [
                    codegen_cache.compiled_chunk(
                        session.module, loop, logged=logged,
                        module_key=module_key,
                    )
                    for logged in (True, False)
                ]
                bucket = "compiled" if all(entries) else "fallback"
                summary[bucket].append(header)
    summary["codegen"] = codegen_cache.stats()
    return summary


def _compile_regions_stats(summary):
    return {
        "compiled_loops": len(summary["compiled"]),
        "fallback_loops": len(summary["fallback"]),
        "codegen_seconds": round(summary["codegen"]["seconds"], 6),
    }


STAGES = {
    stage.name: stage
    for stage in (
        Stage("module", (), _build_module, _module_stats),
        Stage("function", ("module",), _build_function),
        Stage(
            "profile",
            ("module",),
            _build_profile,
            lambda execution: {"steps": execution.steps},
        ),
        Stage("alias", ("module",), _build_alias),
        Stage(
            "pdg",
            ("function", "alias"),
            _build_pdg,
            lambda pdg: {"nodes": len(pdg.nodes), "edges": len(pdg.edges)},
        ),
        Stage(
            "loops",
            ("function",),
            _build_loops,
            lambda loops: {"loops": len(loops)},
        ),
        Stage(
            "pspdg",
            ("function", "alias", "pdg"),
            _build_pspdg,
            lambda graph: graph.statistics(),
        ),
        Stage(
            "views",
            ("function", "pdg", "pspdg", "alias"),
            _build_views,
            lambda views: {"abstractions": ",".join(views)},
        ),
        # Profile-guided calibration: the effective machine model and
        # measured wire feedback the optimizer prices plans with.
        Stage(
            "calibrate",
            ("module",),
            _build_calibrate,
            _calibrate_stats,
        ),
        # The ``-O`` pipeline: pass-rewritten plans, then the region
        # recipes the runtime dispatches.  Builders additionally reach
        # the planning query (``critical_paths``) through the session;
        # its key fields are folded in via _STAGE_PARAMS["optimize"].
        Stage(
            "optimize",
            ("function", "pdg", "pspdg", "loops", "calibrate"),
            _build_optimize,
            _optimize_stats,
        ),
        Stage(
            "recipes",
            ("optimize",),
            _build_recipes,
            _recipes_stats,
        ),
        # Region-body compilation: exec-compiled chunk functions for the
        # planned loops, warmed ahead of the first dispatch.  Keyed (via
        # _STAGE_PARAMS) by the ``compile_regions`` knob on top of the
        # recipes closure.
        Stage(
            "compile_regions",
            ("recipes", "loops"),
            _build_compile_regions,
            _compile_regions_stats,
        ),
    )
}


def stage_order(target):
    """Topological (dependency-first) order of stages needed by ``target``."""
    order = []

    def visit(name):
        if name in order:
            return
        for dep in STAGES[name].deps:
            visit(dep)
        order.append(name)

    visit(target)
    return order
