"""repro.planner — parallelization planning over PDG / J&K / PS-PDG views.

Implements the paper's evaluation machinery: loop classification by SCCs
(§6.1), option enumeration on a 56-core machine model (§6.2, Fig. 13), and
ideal-machine critical-path plan selection (§6.3, Fig. 14).
"""

from repro.planner.classify import (
    LoopClassification,
    SCCInfo,
    classify_loop,
)
from repro.planner.calibration import CalibrationStore, ReplanContext
from repro.planner.critical_path import CriticalPathEvaluator, critical_path
from repro.planner.experiments import (
    BenchmarkSetup,
    fig13_options,
    fig14_critical_paths,
    format_fig13_row,
    format_fig14_row,
    prepare_benchmark,
)
from repro.planner.machine import DEFAULT_MACHINE, MachineModel
from repro.planner.options import (
    OptionReport,
    candidate_loops,
    count_options,
    doall_options,
    dswp_options,
    helix_options,
    openmp_options,
    options_for_loop,
    worksharing_annotated_headers,
)
from repro.planner.plans import (
    LoopPlan,
    ProgramPlan,
    TECH_DOALL,
    TECH_DSWP,
    TECH_HELIX,
    TECH_SEQ,
    abstraction_plan,
    candidate_techniques,
    loop_uid_map,
    openmp_source_plan,
    region_uids,
    technique_plan,
)
from repro.planner.views import DependenceView, JKView, PDGView, PSPDGView

__all__ = [
    "LoopClassification",
    "SCCInfo",
    "classify_loop",
    "CalibrationStore",
    "ReplanContext",
    "CriticalPathEvaluator",
    "critical_path",
    "BenchmarkSetup",
    "fig13_options",
    "fig14_critical_paths",
    "format_fig13_row",
    "format_fig14_row",
    "prepare_benchmark",
    "DEFAULT_MACHINE",
    "MachineModel",
    "OptionReport",
    "candidate_loops",
    "count_options",
    "doall_options",
    "dswp_options",
    "helix_options",
    "openmp_options",
    "options_for_loop",
    "worksharing_annotated_headers",
    "LoopPlan",
    "ProgramPlan",
    "TECH_DOALL",
    "TECH_DSWP",
    "TECH_HELIX",
    "TECH_SEQ",
    "abstraction_plan",
    "candidate_techniques",
    "loop_uid_map",
    "openmp_source_plan",
    "region_uids",
    "technique_plan",
    "DependenceView",
    "JKView",
    "PDGView",
    "PSPDGView",
]
