"""Profile-guided calibration of the :class:`MachineModel`.

The planner prices every cost decision — small-region serialization,
tiling width, backend choice — from :class:`MachineModel` coefficients
that shipped as guesses.  The runtime, meanwhile, measures exactly the
quantities those coefficients model: per-region wall time, per-worker
compute time, bytes-on-wire, resident-prelude hit rates, and compiled
vs. interpreted step rates.  :class:`CalibrationStore` closes the loop:

* :meth:`~CalibrationStore.observe_run` distills a run's region stats
  into coefficient *samples* (see the estimators below) and folds them
  into exponentially-decayed running estimates, with outlier rejection
  so one noisy region cannot yank the model;
* :meth:`~CalibrationStore.calibrated_machine` projects the estimates
  onto a base :class:`MachineModel`, clamped so no coefficient can go
  non-positive;
* per-program region feedback (bytes/warmth/speedup per region label,
  keyed by the module's content hash) persists alongside, so a *warm
  session* re-plans with measured payload feedback before its first
  dispatch;
* :meth:`~CalibrationStore.save`/:meth:`~CalibrationStore.load` give
  the store a JSON file identity (the ``REPRO_PROFILE`` knob), making
  calibration survive process boundaries.

Estimators (deliberately coarse — threshold decisions only need the
right order of magnitude, and the EWMA smooths the rest):

* ``steps/second`` comes from the per-worker ``(steps, seconds)``
  pairs, converting wall-clock overhead into the dynamic-instruction
  units the cost model uses.
* A region's *dispatch overhead* is its wall time minus its slowest
  worker's compute time.  On the threads backend that is all fixed
  dispatch cost (``threads_region_cost``); on the processes backend
  half is attributed to fixed dispatch and half to serialization,
  giving a ``payload_cost_per_byte`` estimate after dividing by the
  measured bytes — but only for dispatches that shipped at least
  ``PAYLOAD_SAMPLE_FLOOR`` bytes (a warm repeat's tiny prelude delta
  is all dispatch, no wire).  Overheads are aggregated into **one
  sample per run** before entering the EWMA; single dispatches are
  scheduling noise.  ``serial_region_cost`` keeps the seed model's
  1:4 ratio to the threads bar.
* ``prelude_cache_discount`` is the measured share of state bytes the
  resident-prelude protocol kept off the wire:
  ``saved / (saved + shipped)``.
* ``compiled_speedup`` is the measured compiled-over-interpreted step
  rate from :meth:`Diagnostics.payload_feedback`.

Recovery-inflated regions (non-zero ``retries`` / ``failovers`` /
``faults_injected``) are excluded wholesale: their timings measure the
fault injector and the retry ladder, not the machine.
"""

import dataclasses
import json
import math
import os

from repro.planner.machine import DEFAULT_MACHINE, MachineModel

#: Version of the profile file's JSON shape.  A mismatched (or
#: malformed) file is ignored on load — a stale profile must degrade to
#: "no measurements yet", never crash session construction.
PROFILE_SCHEMA = 1

#: EWMA weight of a *new* sample.  Overhead samples are run-level
#: means (see ``_observe_overheads``), so 0.5 converges within a few
#: runs (the bench gate requires agreement after 3) while still
#: damping run-to-run noise.
DECAY = 0.5

#: A sample further than this factor from the running estimate is
#: rejected once the estimate has settled (``OUTLIER_MIN_SAMPLES``
#: accepted samples) — one GC pause or pool respawn inside a region
#: must not poison the model.
OUTLIER_FACTOR = 8.0
OUTLIER_MIN_SAMPLES = 3

#: The seed model's serial:threads cost-bar ratio (512:2048); the
#: serial bar is derived from the measured dispatch overhead through
#: it rather than estimated independently (a never-dispatched loop has
#: no observable serial-dispatch cost).
_SERIAL_RATIO = (
    DEFAULT_MACHINE.serial_region_cost / DEFAULT_MACHINE.threads_region_cost
)

#: MachineModel fields the store calibrates, with their positivity
#: floors/ceilings (property: a calibrated coefficient is never
#: non-positive, and the discount never reaches 1.0 — a warm dispatch
#: always costs *something*).
_COEFFICIENT_BOUNDS = {
    "payload_cost_per_byte": (1e-9, None),
    "serial_region_cost": (1.0, None),
    "threads_region_cost": (1.0, None),
    "prelude_cache_discount": (0.01, 0.99),
    "compiled_speedup": (0.1, None),
}

#: Minimum bytes a dispatch must have shipped before its overhead
#: yields a ``payload_cost_per_byte`` sample.  A warm repeat ships a
#: prelude *delta* of a few hundred bytes; dividing dispatch overhead
#: by that denominator says nothing about wire cost, and one such
#: sample can whipsaw the EWMA by an order of magnitude.  Below the
#: floor the overhead is attributed entirely to fixed dispatch.
PAYLOAD_SAMPLE_FLOOR = 1024

#: Per-label region-feedback fields persisted per program key.
_REGION_FIELDS = ("payload_bytes", "prelude_warm", "compiled_speedup")


def _is_recovery_inflated(region):
    """True when the region's wall time includes retry/failover work."""
    return bool(
        region.get("retries")
        or region.get("failovers")
        or region.get("faults_injected")
    )


def _usable(sample):
    return (
        isinstance(sample, (int, float))
        and not isinstance(sample, bool)
        and math.isfinite(sample)
        and sample > 0
    )


class CalibrationStore:
    """Measured MachineModel coefficients + per-program region feedback.

    One store per session (or one per profile file, shared by many
    sessions through :meth:`save`/:meth:`load`).  ``version`` increments
    on every accepted observation; the session folds it into the cache
    keys of the calibration-affected stages so a fresh observation
    re-plans without rebuilding the dependence graphs.
    """

    def __init__(self, path=None):
        self.path = path
        self.coefficients = {}  # name -> {"value", "samples", "rejected"}
        self.programs = {}  # program key -> {label -> {field -> ewma}}
        self.runs = 0
        self.version = 0
        if path:
            self.load()

    # -- EWMA plumbing ---------------------------------------------------------

    def _entry(self, name):
        return self.coefficients.setdefault(
            name, {"value": 0.0, "samples": 0, "rejected": 0}
        )

    def _update(self, name, sample):
        """Fold one coefficient sample in; returns True when accepted."""
        if not _usable(sample):
            return False
        lo, hi = _COEFFICIENT_BOUNDS[name]
        sample = max(lo, sample)
        if hi is not None:
            sample = min(hi, sample)
        entry = self._entry(name)
        if entry["samples"] >= OUTLIER_MIN_SAMPLES and entry["value"] > 0:
            ratio = sample / entry["value"]
            if ratio > OUTLIER_FACTOR or ratio < 1.0 / OUTLIER_FACTOR:
                entry["rejected"] += 1
                return False
        if entry["samples"] == 0:
            entry["value"] = sample
        else:
            entry["value"] = (1.0 - DECAY) * entry["value"] + DECAY * sample
        entry["samples"] += 1
        return True

    def _update_region(self, program_key, label, field, sample):
        if sample is None or not math.isfinite(sample) or sample < 0:
            return False
        regions = self.programs.setdefault(program_key, {})
        entry = regions.setdefault(label, {})
        previous = entry.get(field)
        entry[field] = (
            sample if previous is None
            else (1.0 - DECAY) * previous + DECAY * sample
        )
        return True

    # -- observation -----------------------------------------------------------

    def observe_run(self, parallel_regions, program_key=None):
        """Distill one run's region stats into coefficient samples.

        Returns True when anything was accepted (and ``version`` moved).
        Recovery-inflated regions are dropped before any estimator sees
        them, so faulted runs never poison the model.
        """
        clean = [
            region for region in parallel_regions
            if not _is_recovery_inflated(region)
        ]
        if not clean:
            return False
        accepted = self._observe_overheads(clean)
        accepted |= self._observe_feedback(clean, program_key)
        if accepted:
            self.runs += 1
            self.version += 1
        return accepted

    def _steps_per_second(self, regions):
        steps = seconds = 0.0
        for region in regions:
            for worker in region.get("per_worker", ()):
                if worker.get("steps") and worker.get("seconds", 0.0) > 0:
                    steps += worker["steps"]
                    seconds += worker["seconds"]
        return steps / seconds if seconds > 0 else None

    def _observe_overheads(self, regions):
        """Dispatch-overhead estimators (threads / serial / per-byte).

        One sample per *run*, not per dispatch: a single dispatch's
        wall-minus-compute overhead is millisecond-scale scheduling
        jitter, while the mean over a run's dozens of dispatches is a
        usable signal.  The EWMA then smooths run-means across runs.
        """
        rate = self._steps_per_second(regions)
        if not rate:
            return False
        dispatch_steps = []  # fixed-dispatch overhead, one per dispatch
        wire_steps = 0.0     # overhead attributed to serialization
        wire_bytes = 0
        saved_bytes = shipped_bytes = 0
        for region in regions:
            seconds = region.get("seconds", 0.0)
            per_worker = region.get("per_worker", ())
            compute = max(
                (worker.get("seconds", 0.0) for worker in per_worker),
                default=0.0,
            )
            overhead = seconds - compute
            if compute <= 0 or overhead <= 0:
                continue  # untimed workers (simulated oracle) or noise
            overhead_steps = overhead * rate
            payload_bytes = region.get("payload_bytes", 0)
            if region.get("payloads") and payload_bytes >= PAYLOAD_SAMPLE_FLOOR:
                # Processes dispatch: half the overhead is attributed to
                # fixed dispatch, half to putting the bytes on the wire.
                dispatch_steps.append(overhead_steps / 2.0)
                wire_steps += overhead_steps / 2.0
                wire_bytes += payload_bytes
            elif region.get("payloads"):
                # A warm repeat shipped only a tiny prelude delta: the
                # overhead is all fixed dispatch, and overhead/bytes
                # would be a garbage per-byte sample.
                dispatch_steps.append(overhead_steps)
            elif "threads" in region.get("backend", "") or (
                region.get("backend") == "serial"
            ):
                dispatch_steps.append(overhead_steps)
            saved = region.get("prelude_bytes_saved", 0)
            if region.get("prelude_hits") and saved > 0:
                saved_bytes += saved
                shipped_bytes += payload_bytes
        accepted = False
        if dispatch_steps:
            bar = sum(dispatch_steps) / len(dispatch_steps)
            accepted |= self._update("threads_region_cost", bar)
            accepted |= self._update(
                "serial_region_cost", bar * _SERIAL_RATIO
            )
        if wire_bytes:
            accepted |= self._update(
                "payload_cost_per_byte", wire_steps / wire_bytes
            )
        if saved_bytes:
            accepted |= self._update(
                "prelude_cache_discount",
                saved_bytes / (saved_bytes + shipped_bytes),
            )
        return accepted

    def _observe_feedback(self, regions, program_key):
        """Per-label wire feedback + the global compiled-speedup prior."""
        from repro.pipeline.diagnostics import Diagnostics

        scratch = Diagnostics()
        for region in regions:
            scratch.record_parallel(region)
        payload_bytes, prelude_warm, compiled_speedup, _ = (
            scratch.payload_feedback()
        )
        accepted = False
        for speedup in compiled_speedup.values():
            accepted |= self._update("compiled_speedup", speedup)
        if program_key is not None:
            for label, value in payload_bytes.items():
                accepted |= self._update_region(
                    program_key, label, "payload_bytes", float(value)
                )
            for label, value in prelude_warm.items():
                accepted |= self._update_region(
                    program_key, label, "prelude_warm", value
                )
            for label, value in compiled_speedup.items():
                accepted |= self._update_region(
                    program_key, label, "compiled_speedup", value
                )
        return accepted

    # -- projection ------------------------------------------------------------

    @property
    def observed(self):
        return any(
            entry["samples"] for entry in self.coefficients.values()
        )

    def measured_coefficients(self):
        """name -> (value, samples) for coefficients with observations."""
        return {
            name: (entry["value"], entry["samples"])
            for name, entry in sorted(self.coefficients.items())
            if entry["samples"]
        }

    def calibrated_machine(self, base=None):
        """``base`` with every measured coefficient replacing its prior.

        Integer-typed thresholds round (floored at 1); every projected
        value respects the positivity bounds, so the returned model is
        always a legal planning input.
        """
        base = base if base is not None else DEFAULT_MACHINE
        changes = {}
        for name, (value, _samples) in self.measured_coefficients().items():
            lo, hi = _COEFFICIENT_BOUNDS[name]
            value = max(lo, value)
            if hi is not None:
                value = min(hi, value)
            if isinstance(getattr(base, name), int):
                value = max(1, int(round(value)))
            changes[name] = value
        return dataclasses.replace(base, **changes) if changes else base

    def region_feedback(self, program_key):
        """``(payload_bytes, prelude_warm, compiled_speedup)`` label maps.

        The same shape ``diagnostics.payload_feedback()`` produces (sans
        the recovery ledger), ready for ``optimize_plan``; empty dicts
        when the program was never observed.
        """
        regions = self.programs.get(program_key, {})
        result = tuple(
            {
                label: entry[field]
                for label, entry in regions.items()
                if field in entry
            }
            for field in _REGION_FIELDS
        )
        payload_bytes, prelude_warm, compiled_speedup = result
        payload_bytes = {
            label: int(round(value))
            for label, value in payload_bytes.items()
        }
        return payload_bytes, prelude_warm, compiled_speedup

    # -- persistence -----------------------------------------------------------

    def to_dict(self):
        return {
            "schema": PROFILE_SCHEMA,
            "runs": self.runs,
            "version": self.version,
            "machine": {
                name: dict(entry)
                for name, entry in sorted(self.coefficients.items())
            },
            "programs": {
                key: {label: dict(entry) for label, entry in regions.items()}
                for key, regions in sorted(self.programs.items())
            },
        }

    def from_dict(self, data):
        if not isinstance(data, dict) or data.get("schema") != PROFILE_SCHEMA:
            return False
        self.runs = int(data.get("runs", 0))
        self.version = int(data.get("version", self.runs))
        self.coefficients = {}
        for name, entry in data.get("machine", {}).items():
            if name not in _COEFFICIENT_BOUNDS:
                continue  # a newer writer's coefficient: skip, don't crash
            value = entry.get("value")
            if not _usable(value):
                continue
            self.coefficients[name] = {
                "value": float(value),
                "samples": int(entry.get("samples", 1)),
                "rejected": int(entry.get("rejected", 0)),
            }
        self.programs = {
            key: {
                label: {
                    field: float(value)
                    for field, value in entry.items()
                    if field in _REGION_FIELDS
                    and isinstance(value, (int, float))
                }
                for label, entry in regions.items()
            }
            for key, regions in data.get("programs", {}).items()
        }
        return True

    def load(self, path=None):
        """Read the profile file; a missing/stale/corrupt file is empty."""
        path = path if path is not None else self.path
        if not path or not os.path.exists(path):
            return False
        try:
            data = json.loads(open(path, encoding="utf-8").read())
        except (OSError, ValueError):
            return False
        return self.from_dict(data)

    def save(self, path=None):
        path = path if path is not None else self.path
        if not path:
            return None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -- reporting -------------------------------------------------------------

    def describe(self, base=None):
        """Printable calibrated-vs-static coefficient table."""
        base = base if base is not None else DEFAULT_MACHINE
        lines = [
            f"calibration profile: {self.path or '(in-memory)'} — "
            f"{self.runs} run(s) observed"
        ]
        header = (
            f"{'coefficient':24} {'static':>12} {'calibrated':>12} "
            f"{'samples':>8} {'rejected':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        calibrated = self.calibrated_machine(base)
        for name in sorted(_COEFFICIENT_BOUNDS):
            entry = self.coefficients.get(name)
            static = getattr(base, name)
            if entry and entry["samples"]:
                measured = getattr(calibrated, name)
                shown = (
                    f"{measured:>12.4g}" if isinstance(measured, float)
                    else f"{measured:>12}"
                )
                lines.append(
                    f"{name:24} {static:>12} {shown} "
                    f"{entry['samples']:>8} {entry['rejected']:>9}"
                )
            else:
                lines.append(
                    f"{name:24} {static:>12} {'(static)':>12} "
                    f"{0:>8} {0:>9}"
                )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<CalibrationStore path={self.path!r} runs={self.runs} "
            f"coefficients={len(self.measured_coefficients())}>"
        )


@dataclasses.dataclass
class ReplanContext:
    """Everything a mid-run replan needs to re-derive cost decisions.

    Built by :meth:`repro.Session.run` for adaptive executions and
    handed to the :class:`~repro.runtime.executor.ParallelInterpreter`.
    ``plan`` is the *pre-optimization* base plan: each replan re-runs
    the full ``optimize_plan`` pipeline at ``level`` against it with
    the freshly calibrated ``machine`` — the PS-PDG legality verdicts
    are re-derived identically, so only cost-model-driven choices can
    move.  ``predicted_bytes`` carries the per-label byte assumptions
    the original plan was priced with (for divergence detection).
    """

    function: object
    module: object
    pdg: object
    pspdg: object
    plan: object
    level: object
    machine: object
    loops: object = None
    store: CalibrationStore = None
    program_key: str = None
    predicted_bytes: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.store is None:
            self.store = CalibrationStore()
