"""Loop classification: SCCs of the loop dependence subgraph (paper §6.1).

Following the paper's methodology: "The subset of a dependence graph
(PS-PDG or PDG) for a given loop is analyzed to identify strongly-connected
components (SCC) with loop-carried dependences. ... If a loop can be
parallelized as DOALL (i.e., no loop-carried dependences with a known trip
count), then it is only considered as DOALL.  For non-DOALL loops, the
compiler considers HELIX and DSWP."
"""

import dataclasses

from repro.analysis.deptests import constant_trip_count
from repro.analysis.scc import strongly_connected_components


@dataclasses.dataclass
class SCCInfo:
    """One strongly-connected component of a loop's dependence subgraph."""

    instructions: list
    uids: frozenset
    is_sequential: bool  # holds a loop-carried directed dependence inside

    @property
    def size(self):
        return len(self.instructions)


@dataclasses.dataclass
class LoopClassification:
    """Everything the planner needs to know about one loop under one view."""

    loop: object
    view_name: str
    trip_count_known: bool
    sccs: list
    serialized_uids: frozenset  # orderless mutual-exclusion work
    carried_edge_count: int

    @property
    def sequential_sccs(self):
        return [s for s in self.sccs if s.is_sequential]

    @property
    def doall_legal(self):
        """DOALL: no sequential SCC and a known trip count.

        Orderless (serialized_uids) work does not block DOALL — it runs
        under a lock in any order, exactly like the critical sections the
        OpenMP source plan itself uses.
        """
        return self.trip_count_known and not self.sequential_sccs

    def sequential_uids(self):
        uids = set()
        for scc in self.sequential_sccs:
            uids.update(scc.uids)
        return frozenset(uids)


def classify_loop(view, loop):
    """Classify ``loop`` under the dependence ``view``."""
    instructions = view.loop_instructions(loop)
    node_set = set(instructions)
    serialized = view.serialized_uids(loop)

    adjacency = {inst: [] for inst in instructions}
    carried_pairs = set()
    for src, dst in view.carried_edges(loop):
        if src in node_set and dst in node_set:
            # Orderless work never contributes carried *order* constraints;
            # its mutual exclusion is accounted separately.
            if src.uid in serialized and dst.uid in serialized:
                continue
            adjacency[src].append(dst)
            carried_pairs.add((src, dst))
    for src, dst in view.intra_edges(loop):
        if src in node_set and dst in node_set:
            adjacency[src].append(dst)

    components = strongly_connected_components(instructions, adjacency)
    sccs = []
    for component in components:
        members = set(component)
        sequential = any(
            (src, dst) in carried_pairs
            for src in component
            for dst in adjacency[src]
            if dst in members
        )
        sccs.append(
            SCCInfo(
                instructions=list(component),
                uids=frozenset(inst.uid for inst in component),
                is_sequential=sequential,
            )
        )

    return LoopClassification(
        loop=loop,
        view_name=view.name,
        trip_count_known=constant_trip_count(loop) is not None,
        sccs=sccs,
        serialized_uids=serialized,
        carried_edge_count=len(carried_pairs),
    )
