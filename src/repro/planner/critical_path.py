"""Ideal-machine critical path of a program under a parallelization plan.

Paper §6.3: "we measure, via an emulator, the critical path of the
available parallelism on an ideal machine with unlimited cores, zero cost
communication, and perfect memory access ... computed as the number of
dynamic LLVM instructions that must run sequentially given a
parallelization plan."

The evaluation walks the dynamic loop-nest profile bottom-up:

* sequential composition sums;
* a DOALL loop costs ``max(max_iteration_cost, serialized_work_sum)`` —
  iterations overlap fully, but orderless critical-section instances
  cannot overlap each other;
* a HELIX loop costs ``sum(sequential_segment_work) + max(parallel
  remainder of one iteration)`` — sequential segments execute in iteration
  order while the parallel parts of different iterations overlap;
* a DSWP pipeline costs ``max(stage totals) + one-iteration fill``;
* nested loops recurse with their own plans (hierarchical parallelism).

Costs are dynamic instruction counts; on the ideal machine privatization,
reduction merges, and communication are free, matching the paper's model
(they are free *for every abstraction*, so comparisons are unaffected).
"""

from repro.planner.plans import (
    TECH_DOALL,
    TECH_DSWP,
    TECH_HELIX,
)


class CriticalPathEvaluator:
    """Evaluates one :class:`ProgramPlan` over one dynamic profile."""

    def __init__(self, profile, plan):
        self.profile = profile
        self.plan = plan

    def evaluate(self):
        """Critical path (dynamic instructions) of the whole execution."""
        return self._iteration_path(self.profile.root)

    # -- recursion over the profile tree ------------------------------------

    def _iteration_path(self, iteration):
        total = iteration.direct_total()
        for child in iteration.children:
            total += self._instance_path(child)
        return total

    def _instance_path(self, instance):
        loop_plan = self.plan.plan_for(instance.header_name)
        iterations = instance.iterations
        if loop_plan is None or loop_plan.technique not in (
            TECH_DOALL,
            TECH_HELIX,
            TECH_DSWP,
        ):
            return sum(self._iteration_path(it) for it in iterations)

        if loop_plan.technique == TECH_DOALL:
            locked = loop_plan.serialized_uids | loop_plan.sequential_uids
            per_iteration = [self._iteration_path(it) for it in iterations]
            serialized_sum = sum(
                self._sequential_filtered(it, locked) for it in iterations
            )
            return max(max(per_iteration, default=0), serialized_sum)

        if loop_plan.technique == TECH_HELIX:
            sequential = (
                loop_plan.sequential_uids | loop_plan.serialized_uids
            )
            segment_sum = sum(
                self._sequential_filtered(it, sequential)
                for it in iterations
            )
            parallel_max = max(
                (
                    self._iteration_excluding(it, sequential)
                    for it in iterations
                ),
                default=0,
            )
            return segment_sum + parallel_max

        # DSWP: each stage streams all iterations; slowest stage dominates,
        # plus one iteration of pipeline fill.
        stage_totals = [
            sum(
                self._sequential_filtered(it, stage) for it in iterations
            )
            for stage in loop_plan.stage_groups
        ]
        fill = max(
            (self._iteration_path(it) for it in iterations), default=0
        )
        return max(stage_totals, default=0) + fill

    # -- filtered accounting ------------------------------------------------------

    def _sequential_filtered(self, iteration, uids):
        """Work of one iteration restricted to ``uids``, fully serialized.

        Nested loop instances wholly inside the filter contribute their
        entire dynamic total (they run under the lock / inside the
        sequential segment).
        """
        total = iteration.count_of(uids)
        for child in iteration.children:
            child_uids = self.plan.loop_uids.get(
                child.header_name, frozenset()
            )
            if child_uids and child_uids <= uids:
                total += child.total()
            elif child_uids & uids:
                total += sum(
                    self._sequential_filtered(it, uids)
                    for it in child.iterations
                )
        return total

    def _iteration_excluding(self, iteration, excluded):
        """Critical path of an iteration with ``excluded`` work removed."""
        total = iteration.direct_total() - iteration.count_of(excluded)
        for child in iteration.children:
            child_uids = self.plan.loop_uids.get(
                child.header_name, frozenset()
            )
            if child_uids and child_uids <= excluded:
                continue
            if child_uids & excluded:
                total += sum(
                    self._iteration_excluding(it, excluded)
                    for it in child.iterations
                )
            else:
                total += self._instance_path(child)
        return total


def critical_path(profile, plan):
    """Convenience wrapper."""
    return CriticalPathEvaluator(profile, plan).evaluate()
