"""End-to-end experiment drivers for the paper's evaluation (§6).

``prepare_benchmark`` runs the whole pipeline once for a workload module
(profile -> PDG -> PS-PDG -> views); ``fig13_options`` and
``fig14_critical_paths`` then regenerate the two result figures for that
workload.
"""

import dataclasses

from repro.analysis.alias import AliasAnalysis
from repro.analysis.loops import find_natural_loops
from repro.core.builder import PSPDGBuilder
from repro.emulator.interp import Interpreter
from repro.emulator.profile import Profiler
from repro.planner.critical_path import CriticalPathEvaluator
from repro.planner.machine import DEFAULT_MACHINE
from repro.planner.options import count_options
from repro.planner.plans import abstraction_plan, openmp_source_plan
from repro.planner.views import JKView, PDGView, PSPDGView


@dataclasses.dataclass
class BenchmarkSetup:
    """Everything the experiments need about one workload."""

    name: str
    module: object
    function: object
    profile: object
    execution: object  # ExecutionResult
    pdg: object
    pspdg: object
    loops: list
    views: dict  # abstraction name -> DependenceView


def prepare_benchmark(name, module, function_name="main"):
    """Profile the workload and build every abstraction's view of it."""
    interpreter = Interpreter(module)
    execution = interpreter.run(function_name, profiler=Profiler(function_name))
    function = module.function(function_name)

    alias = AliasAnalysis(module)
    builder = PSPDGBuilder(function, module, alias)
    pspdg = builder.build()
    pdg = builder.pdg
    loops = find_natural_loops(function)

    views = {
        "PDG": PDGView(function, module, pdg, alias),
        "J&K": JKView(function, module, pdg, pspdg, alias),
        "PS-PDG": PSPDGView(function, module, pdg, pspdg, alias),
    }
    return BenchmarkSetup(
        name=name,
        module=module,
        function=function,
        profile=execution.profile,
        execution=execution,
        pdg=pdg,
        pspdg=pspdg,
        loops=loops,
        views=views,
    )


def fig13_options(setup, machine=DEFAULT_MACHINE, min_coverage=0.01):
    """Fig. 13: parallelization options per abstraction for one benchmark."""
    return count_options(
        setup.name,
        setup.function,
        setup.loops,
        setup.profile,
        setup.views,
        machine,
        min_coverage,
    )


def fig14_critical_paths(setup):
    """Fig. 14: critical path per abstraction plus reduction over OpenMP.

    Returns ``{abstraction: {"critical_path": int, "speedup": float}}``
    including the sequential execution and the OpenMP source plan.
    """
    profile = setup.profile

    def evaluator_factory(plan):
        return CriticalPathEvaluator(profile, plan)

    results = {}
    sequential_cp = profile.total()
    results["Sequential"] = {"critical_path": sequential_cp, "speedup": None}

    openmp_plan = openmp_source_plan(setup.function)
    openmp_cp = CriticalPathEvaluator(profile, openmp_plan).evaluate()
    results["OpenMP"] = {
        "critical_path": openmp_cp,
        "speedup": 1.0,
        "plan": openmp_plan,
    }

    hierarchy = {"PDG": False, "J&K": True, "PS-PDG": True}
    all_loops = {"PDG": False, "J&K": False, "PS-PDG": True}
    for name, view in setup.views.items():
        plan = abstraction_plan(
            name,
            setup.function,
            view,
            profile,
            hierarchical_inner=hierarchy[name],
            evaluator_factory=evaluator_factory,
            plan_all_loops=all_loops[name],
        )
        cp = CriticalPathEvaluator(profile, plan).evaluate()
        results[name] = {
            "critical_path": cp,
            "speedup": openmp_cp / cp if cp else float("inf"),
            "plan": plan,
        }
    return results


def format_fig13_row(report):
    """One printable row per abstraction (matches the figure's bars)."""
    order = ["OpenMP", "PDG", "J&K", "PS-PDG"]
    return {name: report.totals.get(name, 0) for name in order}


def format_fig14_row(results):
    order = ["PDG", "J&K", "PS-PDG"]
    return {name: results[name]["speedup"] for name in order}
