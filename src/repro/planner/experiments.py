"""End-to-end experiment drivers for the paper's evaluation (§6).

.. deprecated::
    The free functions here (``prepare_benchmark``, ``fig13_options``,
    ``fig14_critical_paths``) predate :class:`repro.Session`, which owns
    the pipeline, caches every stage, and exposes the same queries as
    ``session.options()`` / ``session.critical_paths()`` /
    ``session.plan()``.  They remain as thin delegating shims so existing
    callers keep working, but new code should construct a ``Session``.
"""

import dataclasses
import warnings

from repro.core.model import PSPDG
from repro.emulator.interp import ExecutionResult
from repro.emulator.profile import FunctionProfile
from repro.ir.function import Function, Module
from repro.pdg.graph import PDG


@dataclasses.dataclass(slots=True)
class BenchmarkSetup:
    """Everything the experiments need about one workload.

    A typed snapshot of one :class:`repro.Session`'s artifacts; the
    session itself rides along so the figure shims hit its cache instead
    of recomputing.
    """

    name: str
    session: "Session"  # repro.session.Session (imported lazily: cycle)
    module: Module
    function: Function
    profile: FunctionProfile
    execution: ExecutionResult
    pdg: PDG
    pspdg: PSPDG
    loops: list
    views: dict  # abstraction name -> DependenceView


def _deprecated(old, new):
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def prepare_benchmark(name, module, function_name="main"):
    """Profile the workload and build every abstraction's view of it.

    .. deprecated:: use ``Session.from_module(module, name=...)``.
    """
    from repro.session import Session

    _deprecated("prepare_benchmark()", "repro.Session.from_module()")
    session = Session.from_module(
        module, name=name, function_name=function_name
    )
    return session.benchmark_setup()


def _session_of(setup):
    session = getattr(setup, "session", None)
    if session is None:
        raise TypeError(
            "BenchmarkSetup without a session; construct it via "
            "Session.benchmark_setup() or prepare_benchmark()"
        )
    return session


def fig13_options(setup, machine=None, min_coverage=0.01):
    """Fig. 13: parallelization options per abstraction for one benchmark.

    .. deprecated:: use ``session.options(machine, min_coverage)``.
    """
    _deprecated("fig13_options()", "Session.options()")
    return _session_of(setup).options(machine, min_coverage)


def fig14_critical_paths(setup):
    """Fig. 14: critical path per abstraction plus reduction over OpenMP.

    Returns ``{abstraction: {"critical_path": int, "speedup": float}}``
    including the sequential execution and the OpenMP source plan.

    .. deprecated:: use ``session.critical_paths()``.
    """
    _deprecated("fig14_critical_paths()", "Session.critical_paths()")
    return _session_of(setup).critical_paths()


def format_fig13_row(report):
    """One printable row per abstraction (matches the figure's bars)."""
    order = ["OpenMP", "PDG", "J&K", "PS-PDG"]
    return {name: report.totals.get(name, 0) for name in order}


def format_fig14_row(results):
    order = ["PDG", "J&K", "PS-PDG"]
    return {name: results[name]["speedup"] for name in order}
