"""Machine model used by the option enumeration (paper §6.2).

The paper enumerates options "for a 56 core machine" with "8 chunk sizes
considered" for DOALL.  The model is a plain value object so experiments
can sweep it.
"""

import dataclasses


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """Core count and the DOALL chunk sizes a plan may choose from.

    The two cost thresholds drive the small-region serialization pass
    (:mod:`repro.opt.serialize`): a parallel region whose statically
    estimated dynamic cost (instructions executed per entry, inner trip
    counts multiplied through) falls below ``serial_region_cost`` is not
    worth any dispatch and runs sequentially; below
    ``threads_region_cost`` it is worth threads but never worth
    process-pool frame pickling.
    """

    cores: int = 56
    chunk_sizes: tuple = (1, 2, 4, 8, 16, 32, 64, 128)
    serial_region_cost: int = 512
    threads_region_cost: int = 2048

    @property
    def chunk_choices(self):
        return len(self.chunk_sizes)


DEFAULT_MACHINE = MachineModel()
