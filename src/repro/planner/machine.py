"""Machine model used by the option enumeration (paper §6.2).

The paper enumerates options "for a 56 core machine" with "8 chunk sizes
considered" for DOALL.  The model is a plain value object so experiments
can sweep it.
"""

import dataclasses

#: Version of the :meth:`MachineModel.to_dict` wire shape.  Bump when a
#: field changes meaning; :meth:`MachineModel.from_dict` refuses
#: mismatched payloads so a stale calibration profile can never be
#: silently misread as current coefficients.
MACHINE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """Core count and the DOALL chunk sizes a plan may choose from.

    The two cost thresholds drive the small-region serialization pass
    (:mod:`repro.opt.serialize`): a parallel region whose statically
    estimated dynamic cost (instructions executed per entry, inner trip
    counts multiplied through) falls below ``serial_region_cost`` is not
    worth any dispatch and runs sequentially; below
    ``threads_region_cost`` it is worth threads but never worth
    process-pool frame pickling.

    ``payload_cost_per_byte`` converts a region's *measured* bytes on
    the process-pool wire (the runtime's ``payload_bytes`` stat) into
    dynamic-instruction-equivalents: pickling runs a few orders of
    magnitude faster per byte than the interpreter runs per step, so
    one shipped byte costs a small fraction of a step.  The
    serialization pass adds :meth:`serialization_cost` to the
    ``threads_region_cost`` bar when measured bytes are available,
    raising the bar for regions whose payloads proved expensive.

    ``prelude_cache_discount`` is the fraction of that byte cost a
    *warm* dispatch avoids under the runtime's resident-prelude
    protocol (wire format v2): once the pool workers hold a region's
    shared state resident, repeat dispatches ship dirty deltas instead
    of the prelude, so the small-region pass must stop penalizing
    regions whose measured hit rate shows their prelude is cached.
    """

    cores: int = 56
    chunk_sizes: tuple = (1, 2, 4, 8, 16, 32, 64, 128)
    serial_region_cost: int = 512
    threads_region_cost: int = 2048
    payload_cost_per_byte: float = 0.01
    prelude_cache_discount: float = 0.75
    #: How much faster a worker retires one region step through an
    #: exec-compiled chunk body than through the interpreter's dispatch
    #: loop.  Applied by the small-region serialization pass when region
    #: compilation is on: compute gets cheaper, dispatch overhead does
    #: not, so borderline regions tip toward serialization.  The default
    #: is the model's prior; callers with bench feedback pass a
    #: *measured* value through ``speedup`` instead.
    compiled_speedup: float = 3.0

    def effective_region_cost(self, cost, compiled=False, speedup=None):
        """A region's estimated per-entry cost under the execution mode.

        ``speedup`` overrides the model's assumed ``compiled_speedup``
        with a measured one (``diagnostics.payload_feedback()``).  The
        result is clamped to at least 1: a region that executes any
        work never costs zero, and the earlier truncating ``int()``
        rounded every ``cost < speedup`` region down to free — which
        let the serialization pass misprice tiny-but-real regions.
        """
        if not compiled or cost is None:
            return cost
        effective = speedup if speedup else self.compiled_speedup
        return max(1, int(cost / max(effective, 1.0)))

    @property
    def chunk_choices(self):
        return len(self.chunk_sizes)

    def serialization_cost(self, payload_bytes, warm_fraction=0.0):
        """Measured wire bytes -> estimated instruction-equivalents.

        ``warm_fraction`` is the share of the region's dispatches served
        from resident worker state (``prelude_hits / payloads``); each
        warm dispatch pays only ``1 - prelude_cache_discount`` of the
        per-byte cost.
        """
        if not payload_bytes or payload_bytes < 0:
            return 0
        warm = min(max(warm_fraction, 0.0), 1.0)
        discount = 1.0 - self.prelude_cache_discount * warm
        # Clamp like effective_region_cost: bytes actually shipped are
        # never free, even when ``bytes * cost_per_byte`` truncates to 0.
        return max(1, int(payload_bytes * self.payload_cost_per_byte
                          * discount))

    def tile_iterations(self, cost, trip):
        """Minimum iterations one payload should carry, or ``None``.

        A dispatched chunk pays roughly ``threads_region_cost`` of fixed
        overhead (frame setup, scheduling, and for the process pool a
        wire round-trip the resident-prelude cache only partly hides).
        With a static per-entry region cost and trip count we know the
        per-iteration work, so the smallest chunk whose compute
        amortizes that overhead is ``overhead / per_iteration_work``.
        ``None`` means "no constraint": unknown cost, or every chunk of
        the natural partition is already big enough.
        """
        if not cost or not trip:
            return None
        per_iteration = cost / trip
        if per_iteration <= 0:
            return None
        tile = -(-self.threads_region_cost // int(max(per_iteration, 1)))
        if tile < 2:
            return None
        return min(tile, trip)

    # -- serialization (the calibration profile's wire shape) ------------------

    def to_dict(self):
        """A JSON-serializable snapshot, tagged with the schema version."""
        data = {"schema": MACHINE_SCHEMA}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a model from :meth:`to_dict` output.

        Raises ``ValueError`` on a missing/mismatched schema tag; unknown
        keys (from a *newer* writer adding fields) are ignored so a
        same-schema profile stays readable.
        """
        schema = data.get("schema")
        if schema != MACHINE_SCHEMA:
            raise ValueError(
                f"machine model schema {schema!r} != {MACHINE_SCHEMA}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
            if key in known
        }
        return cls(**kwargs)


DEFAULT_MACHINE = MachineModel()
