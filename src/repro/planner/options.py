"""Parallelization-option counting (paper §6.2, Fig. 13).

The enumeration rules, each implementing a sentence of §6.2:

* "For DOALL loops, the number of options is at most 56 (cores) x 8 (chunk
  sizes considered)" — :func:`doall_options`.
* "The options available to HELIX is the possible number of sequential
  segments of that loop (a sequential segment is a slice of the loop that
  includes at least one sequential SCC).  Furthermore, we consider running
  these sequential segments in parallel up to 56 cores" —
  :func:`helix_options`: a loop with ``k`` sequential SCCs can be sliced
  into 1..k sequential segments, each choice runnable on up to 56 cores.
* "The options available to DSWP is the number of pipeline stages (each
  stage has at least one SCC) up to 56 cores" — :func:`dswp_options`.
* The OpenMP source plan's options are what environment variables can
  still change: thread count x chunking for each loop the *programmer*
  parallelized — :func:`openmp_options`.

Loops qualify when their run-time coverage is at least 1% (§6.1).
"""

import dataclasses

from repro.frontend.directives import LOOP_INDEPENDENCE_KINDS
from repro.planner.classify import classify_loop
from repro.planner.machine import DEFAULT_MACHINE


def doall_options(machine):
    return machine.cores * machine.chunk_choices


def helix_options(classification, machine):
    sequential = len(classification.sequential_sccs)
    if sequential == 0:
        # No sequential SCC but unknown trip count: one segment layout.
        sequential = 1
    return sequential * machine.cores


def dswp_options(classification, machine):
    stages = min(len(classification.sccs), machine.cores)
    return max(0, stages - 1)  # pipelines need at least two stages


def options_for_loop(classification, machine=DEFAULT_MACHINE):
    """Options one loop contributes under one dependence view."""
    if classification.doall_legal:
        return doall_options(machine)
    return helix_options(classification, machine) + dswp_options(
        classification, machine
    )


def worksharing_annotated_headers(function):
    """Headers of loops the programmer parallelized (worksharing kinds)."""
    headers = set()
    for annotation in function.annotations:
        if (
            annotation.directive.kind in LOOP_INDEPENDENCE_KINDS
            and annotation.loop_header is not None
        ):
            headers.add(annotation.loop_header)
    return headers


def openmp_options(function, loops, machine=DEFAULT_MACHINE):
    """Environment-variable options of the source plan, per loop."""
    annotated = worksharing_annotated_headers(function)
    return {
        loop.header.name: (
            machine.cores * machine.chunk_choices
            if loop.header.name in annotated
            else 0
        )
        for loop in loops
    }


@dataclasses.dataclass
class OptionReport:
    """Per-benchmark option totals for every abstraction (one Fig. 13 bar group)."""

    benchmark: str
    per_loop: dict  # header -> {abstraction -> options}
    totals: dict  # abstraction -> total options

    def rows(self):
        for header in sorted(self.per_loop):
            yield (header, self.per_loop[header])


def candidate_loops(loops, profile, min_coverage=0.01):
    """Loops with >= ``min_coverage`` of the profiled dynamic instructions."""
    total = max(1, profile.total())
    selected = []
    for loop in loops:
        work = sum(
            instance.total()
            for instance in profile.loop_instances(loop.header.name)
        )
        if work / total >= min_coverage:
            selected.append(loop)
    return selected


def count_options(
    benchmark_name,
    function,
    loops,
    profile,
    views,
    machine=DEFAULT_MACHINE,
    min_coverage=0.01,
):
    """Build an :class:`OptionReport` over the given dependence views.

    ``views`` maps abstraction name -> DependenceView.  The "OpenMP"
    abstraction is always included from the source annotations.
    """
    candidates = candidate_loops(loops, profile, min_coverage)
    source_options = openmp_options(function, candidates, machine)

    per_loop = {}
    totals = {"OpenMP": 0}
    for name in views:
        totals[name] = 0
    for loop in candidates:
        header = loop.header.name
        row = {"OpenMP": source_options[header]}
        totals["OpenMP"] += row["OpenMP"]
        for name, view in views.items():
            classification = classify_loop(view, loop)
            row[name] = options_for_loop(classification, machine)
            totals[name] += row[name]
        per_loop[header] = row
    return OptionReport(benchmark_name, per_loop, totals)
