"""Parallelization plans: which loops run how.

A :class:`LoopPlan` fixes the technique for one static loop (DOALL, HELIX,
DSWP, or sequential) together with the uid partitions the critical-path
model needs: lock-serialized (orderless) work, sequential-segment work, and
DSWP stage groups.  A :class:`ProgramPlan` maps loop headers to plans;
unlisted loops run sequentially.

A plan may additionally carry :class:`RegionDescriptor` entries — the
unit the optimization passes (:mod:`repro.opt`) rewrite and the runtime
dispatches.  A fresh plan has no regions; ``repro.opt.optimize_plan``
seeds one region per executable DOALL loop and then fuses, strips
redundant synchronization from, or serializes them.  The runtime's
``recipes_from_plan`` honors ``plan.regions`` when present and falls
back to the one-region-per-loop behavior otherwise.
"""

import dataclasses

from repro.analysis.loops import find_natural_loops
from repro.frontend.directives import LOOP_INDEPENDENCE_KINDS
from repro.planner.classify import classify_loop

TECH_SEQ = "SEQ"
TECH_DOALL = "DOALL"
TECH_HELIX = "HELIX"
TECH_DSWP = "DSWP"


@dataclasses.dataclass
class LoopPlan:
    """Technique + work partitions for one loop."""

    technique: str
    serialized_uids: frozenset = frozenset()  # orderless mutual exclusion
    sequential_uids: frozenset = frozenset()  # HELIX sequential segments
    stage_groups: tuple = ()  # DSWP stages (uid frozensets)


#: ``RegionDescriptor.backend_override`` values the runtime honors.
OVERRIDE_SEQUENTIAL = "sequential"
OVERRIDE_THREADS = "threads"


@dataclasses.dataclass(frozen=True)
class RegionDescriptor:
    """One runtime dispatch unit: one or more fused DOALL loops.

    Attributes:
        headers: member loop headers in control-flow order (>= 1; more
            than one after parallel-region fusion).
        technique: the members' shared technique (currently DOALL only).
        backend_override: ``None`` (run on the configured backend),
            ``"sequential"`` (small-region serialization: the loop is not
            dispatched at all and runs on the sequential interpreter), or
            ``"threads"`` (dispatch, but never pay process-pool pickling).
        removed_sync_uids: annotation uids of ``critical``/``atomic``
            regions proven redundant at this region's loop level; the
            runtime elides their locks.
        outer_header: set by loop interchange — the header of the serial
            loop enclosing the (single) member DOALL loop.  The runtime
            then dispatches the whole nest once, partitioning the *inner*
            iteration space across workers and running each worker's
            slice in outer-major order.
        member_shifts: set by skewed fusion — one integer per member
            header.  Member ``k``'s worker chunks are the base partition
            shifted by ``-member_shifts[k]`` (intersected with the
            iteration space), so a uniform cross-member dependence
            distance lands source and destination on the same worker.
            Empty means all-zero (plain aligned fusion).
        tile: set by the tiling pass — the minimum iterations one
            payload should carry; the runtime caps the worker count at
            ``ceil(trip / tile)`` so small iteration spaces stop paying
            per-payload overhead for near-empty chunks.
        speculative: name of the pass that applied this transform on an
            *inconclusive* static test; the plan must not reach a real
            backend until the simulated oracle validated it.
        witness: human-readable evidence for the side condition — the
            dependence pair a legality predicate proved (or failed to
            prove) independent.
    """

    headers: tuple
    technique: str = TECH_DOALL
    backend_override: str = None
    removed_sync_uids: frozenset = frozenset()
    outer_header: str = None
    member_shifts: tuple = ()
    tile: int = None
    speculative: str = None
    witness: str = None

    @property
    def fused(self):
        return len(self.headers) > 1

    @property
    def label(self):
        if self.outer_header:
            return f"{self.outer_header}/{'+'.join(self.headers)}"
        return "+".join(self.headers)

    def describe(self):
        parts = [self.label, self.technique]
        if self.outer_header:
            parts.append("interchanged")
        if any(self.member_shifts):
            parts.append(
                "skew=" + ",".join(str(s) for s in self.member_shifts)
            )
        if self.tile:
            parts.append(f"tile={self.tile}")
        if self.backend_override:
            parts.append(f"->{self.backend_override}")
        if self.removed_sync_uids:
            parts.append(f"sync-removed={len(self.removed_sync_uids)}")
        if self.speculative:
            parts.append(f"speculative[{self.speculative}]")
        return " ".join(parts)


@dataclasses.dataclass
class ProgramPlan:
    """A full plan for one profiled function."""

    name: str
    loop_plans: dict  # header name -> LoopPlan
    loop_uids: dict  # header name -> frozenset of uids inside the loop
    regions: tuple = ()  # RegionDescriptor dispatch units (opt output)

    def plan_for(self, header_name):
        return self.loop_plans.get(header_name)

    def with_loop_plan(self, header_name, loop_plan):
        # Changing a loop's technique invalidates any derived regions.
        plans = dict(self.loop_plans)
        plans[header_name] = loop_plan
        return ProgramPlan(self.name, plans, self.loop_uids)

    def with_regions(self, regions):
        return ProgramPlan(
            self.name, self.loop_plans, self.loop_uids, tuple(regions)
        )

    def region_for(self, header_name):
        """The descriptor whose member set contains ``header_name``."""
        for region in self.regions:
            if header_name in region.headers:
                return region
        return None

    def describe(self):
        lines = [f"plan {self.name}:"]
        for header in sorted(self.loop_plans):
            plan = self.loop_plans[header]
            lines.append(f"  {header}: {plan.technique}")
        if self.regions:
            lines.append("  regions:")
            for region in self.regions:
                lines.append(f"    {region.describe()}")
        return "\n".join(lines)


def loop_uid_map(function):
    """header name -> frozenset of instruction uids inside that loop."""
    mapping = {}
    for loop in find_natural_loops(function):
        mapping[loop.header.name] = frozenset(
            inst.uid for inst in loop.instructions()
        )
    return mapping


def region_uids(function, kinds):
    """uids of instructions inside directive regions of the given kinds."""
    block_names = set()
    for annotation in function.annotations:
        if annotation.directive.kind in kinds:
            block_names.update(annotation.block_names)
    uids = set()
    for block in function.blocks:
        if block.name in block_names:
            uids.update(inst.uid for inst in block.instructions)
    return frozenset(uids)


def openmp_source_plan(function):
    """The plan the programmer encoded (paper: the baseline of Fig. 14).

    Worksharing-annotated loops run as DOALL with their critical/atomic/
    ordered work serialized across iterations; everything else runs
    sequentially (redundant `parallel`-region execution costs the same as
    one copy on the ideal machine, which the sequential profile already
    reflects).
    """
    sync_uids = region_uids(function, {"critical", "atomic", "ordered"})
    loop_plans = {}
    uid_map = loop_uid_map(function)
    for annotation in function.annotations:
        if (
            annotation.directive.kind in LOOP_INDEPENDENCE_KINDS
            and annotation.loop_header is not None
        ):
            loop_uids = uid_map.get(annotation.loop_header, frozenset())
            loop_plans[annotation.loop_header] = LoopPlan(
                TECH_DOALL, serialized_uids=sync_uids & loop_uids
            )
    return ProgramPlan("OpenMP", loop_plans, uid_map)


def technique_plan(classification, technique):
    """A :class:`LoopPlan` realizing ``technique`` for a classified loop."""
    if technique == TECH_DOALL:
        return LoopPlan(
            TECH_DOALL, serialized_uids=classification.serialized_uids
        )
    if technique == TECH_HELIX:
        return LoopPlan(
            TECH_HELIX,
            serialized_uids=classification.serialized_uids,
            sequential_uids=classification.sequential_uids(),
        )
    if technique == TECH_DSWP:
        return LoopPlan(
            TECH_DSWP,
            stage_groups=tuple(scc.uids for scc in classification.sccs),
        )
    return LoopPlan(TECH_SEQ)


def candidate_techniques(classification):
    """Techniques the paper's methodology considers for a classified loop."""
    if classification.doall_legal:
        return [TECH_DOALL]
    techniques = [TECH_SEQ, TECH_HELIX]
    if len(classification.sccs) >= 2:
        techniques.append(TECH_DSWP)
    return techniques


def abstraction_plan(
    name,
    function,
    view,
    profile,
    hierarchical_inner,
    evaluator_factory,
    plan_all_loops=False,
):
    """Best plan available to one abstraction (paper §6.3 methodology).

    Every *outermost* loop is parallelized with the technique (among those
    the view's SCCs permit) that minimizes the ideal-machine critical
    path.  With ``hierarchical_inner`` (J&K and PS-PDG), inner
    developer-annotated loops additionally run their source plan.  With
    ``plan_all_loops`` (PS-PDG only), *every* loop — annotated or not —
    is considered, innermost first: "the compiler is able to consider all
    loops which meet the parallelization requirements while the
    programmer-encoded parallelization is static" (§6.2).
    """
    uid_map = loop_uid_map(function)
    base_plans = {}
    if hierarchical_inner:
        source = openmp_source_plan(function)
        base_plans.update(source.loop_plans)

    plan = ProgramPlan(name, base_plans, uid_map)
    loops = find_natural_loops(function)
    if plan_all_loops:
        # Innermost-first so outer-loop decisions see inner parallelism.
        candidates = sorted(loops, key=lambda lp: -lp.depth)
    else:
        candidates = [loop for loop in loops if loop.parent is None]
    for loop in candidates:
        classification = classify_loop(view, loop)
        best = None
        for technique in candidate_techniques(classification):
            trial = plan.with_loop_plan(
                loop.header.name, technique_plan(classification, technique)
            )
            cost = evaluator_factory(trial).evaluate()
            if best is None or cost < best[0]:
                best = (cost, technique, trial)
        if best is not None:
            plan = best[2]
    return plan
