"""Dependence views: what each abstraction lets the planner see.

The evaluation compares four abstractions (paper §6.2):

* **OpenMP** — the programmer's plan, no dependence graph at all;
* **PDG** — the sequential PDG over the (sequential interpretation of the)
  program, plus the textbook SCC-breaking analyses a PDG-based
  parallelizer has: induction variables, scalar reductions, sequential
  scalar privatization;
* **J&K** — the PDG improved with worksharing iteration-independence only
  (Jensen & Karlsson, TACO'17): loop-carried dependences removed at
  developer-annotated loops, except those protected by ordering constructs
  or justified only by data-clause semantics the PDG cannot represent;
* **PS-PDG** — the full parallel semantics.

All three graph views answer the same queries, so classification and
option counting are shared.
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.privatization import sequentially_privatizable_objects
from repro.analysis.reductions import find_scalar_reductions
from repro.core.builder import loop_context_label
from repro.pdg.graph import EDGE_MEMORY


class DependenceView:
    """Base: loop-level dependence queries backed by some abstraction."""

    name = "<abstract>"

    def __init__(self, function, module, alias=None):
        self.function = function
        self.module = module

    def loop_instructions(self, loop):
        return [inst for inst in self.function.instructions()
                if loop.contains_instruction(inst)]

    # Queries implemented by subclasses -------------------------------------

    def carried_edges(self, loop):
        """Directed dependences carried at ``loop`` (after this
        abstraction's removals); list of (src_inst, dst_inst)."""
        raise NotImplementedError

    def intra_edges(self, loop):
        """Loop-independent dependences between instructions of ``loop``."""
        raise NotImplementedError

    def serialized_uids(self, loop):
        """Instructions that must not overlap across iterations but may run
        in any order (orderless critical/atomic work) — empty unless the
        abstraction understands orderlessness."""
        return frozenset()

    def removable_objects(self, loop):
        """Objects whose carried deps the planner may break (induction
        variables, recognized reductions, privatizable scalars)."""
        raise NotImplementedError


class _PdgBackedView(DependenceView):
    """Shared machinery for views that filter the sequential PDG."""

    def __init__(self, function, module, pdg, alias=None):
        super().__init__(function, module)
        self.pdg = pdg
        self.alias = alias if alias is not None else AliasAnalysis(module)
        self._removable_cache = {}

    def removable_objects(self, loop):
        key = loop.header.name
        if key not in self._removable_cache:
            removable = set()
            if loop.canonical is not None:
                # Induction variable: its update chain is regenerable.
                removable.add(
                    self.alias.object_for_alloca(loop.canonical.induction)
                )
            for reduction in find_scalar_reductions(
                self.function, self.module, loop, self.alias
            ):
                removable.add(reduction.obj)
            for obj in sequentially_privatizable_objects(
                self.function, self.module, loop, self.alias
            ):
                removable.add(obj)
            self._removable_cache[key] = removable
        return self._removable_cache[key]

    def _edge_visible(self, edge, loop):
        raise NotImplementedError

    def carried_edges(self, loop):
        removable = self.removable_objects(loop)
        result = []
        for edge in self.pdg.edges:
            if loop not in edge.carried_loops:
                continue
            if not self._edge_visible(edge, loop):
                continue
            if edge.obj is not None and edge.obj in removable:
                continue
            result.append((edge.source, edge.destination))
        return result

    def intra_edges(self, loop):
        result = []
        for edge in self.pdg.edges:
            if not edge.loop_independent:
                continue
            if not (
                loop.contains_instruction(edge.source)
                and loop.contains_instruction(edge.destination)
            ):
                continue
            result.append((edge.source, edge.destination))
        return result


class PDGView(_PdgBackedView):
    """The sequential-PDG baseline."""

    name = "PDG"

    def _edge_visible(self, edge, loop):
        return True


class JKView(_PdgBackedView):
    """PDG + worksharing iteration-independence (Jensen & Karlsson).

    Implemented by replaying the PS-PDG builder's relaxation log: only
    relaxations justified purely by the independence declaration
    (feature == "independence") at annotated loops apply; variable
    semantics, orderless criticals, selectors, and task independence do
    not (the PDG has no way to represent them).
    """

    name = "J&K"

    def __init__(self, function, module, pdg, pspdg, alias=None):
        super().__init__(function, module, pdg, alias)
        self.pspdg = pspdg
        self._independent = set()
        for relaxation in pspdg.relaxations:
            if relaxation.feature == "independence":
                for context in relaxation.carried_removed:
                    self._independent.add(
                        (
                            relaxation.source,
                            relaxation.destination,
                            context,
                        )
                    )

    def _edge_visible(self, edge, loop):
        label = loop_context_label(loop.header.name)
        return (edge.source, edge.destination, label) not in self._independent


class PSPDGView(DependenceView):
    """The full PS-PDG view."""

    name = "PS-PDG"

    def __init__(self, function, module, pdg, pspdg, alias=None):
        super().__init__(function, module)
        self.pspdg = pspdg
        # The PS-PDG planner also has every sequential technique available.
        self._pdg_helper = PDGView(function, module, pdg, alias)

    def removable_objects(self, loop):
        return self._pdg_helper.removable_objects(loop)

    def carried_edges(self, loop):
        label = loop_context_label(loop.header.name)
        removable = self.removable_objects(loop)
        result = []
        for edge in self.pspdg.directed_edges:
            if label not in edge.carried_contexts:
                continue
            if edge.kind == "sync":
                continue
            if edge.obj is not None and edge.obj in removable:
                continue
            sources = edge.producer.leaf_instructions()
            destinations = edge.consumer.leaf_instructions()
            for src in sources:
                for dst in destinations:
                    result.append((src, dst))
        return result

    def intra_edges(self, loop):
        result = []
        for edge in self.pspdg.directed_edges:
            if not edge.loop_independent or edge.kind == "sync":
                continue
            sources = edge.producer.leaf_instructions()
            destinations = edge.consumer.leaf_instructions()
            for src in sources:
                for dst in destinations:
                    if loop.contains_instruction(
                        src
                    ) and loop.contains_instruction(dst):
                        result.append((src, dst))
        return result

    def serialized_uids(self, loop):
        """Work that must hold the lock inside ``loop`` (orderless regions).

        Rather than the whole critical region (whose control flow and
        address computations an optimizing compiler hoists outside the
        lock), the serialized set is the conflicting dataflow chain: the
        accesses whose loop-carried dependences the orderless semantics
        relaxed, plus every region instruction on a register path between
        them.  This is the minimum mutual-exclusion work, which is what an
        ideal machine serializes.
        """
        region_members = {}
        for uedge in self.pspdg.undirected_edges:
            for node in (uedge.a, uedge.b):
                members = [
                    inst
                    for inst in node.leaf_instructions()
                    if loop.contains_instruction(inst)
                ]
                if members:
                    region_members[id(node)] = members
        if not region_members:
            return frozenset()

        endpoints = set()
        for relaxation in self.pspdg.relaxations:
            if relaxation.feature != "undirected":
                continue
            endpoints.add(relaxation.source)
            endpoints.add(relaxation.destination)

        uids = set()
        for members in region_members.values():
            member_set = set(members)
            seeds = endpoints & member_set
            if not seeds:
                continue
            # Close over register dataflow between the conflicting
            # endpoints within the region (e.g. the add between the load
            # and the store of a locked update).
            selected = set(seeds)
            changed = True
            while changed:
                changed = False
                for inst in members:
                    if inst in selected:
                        continue
                    feeds = any(
                        op in selected
                        for op in inst.operands
                        if hasattr(op, "opcode")
                    )
                    fed = any(
                        inst in other.operands
                        for other in selected
                        if hasattr(other, "operands")
                    )
                    if feeds and fed:
                        selected.add(inst)
                        changed = True
            uids.update(inst.uid for inst in selected)
        return frozenset(uids)
