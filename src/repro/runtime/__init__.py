"""repro.runtime — deterministic simulated-parallel execution of plans."""

from repro.runtime.executor import (
    LoopParallelization,
    ParallelInterpreter,
    parallelization_from_annotation,
    parallelization_from_pspdg,
    recipes_from_plan,
    run_parallel,
    run_plan,
    run_source_plan,
)

__all__ = [
    "LoopParallelization",
    "ParallelInterpreter",
    "parallelization_from_annotation",
    "parallelization_from_pspdg",
    "recipes_from_plan",
    "run_parallel",
    "run_plan",
    "run_source_plan",
]
