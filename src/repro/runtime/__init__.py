"""repro.runtime — backend-pluggable parallel execution of plans.

Three :class:`ExecutionBackend` implementations execute planned DOALL
loops: ``simulated`` (seeded virtual-thread interleaving — the
race-detection oracle), ``threads`` (real OS threads), and ``processes``
(real OS processes with serialized per-worker frames).  Iteration
partitioning is decided once by a :class:`ChunkScheduler` (``static`` /
``dynamic`` / ``guided``) and shared by every backend.
"""

from repro.runtime.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessesBackend,
    SimulatedBackend,
    ThreadsBackend,
    backend_names,
    get_backend,
)
from repro.runtime.payload import (
    ModuleCodec,
    RegionPayloads,
    WorkerPayload,
    decode_payload,
    encode_region,
    module_codec,
)
from repro.runtime.executor import (
    LoopParallelization,
    ParallelInterpreter,
    RegionParallelization,
    parallelization_from_annotation,
    parallelization_from_pspdg,
    recipes_from_plan,
    run_parallel,
    run_plan,
    run_source_plan,
)
from repro.runtime.schedulers import (
    SCHEDULERS,
    ChunkScheduler,
    DynamicScheduler,
    GuidedScheduler,
    StaticScheduler,
    make_scheduler,
    schedule_names,
)

__all__ = [
    "BACKENDS",
    "ChunkScheduler",
    "DynamicScheduler",
    "ExecutionBackend",
    "GuidedScheduler",
    "LoopParallelization",
    "ModuleCodec",
    "ParallelInterpreter",
    "ProcessesBackend",
    "RegionParallelization",
    "RegionPayloads",
    "SCHEDULERS",
    "SimulatedBackend",
    "StaticScheduler",
    "ThreadsBackend",
    "WorkerPayload",
    "backend_names",
    "decode_payload",
    "encode_region",
    "get_backend",
    "make_scheduler",
    "module_codec",
    "parallelization_from_annotation",
    "parallelization_from_pspdg",
    "recipes_from_plan",
    "run_parallel",
    "run_plan",
    "run_source_plan",
    "schedule_names",
]
