"""Pluggable execution backends for planned DOALL loops.

The :class:`~repro.runtime.executor.ParallelInterpreter` runs a program
sequentially until it reaches a planned loop, builds one privatized
frame per worker, and then hands the region to a backend:

* ``simulated`` — the seeded virtual-thread interleaver.  One Python
  interpreter steps every worker instruction-by-instruction in a
  seed-chosen order, so data races introduced by a *wrong* plan show up
  as real nondeterminism across seeds.  This is the race-detection
  oracle of the conformance suite, not a performance backend.
* ``threads`` — one OS thread per worker
  (:class:`concurrent.futures.ThreadPoolExecutor`).  Workers share the
  interpreter's storage exactly like the simulated machine; critical
  and atomic regions take real :class:`threading.Lock` locks.
* ``processes`` — one OS process per worker (:mod:`multiprocessing`).
  Each region is encoded by the :mod:`repro.runtime.payload` codec
  (wire format v2): the pool workers keep the decoded shared state
  *resident* across dispatches, keyed by a content-hash chain, so a
  steady-state region ships only the slots the parent dirtied since the
  previous dispatch (tracked by the parent interpreter's inter-region
  write log) plus each worker's small frame delta; the full state
  travels only on a cold stream, a worker's prelude miss (same
  miss/retry handshake the module codec uses), or under
  ``VERIFY_PRELUDE``.  The module itself travels as persistent ids
  against a per-pool-worker decoded-module cache, its bytes broadcast
  at most once per pool recycle epoch.  The child executes its
  iterations at full sequential-interpreter speed with a store-path
  write log and sends back its private reduction/lastprivate values
  plus a slot-level diff of the shared storage it wrote — computed from
  the log, then *rolled back* so the resident state returns to the
  parent's pre-dispatch image.  The parent collects every result, then
  applies diffs and merges reductions in worker order, so results are
  deterministic.  Loops whose bodies contain ``critical``/``atomic``
  regions need shared memory and fall back to the ``threads`` backend
  (whose worker shims feed the parent's write log, keeping the
  resident deltas exact).

All backends consume the same :class:`ChunkScheduler` partition, so a
given ``(schedule, chunk, workers)`` triple executes the same
iteration-to-worker assignment everywhere.
"""

import concurrent.futures
import dataclasses
import multiprocessing
import os
import threading
import time

import repro.runtime.payload as payload_codec
from repro.codegen import cache as codegen_cache
from repro.codegen import runtime as codegen_runtime
from repro.emulator.interp import Interpreter, record_write
from repro.ir.instructions import Terminator
from repro.runtime import faults, knobs
from repro.util.errors import EmulationError, PlanError, RegionDispatchError

#: Seconds a worker may wait on one critical-section lock before the
#: threads backend declares the region deadlocked.
_LOCK_TIMEOUT = 30.0

#: Minimum seconds the parent waits for a region's worker processes; the
#: actual allowance scales with the interpreter's step budget (see
#: :func:`_region_allowance`) so long-but-progressing runs are not
#: killed while stuck workers still are.
_PROCESS_TIMEOUT = 120.0

#: Conservative floor on child interpreter throughput (steps/second)
#: used to convert a step budget into a wall-clock allowance.
_MIN_STEPS_PER_SECOND = 50_000


def _region_allowance(max_steps):
    return max(_PROCESS_TIMEOUT, max_steps / _MIN_STEPS_PER_SECOND)


@dataclasses.dataclass
class ParallelRegion:
    """One dispatched region's execution context, as handed to a backend.

    Since the ``repro.opt`` pipeline a region may hold several *fused*
    member loops; every worker's ``segments`` list its chunk of each
    member in order.
    """

    loops: list  # member NaturalLoops (canonical form guaranteed)
    region: object  # RegionParallelization (recipes + opt markers)
    frame: object  # the enclosing (sequential) _Frame
    workers: list  # _Worker instances, one per configured worker
    backend_used: str = None  # filled by the backend (fallbacks differ)
    payloads: int = 0  # process-pool payloads dispatched (processes only)
    payload_bytes: int = 0  # bytes shipped to the pool for this region
    dirty_slots: int = 0  # (object, slot) write marks reported by workers
    naive_payload_bytes: int = 0  # legacy-codec bytes (bench mode only)
    prelude_hits: int = 0  # payloads served from resident worker state
    prelude_misses: int = 0  # payloads retried with the full state attached
    prelude_bytes_saved: int = 0  # estimated state bytes the hits avoided
    retry_payload_bytes: int = 0  # bytes of miss-retry round-trips (timing-
    # dependent: how often pool scheduling let a worker fall behind)
    compiled_chunks: int = 0  # chunks run through exec-compiled bodies
    interpreted_chunks: int = 0  # chunks run through the dispatch loop
    codegen_compiles: int = 0  # fresh lowerings this region caused
    codegen_source_hits: int = 0  # entries rebuilt from cached source
    codegen_fallbacks: int = 0  # lowering refusals/failures
    retries: int = 0  # supervised re-dispatches after infra failures
    failovers: int = 0  # degradation-ladder rung changes this region took
    faults_injected: int = 0  # REPRO_FAULTS scenarios fired on this region
    recovery_ms: float = 0.0  # wall-clock spent respawning/backing off


class ExecutionBackend:
    """Executes every worker of one parallel region to completion.

    A backend must leave each worker's private storage (reductions,
    lastprivate copies) readable through ``worker.frame`` in the parent
    interpreter, apply the workers' shared-memory effects, append the
    workers' ``print`` records to ``interp.output`` deterministically
    (worker order unless the backend *is* the interleaving oracle), and
    fill ``worker.steps``/``worker.seconds``.  The interpreter performs
    the reduction/lastprivate join afterwards.
    """

    name = None

    def run_region(self, interp, region):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


# -- worker-local sequential execution ----------------------------------------


class _WorkerInterpreter(Interpreter):
    """Interpreter shell for one worker: own output/step counters.

    Shares (threads) or owns a copy of (processes) the global storage;
    never rebuilds it from initializers.
    """

    def __init__(self, module, global_storage, max_steps, write_log=None):
        # global_storage is the run's live storage: shared with the
        # parent for threads, this worker's deserialized copy for
        # processes.
        super().__init__(module, max_steps, global_storage=global_storage)
        if write_log is not None:
            # Feed the parent's inter-region write log (threads shims):
            # shared-state writes made here must reach the resident-
            # prelude dirty deltas like any parent-side store.
            self.enable_write_log(write_log)

    def run_chunk(self, loop, frame, iterations, locks, outer=None):
        """Execute ``iterations`` of ``loop``'s body on ``frame``.

        With ``outer`` (an interchanged nest's outer loop), each value
        is an ``(outer, inner)`` pair and both induction storages are
        set before the body runs; the nest's glue blocks never execute
        here — interchange legality proved them pure iv bookkeeping.
        """
        canonical = loop.canonical
        function = frame.function
        header = loop.header
        body = function.block(canonical.body)
        induction_storage = frame.objects[canonical.induction]
        outer_storage = (
            frame.objects[outer.canonical.induction]
            if outer is not None else None
        )
        held = set()
        try:
            for value in iterations:
                if outer_storage is not None:
                    outer_storage[0] = value[0]
                    value = value[1]
                induction_storage[0] = value
                block = body
                position = 0
                while True:
                    if position >= len(block.instructions):
                        raise EmulationError(
                            f"worker fell off block {block.name}"
                        )
                    inst = block.instructions[position]
                    self.steps += 1
                    if self.steps > self.max_steps:
                        raise EmulationError(
                            "parallel worker exceeded max_steps"
                        )
                    if isinstance(inst, Terminator):
                        if inst.opcode == "return":
                            raise EmulationError(
                                "return inside a parallelized loop body"
                            )
                        next_block = self._branch_target(inst, frame)
                        if next_block is header:
                            locks.release_all(held)
                            break
                        locks.transition(held, block, next_block)
                        block = next_block
                        position = 0
                        continue
                    self._execute(inst, frame)
                    position += 1
        finally:
            # A worker dying with a critical-section lock held would
            # stall its siblings until the lock timeout and mask the
            # real error with a bogus deadlock report.
            locks.release_all(held)


class _NullLocks:
    """Lock provider for isolated workers (processes): nothing to lock."""

    def transition(self, held, from_block, to_block):
        pass

    def release_all(self, held):
        pass


class _ThreadLocks:
    """Real locks for critical/atomic regions, shared by worker threads."""

    def __init__(self, regions):
        self._regions = regions  # block name -> (lock key, block set)
        self._locks = {key: threading.Lock() for key, _ in regions.values()}

    def transition(self, held, from_block, to_block):
        from_region = self._regions.get(from_block.name)
        to_region = self._regions.get(to_block.name)
        if from_region and (
            to_region is None or to_region[0] != from_region[0]
        ):
            if from_region[0] in held:
                held.discard(from_region[0])
                self._locks[from_region[0]].release()
        if to_region and to_region[0] not in held:
            if not self._locks[to_region[0]].acquire(timeout=_LOCK_TIMEOUT):
                raise EmulationError(
                    f"deadlock: lock {to_region[0]!r} not released within "
                    f"{_LOCK_TIMEOUT}s"
                )
            held.add(to_region[0])

    def release_all(self, held):
        for key in list(held):
            held.discard(key)
            self._locks[key].release()


# -- the three backends ---------------------------------------------------------


class SimulatedBackend(ExecutionBackend):
    """Seeded instruction-level interleaving (the race-detection oracle)."""

    name = "simulated"

    def run_region(self, interp, region):
        region.backend_used = self.name
        interp._run_workers(region.workers, region.frame)


class ThreadsBackend(ExecutionBackend):
    """One OS thread per worker; shared storage; real locks for criticals."""

    name = "threads"

    def run_region(self, interp, region):
        region.backend_used = self.name
        # The interpreter computed the critical-region map for this
        # function just before dispatching the region.
        locks = _ThreadLocks(interp._critical_regions)
        active = [w for w in region.workers if w.iterations]
        if not active:
            return
        outer_loop = interp._region_outer_loop(region.region, region.frame)

        compile_on = bool(getattr(interp, "compile_regions", False))
        verify = compile_on and bool(knobs.VERIFY_COMPILED)
        logged = verify or interp.write_log is not None
        entries = {}
        if compile_on:
            # Compile once on the dispatching thread; jobs only look up.
            # Loops holding critical/atomic blocks stay interpreted — the
            # compiled body performs no lock transitions.
            before = codegen_cache.stats()
            for loop in region.loops:
                if any(
                    block.name in interp._critical_regions
                    for block in loop.blocks
                ):
                    entries[loop] = None
                else:
                    entries[loop] = codegen_cache.compiled_chunk(
                        interp.module, loop, logged=logged,
                        outer=outer_loop,
                    )
            after = codegen_cache.stats()
            region.codegen_compiles += after["compiles"] - before["compiles"]
            region.codegen_source_hits += (
                after["source_hits"] - before["source_hits"]
            )
            region.codegen_fallbacks += (
                after["fallbacks"] - before["fallbacks"]
            )

        def job(worker):
            start = time.perf_counter()
            shim = _WorkerInterpreter(
                interp.module, interp._global_storage, interp.max_steps,
                write_log=interp.write_log,
            )
            if logged and shim.write_log is None:
                # The verify oracle diffs write logs, so force one even
                # when the parent did not ask for dirty tracking.
                shim.enable_write_log()
            compiled = interpreted = 0
            # Member segments run back-to-back with no barrier: fusion
            # legality keeps every cross-member dependence within one
            # worker's own chunks.
            for loop, iterations in worker.segments:
                if iterations:
                    mode = codegen_runtime.execute_chunk(
                        entries.get(loop), shim, loop, worker.frame,
                        iterations, locks, verify=verify,
                        outer=outer_loop,
                    )
                    if mode == "compiled":
                        compiled += 1
                    else:
                        interpreted += 1
            worker.seconds = time.perf_counter() - start
            return shim, compiled, interpreted

        # Worker-order collection keeps output/step totals deterministic.
        for worker, (shim, compiled, interpreted) in (
            self._run_jobs(active, job)
        ):
            worker.steps = shim.steps
            interp.steps += shim.steps
            interp.output.extend(shim.output)
            region.compiled_chunks += compiled
            region.interpreted_chunks += interpreted

    def _run_jobs(self, active, job):
        """Run ``job`` per worker concurrently; results in worker order."""
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=len(active), thread_name_prefix="repro-worker"
        ) as pool:
            futures = [(worker, pool.submit(job, worker))
                       for worker in active]
            return [(worker, future.result()) for worker, future in futures]


class SerialBackend(ThreadsBackend):
    """Threads-backend semantics, one worker at a time.

    The graceful-degradation ladder's last rung: identical partitioning,
    privatization, and worker-order merges, but each worker's chunk runs
    to completion on the dispatching thread before the next starts — no
    concurrency left to fail.  Not registered in :data:`BACKENDS`; only
    the ladder (and tests) reach it.
    """

    name = "serial"

    def _run_jobs(self, active, job):
        return [(worker, job(worker)) for worker in active]


def _fork_preferred_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


#: Process-pool singleton: forking a fresh child per worker per region
#: costs ~10ms each, which dominates small kernels.  A lazily-created
#: pool amortizes the fork across every region of every run; payloads
#: carry all state, so pool workers need no inherited context.
_POOL = None
_POOL_SIZE = None
_POOL_REGIONS = 0  # regions dispatched on the current pool
_POOL_LOCK = threading.Lock()
_POOL_ATEXIT_REGISTERED = False

#: Regions dispatched before the pool's workers are recycled.  Child
#: interpreters accumulate deserialized modules/frames across payloads;
#: bounded recycling caps that memory without paying a fork per region.
POOL_RECYCLE_REGIONS = 128

#: Hard ceiling on pool width regardless of the requested size.
_POOL_MAX_WORKERS = 16

#: Pool generation counter: bumped whenever a fresh pool is forked, so
#: the payload codec knows when its per-epoch module broadcasts (and the
#: pool workers' decoded-module caches) have been wiped.
_POOL_EPOCH = 0


def _desired_pool_size(requested):
    cpus = os.cpu_count() or 2
    if requested is None:
        return max(2, min(8, cpus, _POOL_MAX_WORKERS))
    return max(2, min(int(requested), cpus, _POOL_MAX_WORKERS))


def _chunk_pool(requested=None):
    """The shared chunk pool, sized to ``requested`` workers.

    ``requested`` normally comes from the planner's machine-model core
    count (clamped to the actual CPU count); passing a different size —
    or crossing the recycle threshold — drains the old pool and starts a
    fresh one.
    """
    global _POOL, _POOL_SIZE, _POOL_REGIONS, _POOL_ATEXIT_REGISTERED
    global _POOL_EPOCH
    size = _desired_pool_size(requested)
    with _POOL_LOCK:
        # A wider-than-requested pool is simply reused: callers with
        # different machine models (or the None default) alternating in
        # one process must not thrash teardown/re-fork cycles.
        stale = _POOL is not None and (
            _POOL_SIZE < size or _POOL_REGIONS >= POOL_RECYCLE_REGIONS
        )
        if stale:
            old, _POOL = _POOL, None
            old.shutdown(wait=False, cancel_futures=True)
            # The recycled workers' decoded-module and resident-prelude
            # caches died with them; drop the parent-side bookkeeping
            # that assumed they were primed so nothing leaks into (or
            # from) the next generation.  (The module-bytes LRU itself
            # survives — valid across epochs, expensive to rebuild.)
            payload_codec.invalidate_pool_caches()
        if _POOL is None:
            _POOL = concurrent.futures.ProcessPoolExecutor(
                max_workers=size,
                mp_context=_fork_preferred_context(),
            )
            _POOL_SIZE = size
            _POOL_REGIONS = 0
            _POOL_EPOCH += 1
            if not _POOL_ATEXIT_REGISTERED:
                import atexit

                # Tear the pool down before interpreter shutdown
                # dismantles the modules its weakref callbacks still
                # reference.
                atexit.register(_reset_chunk_pool)
                _POOL_ATEXIT_REGISTERED = True
        _POOL_REGIONS += 1
        return _POOL


def _reset_chunk_pool(kill=False):
    global _POOL, _POOL_SIZE, _POOL_REGIONS, _POOL_EPOCH
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
        _POOL_SIZE = None
        _POOL_REGIONS = 0
        # The workers — and with them every decoded-module cache and
        # resident prelude image — are gone the moment we return, even
        # on the non-kill path.  Bump the broadcast epoch and drop the
        # parent-side primed-worker bookkeeping *here*, not in the next
        # _chunk_pool call: a dispatch racing the reset must never
        # trust resident state the dead workers held.
        _POOL_EPOCH += 1
        payload_codec.invalidate_pool_caches()
    if pool is None:
        return
    if kill:
        # A worker is stuck mid-chunk: shutdown() alone would wait on it
        # (and leave it occupying a slot); terminate the children so the
        # next pool starts clean.
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_chunk_entry(wire, fault=None):
    """Pool-worker entry point: run one worker's chunk, return its report.

    ``wire`` is a :meth:`~repro.runtime.payload.WorkerPayload.wire`
    tuple.  Never raises — errors come back as ``{"error": ...}`` so one
    bad chunk cannot poison the shared pool; a worker that has not seen
    the module bytes of this pool epoch reports ``{"module_miss": key}``
    and one without the payload's resident prelude state reports
    ``{"prelude_miss": stream_id}``, so the parent can retry with the
    missing stream attached.  Decode failures are tagged
    ``"phase": "decode"`` — they indict the wire/cache machinery, not
    the program, so the supervisor retries them; execution failures stay
    untagged and fatal.

    ``fault`` is an injected-fault directive from
    :mod:`repro.runtime.faults` (chaos testing only): executed before
    anything else, exactly as a real mid-flight worker death or stall
    would land.
    """
    if fault is not None:
        faults.perform(fault)
    try:
        payload, miss = payload_codec.decode_payload(wire)
        if miss == "module":
            return {"module_miss": wire[0]}
        if miss == "prelude":
            return {"prelude_miss": wire[2]}
    except payload_codec.PreludeVerificationError as exc:
        # A VERIFY_PRELUDE divergence is a caught bug, not a wire
        # failure: retrying would re-ship the mutated state and bless
        # exactly what the oracle flagged, so it stays fatal (untagged).
        payload_codec.discard_resident(wire[2])
        return {"error": f"{type(exc).__name__}: {exc}"}
    except BaseException as exc:
        # The resident state may be torn by the failed decode: dropping
        # it forces a clean full-state retry on the next payload of
        # this stream instead of silent divergence.
        payload_codec.discard_resident(wire[2])
        return {"error": f"{type(exc).__name__}: {exc}", "phase": "decode"}
    try:
        frame = payload["frame"]
        segments = payload["segments"]  # [(loop, iterations), ...]
        nest = payload.get("nest")  # interchanged outer loop (or None)
        global_storage = payload["global_storage"]
        private_globals = payload["private_globals"]
        private_alloca_uids = payload["private_alloca_uids"]

        shim = _WorkerInterpreter(
            payload["module"], global_storage, payload["max_steps"]
        )
        # Mutations are diffed from the store path's write log, so the
        # merge costs O(slots written), not O(program state).  Private
        # copies are returned whole instead.  The shared-object index is
        # captured before the run: allocas first executed inside the
        # chunk are scratch, never merged.
        log = shim.enable_write_log()
        index = payload_codec.shared_index(
            frame, global_storage, private_alloca_uids
        )
        snapshot = None
        if payload.get("verify_diffs"):
            snapshot = payload_codec.snapshot_shared(index)
        compile_on = payload.get("compile_regions")
        verify = compile_on and payload.get("verify_compiled")
        compiled_chunks = interpreted_chunks = 0
        codegen_before = codegen_cache.stats()
        try:
            start = time.perf_counter()
            for loop, iterations in segments:
                if iterations:
                    entry = None
                    if compile_on:
                        # Shims always log, so the logged variant; keyed
                        # by the child's decoded module object (cache.py
                        # explains why the content hash is not enough).
                        entry = codegen_cache.compiled_chunk(
                            payload["module"], loop, logged=True,
                            module_key=payload.get("module_key"),
                            outer=nest,
                        )
                    mode = codegen_runtime.execute_chunk(
                        entry, shim, loop, frame, iterations,
                        _NullLocks(), verify=verify, outer=nest,
                    )
                    if mode == "compiled":
                        compiled_chunks += 1
                    else:
                        interpreted_chunks += 1
            seconds = time.perf_counter() - start

            diffs = payload_codec.diff_write_log(log, index)
            if snapshot is not None:
                expected = payload_codec.diff_snapshot(snapshot, index)
                if tuple(expected) != tuple(diffs):
                    return {
                        "error": "write-log diff diverged from snapshot "
                        f"diff: log={diffs!r} snapshot={expected!r}"
                    }
            global_diffs, alloca_diffs, arg_diffs = diffs

            codegen_after = codegen_cache.stats()
            return {
                "steps": shim.steps,
                "output": shim.output,
                "seconds": seconds,
                "dirty_slots": len(log),
                "compiled_chunks": compiled_chunks,
                "interpreted_chunks": interpreted_chunks,
                "codegen_compiles": (
                    codegen_after["compiles"] - codegen_before["compiles"]
                ),
                "codegen_source_hits": (
                    codegen_after["source_hits"]
                    - codegen_before["source_hits"]
                ),
                "codegen_fallbacks": (
                    codegen_after["fallbacks"]
                    - codegen_before["fallbacks"]
                ),
                # Source lowered child-side travels to the parent, whose
                # cache forked children of the *next* epoch inherit.
                "codegen_sources": codegen_cache.drain_new_sources(),
                "global_diffs": global_diffs,
                "alloca_diffs": alloca_diffs,
                "arg_diffs": arg_diffs,
                "global_privates": {
                    name: list(frame.global_overlay[name])
                    for name in private_globals
                },
                "alloca_privates": {
                    inst.uid: list(storage)
                    for inst, storage in frame.objects.items()
                    if inst.uid in private_alloca_uids
                },
            }
        finally:
            # Restore the resident state to the parent's pre-dispatch
            # image (the diff values above were already extracted): a
            # sibling payload of this region — or the next region's
            # dirty delta — must find exactly the state the parent's
            # hash chain says this worker holds.
            payload_codec.rollback_writes(log)
    except BaseException as exc:  # report, never poison the pool
        # A torn rollback would leave the resident state diverged from
        # the parent's hash chain; drop it so the stream's next payload
        # retries with the full state attached.
        payload_codec.discard_resident(wire[2])
        return {"error": f"{type(exc).__name__}: {exc}"}


class _InfraFailure(Exception):
    """Internal: dispatch infrastructure failed; the region is retryable.

    Raised by :meth:`ProcessesBackend._dispatch_once` for worker death,
    hangs, undeliverable results, and payload-decode failures — all
    cases where the deferred-apply invariant guarantees the parent state
    is still the pre-dispatch image.  Program errors raise plain
    :class:`EmulationError` instead and are never retried.
    """


class ProcessesBackend(ExecutionBackend):
    """One OS process per worker; serialized frames; diff-merged state.

    Dispatch is *supervised* (unless ``REPRO_SUPERVISE`` is off):
    infrastructure failures — worker death, hangs, poisoned payloads —
    kill and respawn the pool, invalidate the resident prelude and
    module-broadcast epoch, and re-dispatch the whole region with the
    full state attached, up to a per-region retry budget with bounded
    exponential backoff.  The deferred-apply collection makes this
    exactly-once: no shared-memory effect lands until every worker of
    the region reported, so a failed attempt leaves the parent state
    byte-identical to the pre-dispatch image.
    """

    name = "processes"

    def run_region(self, interp, region):
        # Critical/atomic regions need shared memory: delegate the whole
        # region to the threads backend (real locks) and record that.
        # (Regions whose locks the sync-elimination pass removed no
        # longer appear in the critical map, so they stay here.)
        critical_blocks = interp._critical_regions
        if any(
            block.name in critical_blocks
            for loop in region.loops
            for block in loop.blocks
        ):
            ThreadsBackend().run_region(interp, region)
            region.backend_used = f"{self.name}->threads(critical)"
            return
        region.backend_used = self.name

        active = [w for w in region.workers if w.iterations]
        if not active:
            return
        if not knobs.REPRO_SUPERVISE:
            try:
                completed = self._dispatch_once(interp, region, active, None)
            except _InfraFailure as exc:
                raise EmulationError(str(exc)) from None
        else:
            budget = getattr(interp, "retry_budget", None)
            if budget is None:
                budget = int(knobs.REPRO_RETRY_BUDGET.value)
            backoff = float(knobs.REPRO_RETRY_BACKOFF.value)
            plan = faults.active_plan()
            attempt = 0
            while True:
                try:
                    completed = self._dispatch_once(
                        interp, region, active, plan
                    )
                    break
                except _InfraFailure as exc:
                    attempt += 1
                    if attempt > budget:
                        raise RegionDispatchError(
                            f"region dispatch failed after {attempt} "
                            f"attempts ({budget} retries): {exc}"
                        ) from exc
                    region.retries += 1
                    started = time.perf_counter()
                    # Kill the pool (a stuck or half-dead worker must
                    # not survive into the retry), which also bumps the
                    # broadcast epoch and drops the primed-worker
                    # bookkeeping; resetting the prelude codec makes
                    # the re-encode ship the full state, trusting no
                    # resident image.
                    _reset_chunk_pool(kill=True)
                    interp.invalidate_prelude()
                    time.sleep(backoff * (2 ** (attempt - 1)))
                    region.recovery_ms += (
                        time.perf_counter() - started
                    ) * 1000.0
        shared_allocas = {
            inst.uid: storage
            for inst, storage in region.frame.objects.items()
        }
        for worker, result in completed:  # worker order: deterministic
            self._apply(interp, region, worker, result, shared_allocas)

    def _dispatch_once(self, interp, region, active, plan):
        """Encode, submit, and collect one dispatch attempt of a region.

        Returns the ``(worker, result)`` list in worker order without
        applying anything.  Raises :class:`_InfraFailure` for retryable
        infrastructure failures, :class:`EmulationError` for program
        errors.  ``plan`` is the active fault-injection plan (or None).
        """
        pool = _chunk_pool(interp.pool_size)
        prelude = getattr(interp, "_prelude_codec", None)
        if prelude is None:
            prelude = payload_codec.PreludeCodec(log=interp.write_log)
            interp._prelude_codec = prelude
        encoded = payload_codec.encode_region(
            module=interp.module,
            frame=region.frame,
            loops=region.loops,
            global_storage=interp._global_storage,
            max_steps=interp.max_steps,
            workers=active,
            epoch=_POOL_EPOCH,
            prelude=prelude,
            compile_regions=bool(getattr(interp, "compile_regions", False)),
            nest=interp._region_outer_loop(region.region, region.frame),
        )
        ordinal = faults.next_region_ordinal() if plan else None
        submitted = []
        dropped = set()  # worker list indices whose results are discarded
        try:
            for index, (worker, worker_payload) in enumerate(
                zip(active, encoded.workers)
            ):
                directive = None
                wire = worker_payload.wire()
                if plan:
                    scenario = plan.draw(ordinal, index)
                    if scenario is not None:
                        region.faults_injected += 1
                        if scenario.kind in ("crash", "hang"):
                            directive = scenario.directive()
                        elif scenario.kind == "corrupt_wire":
                            wire = worker_payload.corrupted(
                                scenario.seed
                            ).wire()
                        elif scenario.kind == "drop_result":
                            dropped.add(index)
                submitted.append((
                    worker,
                    pool.submit(_pool_chunk_entry, wire, directive),
                    worker_payload,
                ))
        except concurrent.futures.process.BrokenProcessPool as exc:
            # A worker died (possibly during an earlier region) and the
            # pool refuses new work; nothing from this attempt was
            # collected, so the region is cleanly retryable.
            for _worker, pending, _payload in submitted:
                pending.cancel()
            _reset_chunk_pool()
            raise _InfraFailure(
                f"chunk pool broken at submit: {exc}"
            ) from None
        region.payloads += len(submitted)
        region.payload_bytes += encoded.wire_bytes
        region.naive_payload_bytes += encoded.naive_bytes

        # Collect every result before applying any of them: retries of
        # module/prelude misses ship the *pre-dispatch* state, so no
        # worker's shared-memory effects may land until the whole
        # region is in.
        failure = None  # program error: fatal, never retried
        infra = None  # infrastructure failure message: retryable
        completed = []  # (worker, result) in worker order
        retries = []  # miss-retry futures, cancellable alongside submitted
        configured = float(knobs.REPRO_REGION_TIMEOUT.value or 0.0)
        allowance = (
            configured if configured > 0
            else _region_allowance(interp.max_steps)
        )
        deadline = time.monotonic() + allowance  # for the whole region
        for index, (worker, future, worker_payload) in enumerate(submitted):
            try:
                result = future.result(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                missed = result.get("module_miss") or result.get(
                    "prelude_miss"
                )
                if failure is None and infra is None and missed:
                    # This pool worker joined after the epoch's module
                    # broadcast (or lacks this stream's resident
                    # state): retry its payload (only) with the bytes
                    # it is missing attached.
                    refreshed = worker_payload
                    if result.get("module_miss"):
                        # A brand-new pool worker: broadcast catch-up,
                        # not a resident-protocol failure.
                        refreshed = refreshed.with_module(encoded.codec)
                    elif result.get("prelude_miss"):
                        # A worker with the module but out-of-window
                        # resident state: deepen the delta window so
                        # laggards stay on the resident path next time.
                        encoded.prelude.note_miss()
                        region.prelude_misses += 1
                    refreshed = refreshed.with_state(encoded.state_bytes())
                    region.payloads += 1
                    region.payload_bytes += refreshed.wire_bytes
                    region.retry_payload_bytes += refreshed.wire_bytes
                    retry = pool.submit(_pool_chunk_entry, refreshed.wire())
                    # Track the retry so the timeout drain below can
                    # cancel it too — an untracked stuck retry would
                    # occupy a slot of the shared pool forever.
                    retries.append(retry)
                    result = retry.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                elif (
                    failure is None
                    and worker_payload.state_bytes is None
                    and "error" not in result
                ):
                    region.prelude_hits += 1
                    region.prelude_bytes_saved += encoded.prelude.full_len
            except concurrent.futures.process.BrokenProcessPool as exc:
                _reset_chunk_pool()
                infra = infra or (
                    f"worker process {worker.index} died: {exc}"
                )
                continue
            except concurrent.futures.TimeoutError:
                # The child is stuck mid-chunk; abandoning it would leave
                # it occupying a slot of the shared pool forever.
                for _w, pending, _p in submitted:
                    pending.cancel()
                for pending in retries:
                    pending.cancel()
                _reset_chunk_pool(kill=True)
                infra = infra or (
                    f"worker process {worker.index} timed out after "
                    f"{allowance:.0f}s"
                )
                continue
            except concurrent.futures.CancelledError:
                # Cancelled while draining after a timeout above; the
                # recorded failure is the one to surface.
                infra = infra or (
                    f"worker process {worker.index} was cancelled"
                )
                continue
            if failure is not None or infra is not None:
                continue
            if result.get("module_miss") or result.get("prelude_miss"):
                infra = (
                    f"worker process {worker.index} still missing "
                    f"{'module' if result.get('module_miss') else 'prelude'}"
                    " state after a retry with it attached"
                )
                continue
            if "error" in result:
                if result.get("phase") == "decode":
                    # The wire or the resident caches are at fault, not
                    # the program: a clean re-encode may succeed.
                    infra = (
                        f"worker process {worker.index} failed to decode "
                        f"its payload: {result['error']}"
                    )
                else:
                    failure = EmulationError(
                        f"worker process {worker.index} failed: "
                        f"{result['error']}"
                    )
                continue
            if index in dropped:
                infra = (
                    f"worker process {worker.index} result dropped "
                    "(injected fault)"
                )
                continue
            completed.append((worker, result))
        if failure is not None:
            raise failure
        if infra is not None:
            raise _InfraFailure(infra)
        return completed

    def _apply(self, interp, region, worker, result, shared_allocas):
        worker.steps = result["steps"]
        worker.seconds = result["seconds"]
        interp.steps += result["steps"]
        interp.output.extend(result["output"])
        region.dirty_slots += result.get("dirty_slots", 0)
        region.compiled_chunks += result.get("compiled_chunks", 0)
        region.interpreted_chunks += result.get("interpreted_chunks", 0)
        region.codegen_compiles += result.get("codegen_compiles", 0)
        region.codegen_source_hits += result.get("codegen_source_hits", 0)
        region.codegen_fallbacks += result.get("codegen_fallbacks", 0)
        codegen_cache.merge_sources(result.get("codegen_sources", ()))
        # Shared-memory effects, applied in worker order (deterministic;
        # a correct DOALL's shared writes are disjoint across workers).
        # Each write is marked in the parent's inter-region log first:
        # the pool workers rolled their copies back, so these merges are
        # exactly what the next region's dirty delta must re-ship.
        log = interp.write_log
        for name, slot, value in result["global_diffs"]:
            storage = interp._effective_global(region.frame, name)
            if log is not None:
                record_write(log, storage, slot)
            storage[slot] = value
        for uid, slot, value in result["alloca_diffs"]:
            storage = shared_allocas.get(uid)
            if storage is not None:
                if log is not None:
                    record_write(log, storage, slot)
                storage[slot] = value
        for index, slot, value in result["arg_diffs"]:
            pointer = region.frame.args[index]
            if isinstance(pointer, tuple) and len(pointer) == 2:
                if log is not None:
                    record_write(log, pointer[0], slot)
                pointer[0][slot] = value
        # Private copies: write the child's final values back into the
        # parent-side worker frame so the generic join sees them.
        for name, values in result["global_privates"].items():
            worker.frame.global_overlay[name][:] = values
        for uid, values in result["alloca_privates"].items():
            for inst, storage in worker.frame.objects.items():
                if inst.uid == uid:
                    storage[:] = values
                    break


BACKENDS = {
    backend.name: backend
    for backend in (SimulatedBackend, ThreadsBackend, ProcessesBackend)
}


def backend_names():
    return sorted(BACKENDS)


def get_backend(backend):
    """An :class:`ExecutionBackend` for a name (or pass an instance through)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend not in BACKENDS:
        raise PlanError(
            f"unknown execution backend {backend!r}; "
            f"choose from {backend_names()}"
        )
    return BACKENDS[backend]()
