"""Simulated parallel runtime: execute DOALL plans on virtual threads.

The paper's evaluation characterizes plans analytically; this module goes
one step further and *runs* them, so the repository can test that a plan
chosen via the PS-PDG is semantics-preserving.  It is a deterministic
simulation of a multicore: a planned DOALL loop's iterations are chunked
over W virtual workers whose instruction streams are interleaved by a
seeded scheduler, with

* per-worker private copies of the induction variable and every variable
  the parallelization privatizes,
* reduction variables initialized to the operator identity per worker and
  merged (in worker order, deterministically) at the join,
* firstprivate copies seeded from the shared value, lastprivate written
  back by the worker that executed the final iteration,
* locks for critical/atomic regions (same-name criticals share a lock),

so data races that a *wrong* plan would introduce show up as real
nondeterminism across scheduler seeds, while correct plans produce exactly
the sequential result (modulo floating-point reduction reassociation).
"""

import dataclasses
import random

from repro.analysis.deptests import loop_iv_range
from repro.analysis.loops import find_natural_loops
from repro.analysis.reductions import REDUCIBLE_OPS
from repro.emulator.interp import Interpreter, _Frame
from repro.ir.instructions import Terminator
from repro.ir.types import FLOAT
from repro.ir.values import GlobalVariable
from repro.util.errors import EmulationError, PlanError

_IDENTITY = {
    "add": 0,
    "mul": 1,
    "min": float("inf"),
    "max": float("-inf"),
    "and": -1,
    "or": 0,
    "xor": 0,
}


@dataclasses.dataclass
class LoopParallelization:
    """Execution recipe for one DOALL loop.

    Attributes:
        header: loop header block name.
        privatized: list of storages (Alloca/GlobalVariable) given fresh
            per-worker copies.
        firstprivate: storages copied from the shared value per worker.
        lastprivate: storages whose final-iteration private value is
            written back at the join.
        reductions: list of (storage, op-name) merged at the join.
        chunk: static chunk size (iterations per contiguous chunk).
    """

    header: str
    privatized: list = dataclasses.field(default_factory=list)
    firstprivate: list = dataclasses.field(default_factory=list)
    lastprivate: list = dataclasses.field(default_factory=list)
    reductions: list = dataclasses.field(default_factory=list)
    chunk: int = 1


def parallelization_from_annotation(annotation, function):
    """Build a :class:`LoopParallelization` from a worksharing annotation."""
    clauses = annotation.directive.clauses
    recipe = LoopParallelization(header=annotation.loop_header)
    for name in clauses.private:
        recipe.privatized.append(annotation.binding(name))
    for name in clauses.firstprivate:
        recipe.firstprivate.append(annotation.binding(name))
    for name in clauses.lastprivate:
        recipe.lastprivate.append(annotation.binding(name))
    for op, name in clauses.reductions:
        from repro.frontend.directives import REDUCTION_OPS

        recipe.reductions.append((annotation.binding(name), REDUCTION_OPS[op]))
    if clauses.schedule and clauses.schedule[1]:
        recipe.chunk = clauses.schedule[1]
    return recipe


def parallelization_from_pspdg(pspdg, loop):
    """Build an execution recipe from the PS-PDG's variables for a loop.

    Privatizable variables in the loop's context get private copies;
    reducible ones get identity-initialized copies merged at the join.
    """
    from repro.core.builder import loop_context_label
    from repro.frontend.directives import REDUCTION_OPS

    label = loop_context_label(loop.header.name)
    chain = set(pspdg.context_chain(label))
    # Worksharing annotations on this loop contribute their uid contexts.
    for annotation in pspdg.function.annotations:
        if annotation.loop_header == loop.header.name:
            chain.add(annotation.uid)

    recipe = LoopParallelization(header=loop.header.name)
    for variable in pspdg.variables:
        if variable.context not in chain:
            continue
        if variable.is_reducible():
            recipe.reductions.append(
                (variable.storage, REDUCTION_OPS.get(
                    variable.reducer_op, variable.reducer_op
                ))
            )
        else:
            recipe.privatized.append(variable.storage)
    return recipe


class _Worker:
    """One virtual thread executing a chunk of the iteration space."""

    __slots__ = (
        "index",
        "iterations",
        "cursor",
        "frame",
        "block",
        "position",
        "done",
        "waiting_for",
        "held",
        "last_value",
    )

    def __init__(self, index, iterations, frame):
        self.index = index
        self.iterations = iterations
        self.cursor = 0
        self.frame = frame
        self.block = None
        self.position = 0
        self.done = not iterations
        self.waiting_for = None  # lock name when blocked
        self.held = set()
        self.last_value = None


class ParallelInterpreter(Interpreter):
    """Interpreter that executes selected loops on simulated workers."""

    def __init__(self, module, parallelizations, workers=4, seed=0,
                 max_steps=50_000_000):
        super().__init__(module, max_steps)
        self.workers = workers
        self.seed = seed
        self._recipes = {p.header: p for p in parallelizations}
        self._locks = {}  # lock key -> worker index or None
        self._loops_by_function = {}

    # -- loop takeover ---------------------------------------------------------

    def _maybe_run_parallel_loop(self, next_block, from_block, frame):
        recipe = self._recipes.get(next_block.name)
        if recipe is None:
            return None
        loop = self._find_loop(frame.function, next_block.name)
        if loop is None or loop.canonical is None:
            raise PlanError(
                f"parallel loop {next_block.name} lacks canonical form"
            )
        if from_block in loop.blocks:
            return None  # back edge: loop already running (shouldn't occur)
        self._execute_parallel_loop(loop, recipe, frame)
        return frame.function.block(loop.canonical.exit)

    def _find_loop(self, function, header_name):
        if function.name not in self._loops_by_function:
            self._loops_by_function[function.name] = {
                loop.header.name: loop
                for loop in find_natural_loops(function)
            }
        return self._loops_by_function[function.name].get(header_name)

    # -- the parallel region ------------------------------------------------------

    def _execute_parallel_loop(self, loop, recipe, frame):
        canonical = loop.canonical
        lower = self._value(canonical.lower, frame)
        upper = self._value(canonical.upper, frame)
        step = self._value(canonical.step, frame)
        if step <= 0:
            raise PlanError("parallel loops require a positive step")
        values = list(range(lower, upper, step))

        chunks = [
            values[i : i + recipe.chunk]
            for i in range(0, len(values), recipe.chunk)
        ]
        assignment = [[] for _ in range(self.workers)]
        for chunk_index, chunk in enumerate(chunks):
            assignment[chunk_index % self.workers].extend(chunk)

        workers = []
        for index in range(self.workers):
            worker_frame = self._make_worker_frame(frame, recipe, loop)
            workers.append(_Worker(index, assignment[index], worker_frame))

        self._run_workers(workers, loop, frame)
        self._join(workers, recipe, frame, values)

    def _make_worker_frame(self, frame, recipe, loop):
        worker_frame = _Frame(frame.function, frame.args)
        worker_frame.registers = dict(frame.registers)
        worker_frame.objects = frame.objects  # shared by default
        worker_frame.global_overlay = dict(frame.global_overlay)

        # Private copies (fresh, firstprivate-seeded, or identity-seeded).
        private_objects = {}
        storage_remap = {}  # id(shared list) -> private list

        def privatize(storage, seed_values):
            private = list(seed_values)
            if isinstance(storage, GlobalVariable):
                shared = frame.global_overlay.get(
                    storage.name
                ) or self._global_storage[storage.name]
                worker_frame.global_overlay[storage.name] = private
            else:
                shared = frame.objects.get(storage)
                private_objects[storage] = private
            if shared is not None:
                storage_remap[id(shared)] = private

        induction = loop.canonical.induction
        privatize(induction, [0])
        for storage in recipe.privatized:
            privatize(storage, self._zeros_for(storage))
        for storage in recipe.firstprivate:
            privatize(storage, self._current_values(storage, frame))
        for storage in recipe.lastprivate:
            privatize(storage, self._zeros_for(storage))
        for storage, op in recipe.reductions:
            identity = self._identity_values(storage, op)
            privatize(storage, identity)

        if private_objects:
            # Copy-on-write object table: private entries shadow shared.
            shared = frame.objects
            table = dict(shared)
            table.update(private_objects)
            worker_frame.objects = table

        # Pointers already materialized in registers (alloca results, geps
        # computed before the loop) still point at the *shared* storage;
        # re-aim them at the private copies.
        for key, value in worker_frame.registers.items():
            if (
                isinstance(value, tuple)
                and len(value) == 2
                and id(value[0]) in storage_remap
            ):
                worker_frame.registers[key] = (
                    storage_remap[id(value[0])],
                    value[1],
                )
        return worker_frame

    def _zeros_for(self, storage):
        if isinstance(storage, GlobalVariable):
            return self._zero_storage(storage.value_type)
        return self._zero_storage(storage.allocated_type)

    def _current_values(self, storage, frame):
        if isinstance(storage, GlobalVariable):
            return list(frame.global_overlay.get(storage.name)
                        or self._global_storage[storage.name])
        if storage in frame.objects:
            return list(frame.objects[storage])
        return self._zeros_for(storage)

    def _identity_values(self, storage, op):
        if op not in _IDENTITY:
            raise PlanError(f"no identity for reduction op {op!r}")
        identity = _IDENTITY[op]
        value_type = (
            storage.value_type
            if isinstance(storage, GlobalVariable)
            else storage.allocated_type
        )
        scalar = value_type
        while hasattr(scalar, "element"):
            scalar = scalar.element
        if scalar == FLOAT and op in ("add", "mul"):
            identity = float(identity)
        return [identity] * value_type.slots()

    # -- scheduling -----------------------------------------------------------

    def _run_workers(self, workers, loop, frame):
        rng = random.Random(self.seed)
        self._critical_regions = self._critical_region_map(frame.function)
        runnable = [w for w in workers if not w.done]
        for worker in runnable:
            self._start_next_iteration(worker, loop)
        while True:
            candidates = [
                w
                for w in workers
                if not w.done and self._can_run(w)
            ]
            if not candidates:
                if any(not w.done for w in workers):
                    raise EmulationError(
                        "parallel deadlock: all remaining workers blocked"
                    )
                return
            worker = rng.choice(candidates)
            self._step_worker(worker, loop)

    def _can_run(self, worker):
        if worker.waiting_for is None:
            return True
        holder = self._locks.get(worker.waiting_for)
        return holder is None or holder == worker.index

    def _start_next_iteration(self, worker, loop):
        if worker.cursor >= len(worker.iterations):
            worker.done = True
            self._release_all(worker)
            return
        value = worker.iterations[worker.cursor]
        worker.cursor += 1
        worker.last_value = value
        induction = loop.canonical.induction
        worker.frame.objects[induction] = worker.frame.objects.get(
            induction, [0]
        )
        # Ensure the induction storage is private (set in _make_worker_frame).
        worker.frame.objects[induction][0] = value
        worker.block = loop.header.parent.block(loop.canonical.body)
        worker.position = 0

    def _step_worker(self, worker, loop):
        # Honor pending lock acquisition.
        if worker.waiting_for is not None:
            lock = worker.waiting_for
            holder = self._locks.get(lock)
            if holder is None:
                self._locks[lock] = worker.index
                worker.held.add(lock)
                worker.waiting_for = None
            elif holder != worker.index:
                return
            else:
                worker.waiting_for = None

        block = worker.block
        if worker.position >= len(block.instructions):
            raise EmulationError(f"worker fell off block {block.name}")
        inst = block.instructions[worker.position]
        self.steps += 1
        if self.steps > self.max_steps:
            raise EmulationError("parallel execution exceeded max_steps")

        if isinstance(inst, Terminator):
            if inst.opcode == "return":
                raise EmulationError(
                    "return inside a parallelized loop body"
                )
            next_block = self._branch_target(inst, worker.frame)
            if next_block is loop.header:
                # Iteration finished (came around from the latch).
                self._release_all(worker)
                self._start_next_iteration(worker, loop)
                return
            self._update_locks(worker, block, next_block)
            worker.block = next_block
            worker.position = 0
            return

        self._execute(inst, worker.frame)
        worker.position += 1

    # -- critical sections ----------------------------------------------------

    def _critical_region_map(self, function):
        """block name -> (lock key, region block set) for critical/atomic."""
        mapping = {}
        for annotation in function.annotations:
            if annotation.directive.kind not in ("critical", "atomic"):
                continue
            name = annotation.directive.clauses.critical_name
            key = f"critical:{name}" if name else f"anon:{annotation.uid}"
            if annotation.directive.kind == "critical" and name is None:
                key = "critical:<anonymous>"
            if annotation.directive.kind == "atomic":
                key = f"atomic:{annotation.uid}"
            blocks = set(annotation.block_names)
            for block_name in blocks:
                mapping[block_name] = (key, blocks)
        return mapping

    def _update_locks(self, worker, from_block, to_block):
        from_region = self._critical_regions.get(from_block.name)
        to_region = self._critical_regions.get(to_block.name)
        if from_region and (
            to_region is None or to_region[0] != from_region[0]
        ):
            self._release(worker, from_region[0])
        if to_region and to_region[0] not in worker.held:
            holder = self._locks.get(to_region[0])
            if holder is None:
                self._locks[to_region[0]] = worker.index
                worker.held.add(to_region[0])
            else:
                worker.waiting_for = to_region[0]

    def _release(self, worker, lock):
        if lock in worker.held:
            worker.held.discard(lock)
            if self._locks.get(lock) == worker.index:
                self._locks[lock] = None

    def _release_all(self, worker):
        for lock in list(worker.held):
            self._release(worker, lock)

    # -- join -------------------------------------------------------------------

    def _join(self, workers, recipe, frame, values):
        last_value = values[-1] if values else None
        for storage, op in recipe.reductions:
            shared = self._shared_storage(storage, frame)
            for worker in workers:
                private = self._private_storage(worker, storage)
                for slot in range(len(shared)):
                    shared[slot] = self._merge(op, shared[slot], private[slot])
        for storage in recipe.lastprivate:
            owner = None
            for worker in workers:
                if worker.iterations and worker.iterations[-1] == last_value:
                    owner = worker
            if owner is not None:
                shared = self._shared_storage(storage, frame)
                private = self._private_storage(owner, storage)
                shared[:] = private

    def _shared_storage(self, storage, frame):
        if isinstance(storage, GlobalVariable):
            return (
                frame.global_overlay.get(storage.name)
                or self._global_storage[storage.name]
            )
        return frame.objects[storage]

    def _private_storage(self, worker, storage):
        if isinstance(storage, GlobalVariable):
            return worker.frame.global_overlay[storage.name]
        return worker.frame.objects[storage]

    @staticmethod
    def _merge(op, a, b):
        if op == "add":
            return a + b
        if op == "mul":
            return a * b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        raise PlanError(f"unknown reduction op {op!r}")


def run_parallel(
    module,
    parallelizations,
    function_name="main",
    workers=4,
    seed=0,
):
    """Execute ``function_name`` with the given loop parallelizations."""
    interpreter = ParallelInterpreter(
        module, parallelizations, workers=workers, seed=seed
    )
    return interpreter.run(function_name)


def recipes_from_plan(module, pspdg, plan, function):
    """Execution recipes for every executable DOALL loop of ``plan``.

    Only canonical-form DOALL loops run on the simulated machine (HELIX/
    DSWP are analytical-only in this repository); loops nested inside
    another planned DOALL loop are skipped — the outer takeover already
    executes them.
    """
    from repro.planner.plans import TECH_DOALL

    loops = {
        loop.header.name: loop for loop in find_natural_loops(function)
    }

    def inside_planned_parent(loop):
        parent = loop.parent
        while parent is not None:
            parent_plan = plan.plan_for(parent.header.name)
            if (
                parent_plan is not None
                and parent_plan.technique == TECH_DOALL
                and parent.canonical is not None
            ):
                return True
            parent = parent.parent
        return False

    recipes = []
    for header, loop_plan in sorted(plan.loop_plans.items()):
        if loop_plan.technique != TECH_DOALL:
            continue
        loop = loops.get(header)
        if loop is None or loop.canonical is None:
            continue
        if inside_planned_parent(loop):
            continue
        recipes.append(parallelization_from_pspdg(pspdg, loop))
    return recipes


def run_plan(module, pspdg, plan, function_name="main", workers=4, seed=0):
    """Execute a :class:`ProgramPlan` chosen from the PS-PDG.

    This is the runtime entry point :meth:`repro.Session.run` uses: the
    plan's DOALL loops take over with PS-PDG-derived privatization and
    reduction recipes; everything else runs sequentially.
    """
    function = module.function(function_name)
    recipes = recipes_from_plan(module, pspdg, plan, function)
    return run_parallel(module, recipes, function_name, workers, seed)


def run_source_plan(module, function_name="main", workers=4, seed=0):
    """Execute the developer's OpenMP plan (all worksharing annotations)."""
    function = module.function(function_name)
    recipes = []
    for annotation in function.annotations:
        if (
            annotation.directive.declares_loop_independence()
            and annotation.loop_header is not None
        ):
            recipes.append(
                parallelization_from_annotation(annotation, function)
            )
    return run_parallel(module, recipes, function_name, workers, seed)
