"""Parallel runtime: execute DOALL plans on pluggable backends.

The paper's evaluation characterizes plans analytically; this module goes
further and *runs* them.  A :class:`ParallelInterpreter` executes the
program sequentially until control reaches a planned DOALL loop, then

1. evaluates the canonical iteration space,
2. partitions it with a :class:`~repro.runtime.schedulers.ChunkScheduler`
   (static / dynamic / guided — decided once, shared by every backend),
3. builds one privatized frame per worker, with

   * per-worker private copies of the induction variable and every
     variable the parallelization privatizes,
   * reduction variables initialized to the operator identity per worker
     and merged (in worker order, deterministically) at the join,
   * firstprivate copies seeded from the shared value, lastprivate
     written back by the worker that executed the final iteration,
   * locks for critical/atomic regions (same-name criticals share one),

4. hands the region to an :class:`~repro.runtime.backends
   .ExecutionBackend` — ``simulated`` (the seeded virtual-thread
   interleaver: the race-detection oracle), ``threads`` (real OS
   threads, shared storage, real locks), or ``processes`` (real OS
   processes fed by the :mod:`repro.runtime.payload` codec — a shared
   prelude pickled once per region, per-worker deltas referencing it by
   memo id, module bytes cached per pool epoch — with write-log-diffed
   shared state merged back in worker order), and
5. joins: merges reductions in worker order and writes back lastprivate
   values, recording per-worker timing plus (on ``processes``) payload
   counts, bytes-on-wire, and dirty-slot counts for
   ``session.diagnostics``.

Data races that a *wrong* plan would introduce show up under the
``simulated`` backend as real nondeterminism across scheduler seeds,
while correct plans produce exactly the sequential result (modulo
floating-point reduction reassociation).
"""

import dataclasses
import time

from repro.analysis.deptests import loop_iv_range  # noqa: F401 (re-export)
from repro.analysis.loops import find_natural_loops
from repro.analysis.reductions import REDUCIBLE_OPS  # noqa: F401 (re-export)
from repro.codegen import cache as codegen_cache
from repro.codegen import runtime as codegen_runtime
from repro.codegen import seq as codegen_seq
from repro.emulator.interp import Interpreter, _Frame, record_write
from repro.ir.instructions import Call, Terminator
from repro.ir.types import FLOAT
from repro.ir.values import Argument, GlobalVariable
from repro.runtime import knobs
from repro.runtime.backends import (
    ParallelRegion,
    SerialBackend,
    ThreadsBackend,
    get_backend,
)
from repro.runtime.schedulers import make_scheduler
from repro.util.errors import EmulationError, PlanError, RegionDispatchError

_IDENTITY = {
    "add": 0,
    "mul": 1,
    "min": float("inf"),
    "max": float("-inf"),
    "and": -1,
    "or": 0,
    "xor": 0,
}


@dataclasses.dataclass
class LoopParallelization:
    """Execution recipe for one DOALL loop.

    Attributes:
        header: loop header block name.
        privatized: list of storages (Alloca/GlobalVariable) given fresh
            per-worker copies.
        firstprivate: storages copied from the shared value per worker.
        lastprivate: storages whose final-iteration private value is
            written back at the join.
        reductions: list of (storage, op-name) merged at the join.
        chunk: scheduler chunk size (iterations per contiguous chunk).
    """

    header: str
    privatized: list = dataclasses.field(default_factory=list)
    firstprivate: list = dataclasses.field(default_factory=list)
    lastprivate: list = dataclasses.field(default_factory=list)
    reductions: list = dataclasses.field(default_factory=list)
    chunk: int = 1


@dataclasses.dataclass
class RegionParallelization:
    """One dispatched parallel region: one or more fused member loops.

    The runtime's unit of execution since the ``repro.opt`` pipeline:
    every worker receives the same iteration chunk for every member and
    runs the members back-to-back (fusion legality guarantees identical
    iteration spaces and worker-aligned cross-member dependences).

    Attributes:
        recipes: member :class:`LoopParallelization` in control-flow
            order (a single entry for an unfused loop).
        backend_override: ``"threads"`` reroutes this region off the
            process pool (small-region serialization); ``None`` runs on
            the configured backend.  (``"sequential"`` regions are never
            materialized — the optimizer's descriptor simply drops them
            from the dispatch set.)
        removed_sync_uids: annotation uids whose critical/atomic locks
            are elided for this region (sync elimination).
        outer_header: loop-interchange nest — the serial outer loop's
            header.  The takeover triggers there, the *inner* space is
            partitioned once across workers, and every worker runs its
            slice in outer-major order as ``(outer, inner)`` pairs.
        member_shifts: skewed fusion — per-member partition shifts; the
            member's chunks are the base partition shifted by the
            negated shift (uniform-distance dependences stay worker-
            local).  Empty means all zero.
        tile: minimum iterations per payload (tiling); the runtime caps
            the effective worker count at ``ceil(trip / tile)`` and
            pads the rest with empty chunks.
        speculative: pass name when this region was applied on an
            inconclusive static test.  Only the simulated oracle may
            execute such a region — the optimizer's validation pass
            clears the marker (or reverts the transform) before real
            backends are allowed.
    """

    recipes: list
    backend_override: str = None
    removed_sync_uids: frozenset = frozenset()
    outer_header: str = None
    member_shifts: tuple = ()
    tile: int = None
    speculative: str = None

    @property
    def header(self):
        """The block whose arrival triggers the takeover."""
        return self.outer_header or self.recipes[0].header

    @property
    def headers(self):
        return tuple(recipe.header for recipe in self.recipes)

    @property
    def label(self):
        if self.outer_header:
            return f"{self.outer_header}/" + "+".join(self.headers)
        return "+".join(self.headers)

    @property
    def fused(self):
        return len(self.recipes) > 1

    def merged_recipe(self):
        """Union of the members' privatization/reduction sets.

        Reductions dedupe by (storage, op): members sharing a same-op
        reduction accumulate into one per-worker copy, merged once at
        the join (commutativity makes the grouping unobservable).
        """
        merged = LoopParallelization(header=self.label,
                                     chunk=self.recipes[0].chunk)
        seen = {}
        for recipe in self.recipes:
            for attr in ("privatized", "firstprivate", "lastprivate"):
                for storage in getattr(recipe, attr):
                    bucket = seen.setdefault(attr, set())
                    if id(storage) not in bucket:
                        bucket.add(id(storage))
                        getattr(merged, attr).append(storage)
            for storage, op in recipe.reductions:
                bucket = seen.setdefault("reductions", set())
                if (id(storage), op) not in bucket:
                    bucket.add((id(storage), op))
                    merged.reductions.append((storage, op))
        return merged


def _as_region(parallelization):
    if isinstance(parallelization, RegionParallelization):
        return parallelization
    return RegionParallelization(recipes=[parallelization])


def parallelization_from_annotation(annotation, function):
    """Build a :class:`LoopParallelization` from a worksharing annotation."""
    clauses = annotation.directive.clauses
    recipe = LoopParallelization(header=annotation.loop_header)
    for name in clauses.private:
        recipe.privatized.append(annotation.binding(name))
    for name in clauses.firstprivate:
        recipe.firstprivate.append(annotation.binding(name))
    for name in clauses.lastprivate:
        recipe.lastprivate.append(annotation.binding(name))
    for op, name in clauses.reductions:
        from repro.frontend.directives import REDUCTION_OPS

        recipe.reductions.append((annotation.binding(name), REDUCTION_OPS[op]))
    if clauses.schedule and clauses.schedule[1]:
        recipe.chunk = clauses.schedule[1]
    return recipe


# -- PS-PDG -> runtime recipe ---------------------------------------------------
#
# The PS-PDG says which variables *may* be privatized or reduced in a
# loop's context; the runtime must decide what each planned loop actually
# *needs* so that discarding private copies never loses state the
# sequential program observes.  (The differential conformance suite caught
# exactly this on IS: eagerly privatizing the threadprivate buffer ``prv``
# in every planned loop dropped the ranking counts that the sequential
# prefix-sum loop reads afterwards.)


def _storage_object(alias, storage):
    if isinstance(storage, GlobalVariable):
        return alias.object_for_global(storage)
    if isinstance(storage, Argument):
        return alias.object_for_argument(storage)
    return alias.object_for_alloca(storage)


def _same_pointer(a, b):
    """Symbolically the same address within one iteration.

    Loads and stores of ``p[k] = p[k] op e`` go through *distinct* GEP
    instructions; they denote the same slot when their base and index
    chains are the same SSA values (or equal constants).
    """
    from repro.ir.instructions import GetElementPtr

    if a is b:
        return True
    if isinstance(a, GetElementPtr) and isinstance(b, GetElementPtr):
        return _same_pointer(a.pointer, b.pointer) and _same_index(
            a.index, b.index
        )
    return False


def _same_index(a, b):
    """Same index value: one SSA value, equal constants, or re-loads of
    one address with no store in between (lowering re-evaluates ``k`` for
    each subscript of ``p[k] = p[k] op e``)."""
    from repro.ir.instructions import Load, Store
    from repro.ir.values import Constant

    if a is b:
        return True
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a.value == b.value
    if (
        isinstance(a, Load)
        and isinstance(b, Load)
        and a.parent is b.parent
        and _same_pointer(a.pointer, b.pointer)
    ):
        span = []
        seen_first = False
        for inst in a.parent.instructions:
            if inst is a or inst is b:
                if seen_first:
                    break
                seen_first = True
            elif seen_first:
                span.append(inst)
        return not any(
            isinstance(inst, Store) and _same_pointer(inst.pointer, a.pointer)
            for inst in span
        )
    return False


def _update_reduction_op(in_loop_accesses):
    """The single reducible op updating this object, or None.

    Matches ``p[idx] = p[idx] op expr`` (any operand order, same slot,
    same block) for *every* access to the object inside the loop — the
    array generalization of scalar-reduction recognition.  Such updates
    commute across iterations, so per-worker identity-seeded copies
    merged at the join preserve the sequential result.
    """
    from repro.analysis.reductions import _depends_on
    from repro.ir.instructions import BinaryOp, Load, Store

    loads = {
        a.instruction
        for a in in_loop_accesses
        if isinstance(a.instruction, Load)
    }
    stores = [
        a.instruction
        for a in in_loop_accesses
        if isinstance(a.instruction, Store)
    ]
    if not stores or len(loads) + len(stores) != len(in_loop_accesses):
        return None  # a call (or unknown access) touches the object
    ops = set()
    matched = set()
    for store in stores:
        update = store.value
        if not isinstance(update, BinaryOp) or update.op not in _IDENTITY:
            return None
        if isinstance(update.lhs, Load) and _same_pointer(
            update.lhs.pointer, store.pointer
        ):
            load, other = update.lhs, update.rhs
        elif isinstance(update.rhs, Load) and _same_pointer(
            update.rhs.pointer, store.pointer
        ):
            load, other = update.rhs, update.lhs
        else:
            return None
        if load not in loads or load.parent is not store.parent:
            return None
        if _depends_on(other, load):
            return None
        ops.add(update.op)
        matched.add(load)
    if matched != loads or len(ops) != 1:
        return None
    return next(iter(ops))


class _RecipeAnalyses:
    """Per-function analysis state shared by recipe derivations."""

    def __init__(self, function, module):
        from repro.analysis.alias import AliasAnalysis
        from repro.analysis.memdep import collect_accesses

        self.function = function
        self.module = module
        self.alias = AliasAnalysis(module)
        self.accesses = collect_accesses(function, self.alias)
        self._by_object = {}
        for access in self.accesses:
            self._by_object.setdefault(access.obj, []).append(access)
        self._memdep = None

    def accesses_for(self, storage, loop):
        obj = _storage_object(self.alias, storage)
        return [
            access
            for access in self._by_object.get(obj, [])
            if access.instruction.parent in loop.blocks
        ]

    def live_out(self, loop):
        from repro.analysis.liveness import live_out_objects

        return set(
            live_out_objects(
                self.function, self.module, loop, self.alias, self.accesses
            )
        )

    def carried_at(self, storage, loop):
        """Does ``loop`` carry a memory dependence on this storage?"""
        if self._memdep is None:
            from repro.analysis.memdep import MemoryDependenceAnalysis

            self._memdep = MemoryDependenceAnalysis(
                self.function, self.module, self.alias
            ).run()
        obj = _storage_object(self.alias, storage)
        # memdep discovered its own Loop instances: match by header name.
        header = loop.header.name
        return any(
            edge.obj == obj
            and any(
                carried.header.name == header
                for carried in edge.carried_loops
            )
            for edge in self._memdep
        )


def parallelization_from_pspdg(pspdg, loop, module, analyses=None):
    """Build an execution recipe from the PS-PDG's variables for a loop.

    For each variable the PS-PDG places in the loop's context chain:

    * context-reducible variables are merged as reductions;
    * variables not live-out of the loop get discardable private copies;
    * live-out variables whose only in-loop accesses are commutative
      ``x = x op e`` updates are reduced (identity-seeded, join-merged);
    * live-out variables with no loop-carried dependence stay shared —
      their per-iteration writes are disjoint, so shared storage
      reproduces the sequential state exactly;
    * remaining live-out variables (per-iteration scratch with a carried
      WAW/WAR) are privatized with firstprivate seeding and lastprivate
      write-back: the final iteration's state is the sequential one.

    In every case a plan the planner should not have chosen stays
    detectable: the ``simulated`` oracle exposes residual races as
    cross-seed nondeterminism.
    """
    from repro.core.builder import loop_context_label
    from repro.frontend.directives import REDUCTION_OPS

    if analyses is None:
        analyses = _RecipeAnalyses(loop.header.parent, module)
    label = loop_context_label(loop.header.name)
    chain = set(pspdg.context_chain(label))
    # Worksharing annotations on this loop contribute their uid contexts.
    for annotation in pspdg.function.annotations:
        if annotation.loop_header == loop.header.name:
            chain.add(annotation.uid)

    recipe = LoopParallelization(header=loop.header.name)
    live_out = None
    seen = set()
    for variable in pspdg.variables:
        if variable.context not in chain:
            continue
        if id(variable.storage) in seen:
            continue
        seen.add(id(variable.storage))
        if isinstance(variable.storage, Argument):
            # The runtime cannot privatize argument-aliased storage
            # (no allocated_type, and frame.args pointers would keep
            # aiming at the shared object): leave it shared; the
            # simulated oracle exposes plans that needed more.
            continue
        if variable.is_reducible():
            recipe.reductions.append(
                (variable.storage, REDUCTION_OPS.get(
                    variable.reducer_op, variable.reducer_op
                ))
            )
            continue
        in_loop = analyses.accesses_for(variable.storage, loop)
        if not any(access.is_write for access in in_loop):
            continue  # read-only here: keep it shared
        if live_out is None:
            live_out = analyses.live_out(loop)
        obj = _storage_object(analyses.alias, variable.storage)
        if obj not in live_out:
            recipe.privatized.append(variable.storage)
            continue
        op = _update_reduction_op(in_loop)
        if op is not None:
            # Identity-seeded per-worker copies merged at the join are
            # correct whether or not iterations actually collide, so
            # this outranks the (sequential, symbol-level) carried test —
            # which calls ``p[k] op= e`` with an indirect ``k`` distance-0.
            recipe.reductions.append((variable.storage, op))
            continue
        if not analyses.carried_at(variable.storage, loop):
            # Iteration-disjoint accesses (e.g. ``p[i] = 0``): shared
            # storage reproduces the sequential state exactly.
            continue
        recipe.firstprivate.append(variable.storage)
        recipe.lastprivate.append(variable.storage)
    return recipe


def _shift_assignment(assignment, values, shift):
    """Skewed fusion: re-aim this member's chunks by ``-shift``.

    A uniform dependence distance ``shift`` means iteration ``i`` of
    this member conflicts with iteration ``i - shift`` of the partner
    chunked at the same position, so giving the worker that owns base
    value ``v`` this member's value ``v - shift`` keeps every such pair
    worker-local (and in member order, since segments drain in order).
    Values that shift out of the iteration space leave their base chunk
    uncovered at the far end; those leftovers run on worker 0 — their
    conflict partners fell outside the space, so they conflict with
    no one and any placement is safe.
    """
    space = set(values)
    shifted = []
    covered = set()
    for chunk in assignment:
        moved = [v - shift for v in chunk if (v - shift) in space]
        covered.update(moved)
        shifted.append(moved)
    leftovers = set(space) - covered
    if leftovers:
        shifted[0] = sorted(set(shifted[0]) | leftovers)
    return shifted


class _Worker:
    """One worker executing its chunk of every member loop of a region.

    ``segments`` holds one ``(loop, iterations)`` pair per member; the
    worker drains them in order (member A's chunk, then member B's) with
    no barrier in between — the simulated backend steps workers through
    their segments independently, and the real backends run the segment
    list inside one thread/process dispatch.
    """

    __slots__ = (
        "index",
        "segments",
        "segment",
        "cursor",
        "frame",
        "block",
        "position",
        "done",
        "waiting_for",
        "held",
        "last_value",
        "steps",
        "seconds",
        "private_globals",
        "private_allocas",
        "nest",
    )

    def __init__(self, index, segments, frame):
        self.index = index
        self.segments = segments  # [(loop, iteration values), ...]
        self.segment = 0
        self.cursor = 0
        self.nest = None  # interchanged nest's outer Loop (values are pairs)
        self.frame = frame
        self.block = None
        self.position = 0
        self.done = not any(iterations for _loop, iterations in segments)
        self.waiting_for = None  # lock name when blocked
        self.held = set()
        self.last_value = None
        self.steps = 0
        self.seconds = 0.0
        self.private_globals = set()  # privatized global names
        self.private_allocas = set()  # privatized Alloca instructions

    @property
    def current_loop(self):
        return self.segments[self.segment][0]

    @property
    def iterations(self):
        """This worker's iteration values across all segments (flat)."""
        values = []
        for _loop, iterations in self.segments:
            values.extend(iterations)
        return values

    def segment_iterations(self, segment):
        return self.segments[segment][1]


class ParallelInterpreter(Interpreter):
    """Interpreter that executes selected loops on a pluggable backend."""

    def __init__(self, module, parallelizations, workers=4, seed=0,
                 max_steps=50_000_000, backend="simulated",
                 schedule="static", chunk=None, pool_size=None,
                 prelude=None, compile_regions=None, quarantine=None,
                 retry_budget=None, failover=None, adaptive=None,
                 replan=None):
        super().__init__(module, max_steps)
        if (
            not isinstance(workers, int)
            or isinstance(workers, bool)
            or workers < 1
        ):
            raise PlanError(
                f"workers must be a positive integer, got {workers!r}"
            )
        self.workers = workers
        self.seed = seed
        self.backend = get_backend(backend)
        self.schedule = schedule
        self.chunk = chunk
        self.pool_size = pool_size  # processes-pool sizing (machine cores)
        # None defers to the REPRO_COMPILE env knob so existing callers
        # opt in without signature changes.
        self.compile_regions = (
            bool(knobs.REPRO_COMPILE) if compile_regions is None
            else bool(compile_regions)
        )
        # Supervised-dispatch policy: a Session-scoped quarantine (the
        # degradation ladder's denylist), a per-region retry budget, and
        # the failover switch.  None defers to the REPRO_* knobs.
        self.quarantine = quarantine
        self.retry_budget = retry_budget
        self.failover = failover
        # Adaptive mid-run replanning: after a dispatched region's
        # measurements diverge from the plan's predictions, the
        # *remaining* dispatches' cost decisions (backend override,
        # tile) are re-derived through optimize_plan with a calibrated
        # machine model.  ``replan`` is a planner ReplanContext; without
        # one, adaptive mode has nothing to re-derive and stays off.
        self.adaptive = (
            bool(knobs.REPRO_ADAPTIVE) if adaptive is None
            else bool(adaptive)
        )
        self.replan_context = replan
        self.replan_events = []
        self._replan_settled = set()  # labels whose last replan changed nothing
        self._calibrated_upto = 0  # parallel_regions already fed to the store
        if self.backend.name == "processes":
            # Track every shared-state write between region dispatches:
            # the payload codec ships dirty-slot deltas against the pool
            # workers' resident preludes instead of re-pickling the full
            # shared state per region.
            self.enable_write_log()
            if prelude is not None:
                # A caller-owned prelude codec (Session handoff): the
                # resident-state hash chain continues across runs.
                prelude.adopt_log(self.write_log)
                self._prelude_codec = prelude
        regions = [_as_region(p) for p in parallelizations]
        self._regions = {region.header: region for region in regions}
        for region in regions:
            for recipe in region.recipes:
                # Fail fast: a zero/negative chunk must be a PlanError,
                # not an empty (or runaway) partition at execution time.
                make_scheduler(schedule, chunk if chunk is not None
                               else recipe.chunk)
        if not regions:
            make_scheduler(schedule, chunk)  # still validate the names
        self._locks = {}  # lock key -> worker index or None
        self._loops_by_function = {}
        self.parallel_regions = []  # per-region stats, in execution order
        # Sequential-stretch compilation state: per-function entry memo
        # (keyed by name/logged/verify), the module content hash (lazy —
        # it keys the codegen source cache), and call-mode counters.
        self._seq_entries = {}
        self._seq_module_key = None
        self._verify_safe_memo = {}
        self.sequence_stats = {"compiled": 0, "interpreted": 0}

    def run(self, function_name="main", args=(), profiler=None):
        self.parallel_regions = []
        self.sequence_stats = {"compiled": 0, "interpreted": 0}
        self.replan_events = []
        self._replan_settled = set()
        self._calibrated_upto = 0
        result = super().run(function_name, args, profiler)
        result.parallel_regions = list(self.parallel_regions)
        result.sequence_stats = dict(self.sequence_stats)
        result.replan_events = list(self.replan_events)
        # How many parallel_regions a mid-run replan already fed to the
        # calibration store — the Session's post-run calibration starts
        # there so no region is ever counted twice.
        result.calibrated_upto = self._calibrated_upto
        return result

    def invalidate_prelude(self):
        """Forget the pool workers' resident shared state.

        Required after mutating shared storage *behind the write log's
        back* (e.g. poking ``global_values`` storage directly between
        regions): the next region ships the full prelude instead of a
        dirty delta that would silently miss the mutation.  The
        ``VERIFY_PRELUDE`` mode exists to catch exactly the cases where
        this call was forgotten.
        """
        prelude = getattr(self, "_prelude_codec", None)
        if prelude is not None:
            prelude.invalidate()
        if self.write_log is not None:
            self.write_log.clear()

    # -- loop takeover ---------------------------------------------------------

    def _maybe_run_parallel_loop(self, next_block, from_block, frame):
        region = self._regions.get(next_block.name)
        if region is None:
            return None
        loops = []
        for recipe in region.recipes:
            loop = self._find_loop(frame.function, recipe.header)
            if loop is None or loop.canonical is None:
                raise PlanError(
                    f"parallel loop {recipe.header} lacks canonical form"
                )
            loops.append(loop)
        # An interchanged nest is keyed (and guarded) at the *outer*
        # header: the whole nest runs in one takeover, and control
        # resumes at the outer loop's exit.
        outer = self._region_outer_loop(region, frame)
        guard = outer if outer is not None else loops[0]
        if from_block in guard.blocks:
            return None  # back edge: loop already running (shouldn't occur)
        self._execute_parallel_region(loops, region, frame)
        # Control resumes after the *last* member; fusion legality
        # guarantees nothing but induction glue lives in between.
        resume = (outer or loops[-1]).canonical.exit
        return frame.function.block(resume)

    def _region_outer_loop(self, region, frame):
        """The interchanged nest's outer loop, or None for flat regions."""
        if not region.outer_header:
            return None
        outer = self._find_loop(frame.function, region.outer_header)
        if outer is None or outer.canonical is None:
            raise PlanError(
                f"interchange outer loop {region.outer_header} "
                f"lacks canonical form"
            )
        return outer

    def _find_loop(self, function, header_name):
        if function.name not in self._loops_by_function:
            self._loops_by_function[function.name] = {
                loop.header.name: loop
                for loop in find_natural_loops(function)
            }
        return self._loops_by_function[function.name].get(header_name)

    # -- compiled sequential stretches -----------------------------------------

    def _run_function(self, function, args):
        """Run a function body compiled when region compilation is on.

        The sequential stretches between parallel regions lower to one
        exec-compiled state machine per function
        (:mod:`repro.codegen.seq`); a refused lowering, a profiled run,
        or a :class:`~repro.codegen.runtime.Bailout` falls back to the
        inherited interpreter loop — never fail.  Compiled ``call``
        sites re-enter here, so callees compile recursively.
        """
        entry, verify = self._sequence_entry(function)
        if entry is None:
            return super()._run_function(function, args)
        mode, value = codegen_runtime.execute_sequence(
            entry, self, function, args, self._interpret_function,
            verify=verify,
        )
        self.sequence_stats[mode] += 1
        return value

    def _interpret_function(self, function, args):
        """The base interpreter loop (Bailout fallback, verify authority)."""
        return Interpreter._run_function(self, function, args)

    def _sequence_entry(self, function):
        """``(CompiledSequence or None, verify)`` for this function body.

        Memoized per (name, logged, verify): the stop spec and the
        content key are fixed for this interpreter's lifetime.  Under
        ``VERIFY_COMPILED`` only functions whose call graph reaches no
        planned region compile (the oracle replays the whole body, and
        a region dispatch is not replayable); everything else runs
        interpreted, where chunk-level verification still applies.
        """
        if not self.compile_regions or self._profiler is not None:
            return None, False
        verify = bool(knobs.VERIFY_COMPILED)
        logged = self.write_log is not None
        key = (function.name, logged, verify)
        try:
            return self._seq_entries[key]
        except KeyError:
            pass
        stops = codegen_seq.sequence_stops(self._regions, function)
        if verify and (stops or not self._verify_safe(function)):
            result = (None, False)
        else:
            entry = codegen_cache.compiled_sequence(
                self.module, function, stops,
                logged=logged or verify,
                module_key=self._content_key(),
            )
            result = (entry, verify)
        self._seq_entries[key] = result
        return result

    def _verify_safe(self, function):
        """True when no planned region is reachable through the call graph."""
        cached = self._verify_safe_memo.get(function.name)
        if cached is not None:
            return cached
        safe = True
        seen = set()
        stack = [function]
        while stack:
            fn = stack.pop()
            if fn.name in seen:
                continue
            seen.add(fn.name)
            if any(b.name in self._regions for b in fn.blocks):
                safe = False
                break
            stack.extend(
                inst.callee for inst in fn.instructions()
                if isinstance(inst, Call)
            )
        self._verify_safe_memo[function.name] = safe
        return safe

    def _content_key(self):
        if self._seq_module_key is None:
            from repro.runtime.payload import module_codec

            self._seq_module_key = module_codec(self.module).key
        return self._seq_module_key

    def _compiled_region_stop(self, header, frame):
        """Region takeover for compiled sequential stretches.

        Mirrors :meth:`_maybe_run_parallel_loop` minus the back-edge
        check: compiled bodies only transfer here from outside the
        region's loop blocks (the lowering refuses anything else), and
        resume at the statically-known canonical exit.
        """
        region = self._regions[header]
        loops = []
        for recipe in region.recipes:
            loop = self._find_loop(frame.function, recipe.header)
            if loop is None or loop.canonical is None:
                raise PlanError(
                    f"parallel loop {recipe.header} lacks canonical form"
                )
            loops.append(loop)
        self._execute_parallel_region(loops, region, frame)

    # -- the parallel region ------------------------------------------------------

    def _execute_parallel_region(self, loops, region_par, frame):
        if region_par.speculative and self.backend.name != "simulated":
            raise PlanError(
                f"region {region_par.label} is speculative "
                f"({region_par.speculative}) and was never "
                f"oracle-validated; only the simulated backend may "
                f"execute it"
            )
        outer_loop = self._region_outer_loop(region_par, frame)
        outer_values = None
        if outer_loop is not None:
            outer_values = self._loop_values(outer_loop, frame)

        shifts = region_par.member_shifts or ()
        members = []  # (loop, recipe, values, per-worker assignment)
        for position, (loop, recipe) in enumerate(
            zip(loops, region_par.recipes)
        ):
            values = self._loop_values(loop, frame)
            chunk = self.chunk if self.chunk is not None else recipe.chunk
            scheduler = make_scheduler(self.schedule, chunk)
            # Tiling caps how many workers get non-empty chunks; the
            # rest are padded empty so worker count stays uniform (the
            # backends only dispatch payloads for non-empty workers).
            partitions = self._partition_count(len(values), region_par)
            assignment = scheduler.partition(values, partitions)
            assignment = assignment + [
                [] for _ in range(self.workers - partitions)
            ]
            shift = shifts[position] if position < len(shifts) else 0
            if shift:
                assignment = _shift_assignment(assignment, values, shift)
            if outer_values is not None:
                # Interchanged nest: the *inner* space was partitioned;
                # each worker sweeps its inner slice once per outer
                # value, in outer-major order, so same-inner-value
                # outer-carried flow stays worker-local and in order.
                values = [(t, i) for t in outer_values for i in values]
                assignment = [
                    [(t, i) for t in outer_values for i in chunk_values]
                    for chunk_values in assignment
                ]
            members.append((loop, recipe, values, assignment))

        merged = region_par.merged_recipe()
        frame_loops = (
            loops if outer_loop is None else [outer_loop] + list(loops)
        )
        workers = []
        for index in range(self.workers):
            segments = [
                (loop, assignment[index])
                for loop, _recipe, _values, assignment in members
            ]
            worker = _Worker(index, segments, None)
            worker.nest = outer_loop
            self._make_worker_frame(worker, frame, merged, frame_loops)
            workers.append(worker)

        region = ParallelRegion(
            loops=loops, region=region_par, frame=frame, workers=workers
        )
        self._critical_regions = self._critical_region_map(
            frame.function, region_par.removed_sync_uids
        )
        backend = self._effective_backend(region_par)
        started = time.perf_counter()
        self._dispatch_region(
            backend, region, region_par, frame, merged, frame_loops
        )
        elapsed = time.perf_counter() - started
        if backend is not self.backend:
            region.backend_used = (
                f"{self.backend.name}->{region.backend_used}(small-region)"
            )
        self._join(workers, members, frame)
        chunk = (self.chunk if self.chunk is not None
                 else region_par.recipes[0].chunk)
        stats = {
            "header": region_par.label,
            "fused": region_par.fused,
            "backend": region.backend_used or backend.name,
            "schedule": self.schedule,
            "workers": self.workers,
            "chunk": chunk,
            "iterations": sum(len(values) for _l, _r, values, _a in members),
            "payloads": region.payloads,
            "payload_bytes": region.payload_bytes,
            "dirty_slots": region.dirty_slots,
            "naive_payload_bytes": region.naive_payload_bytes,
            "prelude_hits": region.prelude_hits,
            "prelude_misses": region.prelude_misses,
            "prelude_bytes_saved": region.prelude_bytes_saved,
            "retry_payload_bytes": region.retry_payload_bytes,
            "compiled_chunks": region.compiled_chunks,
            "interpreted_chunks": region.interpreted_chunks,
            "codegen_compiles": region.codegen_compiles,
            "codegen_source_hits": region.codegen_source_hits,
            "codegen_fallbacks": region.codegen_fallbacks,
            "retries": region.retries,
            "failovers": region.failovers,
            "faults_injected": region.faults_injected,
            "recovery_ms": region.recovery_ms,
            "seconds": elapsed,
            "per_worker": [
                {
                    "worker": worker.index,
                    "iterations": len(worker.iterations),
                    "steps": worker.steps,
                    "seconds": worker.seconds,
                }
                for worker in workers
            ],
        }
        self.parallel_regions.append(stats)
        events_before = len(self.replan_events)
        self._maybe_replan(stats)
        stats["replans"] = len(self.replan_events) - events_before

    # -- the graceful-degradation ladder ---------------------------------------

    def _dispatch_region(self, backend, region, region_par, frame,
                         merged, frame_loops):
        """Run the region on ``backend``, descending the ladder on failure.

        Only supervised ``processes`` dispatches get the ladder: a
        region whose retry budget is exhausted
        (:class:`RegionDispatchError`) fails over to the threads
        backend, then to serial interpretation — each rung re-running
        the *whole* region against the intact pre-dispatch state (lower
        rungs mutate parent storage live, so they snapshot/restore
        around a failed attempt).  The Session quarantine remembers the
        rung that worked, keyed by program content hash + region label,
        so warm re-runs skip the doomed path.  Plain
        :class:`EmulationError` from the processes rung is a *program*
        error and propagates untouched.
        """
        failover = (
            self.failover if self.failover is not None
            else bool(knobs.REPRO_FAILOVER)
        )
        if (
            backend.name != "processes"
            or not failover
            or not knobs.REPRO_SUPERVISE
        ):
            backend.run_region(self, region)
            return
        key = (self._content_key(), region_par.label)
        rung = (
            self.quarantine.rung_for(key)
            if self.quarantine is not None else None
        )
        suffix = "quarantine" if rung is not None else "failover"
        chain = []
        if rung is None:
            try:
                backend.run_region(self, region)
                return
            except RegionDispatchError as exc:
                chain.append(str(exc))
                region.failovers += 1
                rung = "threads"
        if rung == "threads":
            snapshot = self._region_snapshot(region)
            try:
                ThreadsBackend().run_region(self, region)
                region.backend_used = f"processes->threads({suffix})"
                if self.quarantine is not None:
                    self.quarantine.demote(key, "threads")
                return
            except EmulationError as exc:
                chain.append(str(exc))
                region.failovers += 1
                self._restore_region(
                    snapshot, region, frame, merged, frame_loops
                )
        snapshot = self._region_snapshot(region)
        try:
            SerialBackend().run_region(self, region)
            region.backend_used = f"processes->serial({suffix})"
            if self.quarantine is not None:
                self.quarantine.demote(key, "serial")
        except EmulationError as exc:
            self._restore_region(snapshot, region, frame, merged, frame_loops)
            chain.append(str(exc))
            raise EmulationError(
                f"region {region_par.label} failed on every rung of the "
                "degradation ladder: " + " | ".join(chain)
            ) from exc

    def _region_snapshot(self, region):
        """Capture everything a lower ladder rung may tear on failure.

        The threads/serial rungs execute through shims that share the
        parent's storage, so a mid-region failure leaves partial writes
        behind; this captures every shared storage list (the same walk
        the payload codec uses to enumerate them) plus the region's
        chunk counters.  ``interp.output``/``steps`` need no capture:
        both backends collect results only after every worker finished.
        """
        from repro.runtime.payload import _walk_storages

        storages = _walk_storages(region.frame, self._global_storage)
        return (
            [(storage, list(storage)) for storage in storages],
            region.compiled_chunks,
            region.interpreted_chunks,
        )

    def _restore_region(self, snapshot, region, frame, merged, frame_loops):
        """Roll shared state back to ``snapshot`` and rebuild the workers.

        The write log keeps its marks for the restored slots — shipping
        an unchanged slot in the next dirty delta is wasteful but
        correct, while unmarking a restored slot could hide a genuine
        pre-region write.  Worker frames are rebuilt from scratch:
        their private reduction/lastprivate copies were mutated by the
        failed rung.
        """
        storages, compiled, interpreted = snapshot
        for storage, values in storages:
            if self.write_log is not None:
                for slot in range(len(values)):
                    record_write(self.write_log, storage, slot)
            storage[:] = values
        region.compiled_chunks = compiled
        region.interpreted_chunks = interpreted
        for worker in region.workers:
            self._make_worker_frame(worker, frame, merged, frame_loops)

    def _loop_values(self, loop, frame):
        canonical = loop.canonical
        lower = self._value(canonical.lower, frame)
        upper = self._value(canonical.upper, frame)
        step = self._value(canonical.step, frame)
        if step <= 0:
            raise PlanError("parallel loops require a positive step")
        return list(range(lower, upper, step))

    def _partition_count(self, trip, region_par):
        """Workers that get non-empty chunks (tiling floors chunk size)."""
        if not region_par.tile:
            return self.workers
        needed = -(-trip // region_par.tile) if trip else 1
        return max(1, min(self.workers, needed))

    def _effective_backend(self, region_par):
        """The region's backend: the configured one unless a small-region
        override reroutes a ``processes`` dispatch onto threads, or a
        mid-run replan serialized the region outright.

        The override only ever *reduces* dispatch weight; the simulated
        oracle is left untouched so race detection stays
        level-independent.  A ``"sequential"`` override can only appear
        mid-run (statically-serialized descriptors never reach the
        runtime — ``recipes_from_plan`` drops them): the region keeps
        its trigger header, partitioning, and worker-order merge, but
        runs each worker's chunk on the dispatching thread
        (:class:`SerialBackend`), so the result is bit-identical to the
        threads dispatch it replaces.
        """
        if region_par.backend_override == "sequential" and (
            self.backend.name in ("threads", "processes")
        ):
            return SerialBackend()
        if (
            region_par.backend_override == "threads"
            and self.backend.name == "processes"
        ):
            return get_backend("threads")
        return self.backend

    # -- adaptive mid-run replanning -------------------------------------------

    def _maybe_replan(self, stats):
        """Re-derive remaining cost decisions when ``stats`` diverges.

        Runs between region dispatches (after the join wrote the
        region's effects back — the deferred-apply invariant: a replan
        can never observe or double-apply a half-finished region).
        Recovery-inflated regions neither calibrate nor trigger: their
        timings measure the fault injector, not the machine.  Legality
        is untouched — the replan re-runs the same ``optimize_plan``
        pipeline on the same PS-PDG, and only ``backend_override`` /
        ``tile`` of regions with an *identical* member-header set are
        adopted, so the set of takeover trigger headers (baked into
        compiled sequential stretches) never changes mid-run.
        """
        ctx = self.replan_context
        if not self.adaptive or ctx is None:
            return
        if (
            stats.get("retries")
            or stats.get("failovers")
            or stats.get("faults_injected")
        ):
            return
        label = stats["header"]
        if label in self._replan_settled:
            return
        reasons = self._plan_divergence(stats, ctx)
        if not reasons:
            return
        fresh = self.parallel_regions[self._calibrated_upto:]
        self._calibrated_upto = len(self.parallel_regions)
        ctx.store.observe_run(fresh, program_key=ctx.program_key)
        machine = ctx.store.calibrated_machine(ctx.machine)
        payload_bytes, prelude_warm, compiled_speedup = (
            self._live_feedback()
        )
        from repro.opt import optimize_plan

        result = optimize_plan(
            ctx.function, ctx.module, ctx.pdg, ctx.pspdg, ctx.plan,
            ctx.level, machine=machine, loops=ctx.loops,
            payload_bytes=payload_bytes, prelude_warm=prelude_warm,
            compiled_speedup=compiled_speedup,
            compile_regions=self.compile_regions,
        )
        changes = self._adopt_plan(result.plan)
        if changes:
            self.replan_events.append({
                "after": label,
                "reasons": reasons,
                "changes": changes,
                "machine": {
                    name: value
                    for name, (value, _samples)
                    in ctx.store.measured_coefficients().items()
                },
            })
        else:
            # The calibrated model agreed with the running choices for
            # this label; stop re-pricing it on every later dispatch.
            self._replan_settled.add(label)

    def _live_feedback(self):
        """This run's measured wire feedback so far, per region label."""
        from repro.pipeline.diagnostics import Diagnostics

        scratch = Diagnostics()
        for region in self.parallel_regions:
            if not (
                region.get("retries")
                or region.get("failovers")
                or region.get("faults_injected")
            ):
                scratch.record_parallel(region)
        payload_bytes, prelude_warm, compiled_speedup, _ = (
            scratch.payload_feedback()
        )
        return payload_bytes, prelude_warm, compiled_speedup

    def _plan_divergence(self, stats, ctx):
        """Measured-vs-predicted divergence reasons for one region, if any.

        Three detectors, each against its knob:

        * dispatch overhead (wall time minus slowest worker's compute)
          exceeding ``REPRO_REPLAN_THRESHOLD`` times the compute — the
          region is mispriced for its backend;
        * per-worker step imbalance (max/mean over workers with
          iterations) exceeding ``REPRO_REPLAN_IMBALANCE`` — the
          schedule's chunking fits the iteration space badly;
        * measured bytes-per-payload outside ``REPRO_REPLAN_THRESHOLD``
          of the planner's assumption (``ctx.predicted_bytes``) — the
          serialization bar was computed from stale feedback.
        """
        reasons = []
        threshold = float(knobs.REPRO_REPLAN_THRESHOLD.value)
        imbalance_limit = float(knobs.REPRO_REPLAN_IMBALANCE.value)
        per_worker = stats.get("per_worker", ())
        seconds = stats.get("seconds", 0.0)
        compute = max(
            (worker.get("seconds", 0.0) for worker in per_worker),
            default=0.0,
        )
        if compute > 0 and seconds > 1e-4:
            ratio = (seconds - compute) / compute
            if ratio > threshold:
                reasons.append({
                    "kind": "dispatch-overhead",
                    "ratio": round(ratio, 3),
                    "threshold": threshold,
                })
        busy = [
            worker["steps"] for worker in per_worker
            if worker.get("iterations")
        ]
        if len(busy) > 1 and sum(busy):
            imbalance = max(busy) / (sum(busy) / len(busy))
            if imbalance > imbalance_limit:
                reasons.append({
                    "kind": "imbalance",
                    "ratio": round(imbalance, 3),
                    "threshold": imbalance_limit,
                })
        payloads = stats.get("payloads", 0)
        predicted = ctx.predicted_bytes.get(stats["header"])
        if payloads and predicted:
            measured = stats.get("payload_bytes", 0) / payloads
            ratio = measured / predicted
            if ratio > threshold or ratio < 1.0 / threshold:
                reasons.append({
                    "kind": "payload-bytes",
                    "ratio": round(ratio, 3),
                    "threshold": threshold,
                })
        return reasons

    def _adopt_plan(self, plan):
        """Adopt a replanned plan's cost decisions, preserving triggers.

        Only regions whose (member headers, outer header) identity
        matches a live region adopt the new ``backend_override`` and
        ``tile`` — structural differences (a different fusion grouping,
        a region the new plan dropped) are ignored, because adding or
        removing a takeover trigger mid-run would invalidate the
        compiled sequential stretches' memoized stop sets.  Mutating
        the live :class:`RegionParallelization` in place keeps
        ``self._regions``' keys and the derived recipes untouched.
        """
        by_identity = {
            (descriptor.headers, descriptor.outer_header): descriptor
            for descriptor in plan.regions
        }
        changes = []
        for region in self._regions.values():
            descriptor = by_identity.get(
                (region.headers, region.outer_header)
            )
            if descriptor is None:
                continue
            override = descriptor.backend_override
            tile = descriptor.tile
            if (
                override == region.backend_override
                and tile == region.tile
            ):
                continue
            changes.append({
                "region": region.label,
                "backend_override": [region.backend_override, override],
                "tile": [region.tile, tile],
            })
            region.backend_override = override
            region.tile = tile
        return changes

    def _make_worker_frame(self, worker, frame, recipe, loops):
        worker_frame = _Frame(frame.function, frame.args)
        worker_frame.registers = dict(frame.registers)
        worker_frame.objects = frame.objects  # shared by default
        worker_frame.global_overlay = dict(frame.global_overlay)

        # Private copies (fresh, firstprivate-seeded, or identity-seeded).
        private_objects = {}
        storage_remap = {}  # id(shared list) -> private list
        privatized_ids = set()

        def privatize(storage, seed_values):
            if id(storage) in privatized_ids:
                return
            privatized_ids.add(id(storage))
            private = list(seed_values)
            if isinstance(storage, GlobalVariable):
                shared = self._effective_global(frame, storage.name)
                worker_frame.global_overlay[storage.name] = private
                worker.private_globals.add(storage.name)
            else:
                shared = frame.objects.get(storage)
                private_objects[storage] = private
                worker.private_allocas.add(storage)
            if shared is not None:
                storage_remap[id(shared)] = private

        for loop in loops:
            induction = loop.canonical.induction
            privatize(induction, [0])
            # A fused member's induction alloca may never have executed
            # in the parent frame (its preheader is skipped by the fused
            # takeover), so materialize its pointer register directly.
            private = private_objects.get(induction)
            if private is not None:
                worker_frame.registers[induction] = (private, 0)
        for storage in recipe.privatized:
            privatize(storage, self._zeros_for(storage))
        for storage in recipe.firstprivate:
            privatize(storage, self._current_values(storage, frame))
        for storage, op in recipe.reductions:
            identity = self._identity_values(storage, op)
            privatize(storage, identity)
        for storage in recipe.lastprivate:
            # Already-private storages (e.g. firstprivate-seeded scratch)
            # keep their seed; plain lastprivate starts zeroed.
            privatize(storage, self._zeros_for(storage))

        if private_objects:
            # Copy-on-write object table: private entries shadow shared.
            shared = frame.objects
            table = dict(shared)
            table.update(private_objects)
            worker_frame.objects = table

        # Pointers already materialized in registers (alloca results, geps
        # computed before the loop) still point at the *shared* storage;
        # re-aim them at the private copies.
        for key, value in worker_frame.registers.items():
            if (
                isinstance(value, tuple)
                and len(value) == 2
                and id(value[0]) in storage_remap
            ):
                worker_frame.registers[key] = (
                    storage_remap[id(value[0])],
                    value[1],
                )
        worker.frame = worker_frame
        return worker_frame

    def _zeros_for(self, storage):
        if isinstance(storage, GlobalVariable):
            return self._zero_storage(storage.value_type)
        return self._zero_storage(storage.allocated_type)

    def _current_values(self, storage, frame):
        if isinstance(storage, GlobalVariable):
            return list(self._effective_global(frame, storage.name))
        if storage in frame.objects:
            return list(frame.objects[storage])
        return self._zeros_for(storage)

    def _identity_values(self, storage, op):
        if op not in _IDENTITY:
            raise PlanError(f"no identity for reduction op {op!r}")
        identity = _IDENTITY[op]
        value_type = (
            storage.value_type
            if isinstance(storage, GlobalVariable)
            else storage.allocated_type
        )
        scalar = value_type
        while hasattr(scalar, "element"):
            scalar = scalar.element
        if scalar == FLOAT and op in ("add", "mul"):
            identity = float(identity)
        return [identity] * value_type.slots()

    # -- simulated scheduling (the interleaving oracle) -------------------------

    def _run_workers(self, workers, frame):
        import random

        rng = random.Random(self.seed)
        runnable = [w for w in workers if not w.done]
        for worker in runnable:
            self._start_next_iteration(worker)
        while True:
            candidates = [
                w
                for w in workers
                if not w.done and self._can_run(w)
            ]
            if not candidates:
                if any(not w.done for w in workers):
                    raise EmulationError(
                        "parallel deadlock: all remaining workers blocked"
                    )
                return
            worker = rng.choice(candidates)
            self._step_worker(worker)

    def _can_run(self, worker):
        if worker.waiting_for is None:
            return True
        holder = self._locks.get(worker.waiting_for)
        return holder is None or holder == worker.index

    def _start_next_iteration(self, worker):
        # Advance to the next member segment with work left (no barrier:
        # this worker moves on while siblings may still be in earlier
        # members — fusion legality keeps cross-member flow per-worker).
        while (
            worker.segment < len(worker.segments)
            and worker.cursor >= len(worker.segment_iterations(worker.segment))
        ):
            worker.segment += 1
            worker.cursor = 0
        if worker.segment >= len(worker.segments):
            worker.done = True
            self._release_all(worker)
            return
        loop = worker.current_loop
        value = worker.segment_iterations(worker.segment)[worker.cursor]
        worker.cursor += 1
        worker.last_value = value
        if worker.nest is not None and isinstance(value, tuple):
            # Interchanged nest: the value is an (outer, inner) pair;
            # both inductions were privatized in _make_worker_frame.
            outer_value, value = value
            outer_induction = worker.nest.canonical.induction
            worker.frame.objects[outer_induction][0] = outer_value
        induction = loop.canonical.induction
        worker.frame.objects[induction] = worker.frame.objects.get(
            induction, [0]
        )
        # Ensure the induction storage is private (set in _make_worker_frame).
        worker.frame.objects[induction][0] = value
        worker.block = loop.header.parent.block(loop.canonical.body)
        worker.position = 0

    def _step_worker(self, worker):
        loop = worker.current_loop
        # Honor pending lock acquisition.
        if worker.waiting_for is not None:
            lock = worker.waiting_for
            holder = self._locks.get(lock)
            if holder is None:
                self._locks[lock] = worker.index
                worker.held.add(lock)
                worker.waiting_for = None
            elif holder != worker.index:
                return
            else:
                worker.waiting_for = None

        block = worker.block
        if worker.position >= len(block.instructions):
            raise EmulationError(f"worker fell off block {block.name}")
        inst = block.instructions[worker.position]
        self.steps += 1
        worker.steps += 1
        if self.steps > self.max_steps:
            raise EmulationError("parallel execution exceeded max_steps")

        if isinstance(inst, Terminator):
            if inst.opcode == "return":
                raise EmulationError(
                    "return inside a parallelized loop body"
                )
            next_block = self._branch_target(inst, worker.frame)
            if next_block is loop.header:
                # Iteration finished (came around from the latch).
                self._release_all(worker)
                self._start_next_iteration(worker)
                return
            self._update_locks(worker, block, next_block)
            worker.block = next_block
            worker.position = 0
            return

        self._execute(inst, worker.frame)
        worker.position += 1

    # -- critical sections ----------------------------------------------------

    def _critical_region_map(self, function, removed_sync_uids=frozenset()):
        """block name -> (lock key, region block set) for critical/atomic.

        Annotations whose uid the optimizer's sync-elimination pass put
        in ``removed_sync_uids`` contribute no lock: their guarded
        objects were proven free of cross-worker dependence at this
        region's loop level.
        """
        mapping = {}
        for annotation in function.annotations:
            if annotation.directive.kind not in ("critical", "atomic"):
                continue
            if annotation.uid in removed_sync_uids:
                continue
            name = annotation.directive.clauses.critical_name
            key = f"critical:{name}" if name else f"anon:{annotation.uid}"
            if annotation.directive.kind == "critical" and name is None:
                key = "critical:<anonymous>"
            if annotation.directive.kind == "atomic":
                key = f"atomic:{annotation.uid}"
            blocks = set(annotation.block_names)
            for block_name in blocks:
                mapping[block_name] = (key, blocks)
        return mapping

    def _update_locks(self, worker, from_block, to_block):
        from_region = self._critical_regions.get(from_block.name)
        to_region = self._critical_regions.get(to_block.name)
        if from_region and (
            to_region is None or to_region[0] != from_region[0]
        ):
            self._release(worker, from_region[0])
        if to_region and to_region[0] not in worker.held:
            holder = self._locks.get(to_region[0])
            if holder is None:
                self._locks[to_region[0]] = worker.index
                worker.held.add(to_region[0])
            else:
                worker.waiting_for = to_region[0]

    def _release(self, worker, lock):
        if lock in worker.held:
            worker.held.discard(lock)
            if self._locks.get(lock) == worker.index:
                self._locks[lock] = None

    def _release_all(self, worker):
        for lock in list(worker.held):
            self._release(worker, lock)

    # -- join -------------------------------------------------------------------

    def _join(self, workers, members, frame):
        # Reductions merge once per (storage, op) across all members: a
        # shared same-op reduction accumulated both members' updates into
        # one per-worker copy, and commutativity makes the grouping
        # unobservable.
        merged_reductions = []
        seen = set()
        for _loop, recipe, _values, _assignment in members:
            for storage, op in recipe.reductions:
                if (id(storage), op) in seen:
                    continue
                seen.add((id(storage), op))
                merged_reductions.append((storage, op))
        # Join writes are marked in the parent's inter-region write log
        # (enabled for processes runs) so the resident-prelude deltas
        # ship them; the log is None on other backends.
        log = self.write_log
        for storage, op in merged_reductions:
            shared = self._shared_storage(storage, frame)
            for worker in workers:
                private = self._private_storage(worker, storage)
                for slot in range(len(shared)):
                    if log is not None:
                        record_write(log, shared, slot)
                    shared[slot] = self._merge(op, shared[slot], private[slot])
        # Lastprivate writes back per member: the worker that executed
        # the member's final iteration owns the sequential final state.
        for segment, (_loop, recipe, values, _assignment) in enumerate(
            members
        ):
            if not recipe.lastprivate:
                continue
            last_value = values[-1] if values else None
            owner = None
            for worker in workers:
                iterations = worker.segment_iterations(segment)
                if iterations and iterations[-1] == last_value:
                    owner = worker
            if owner is None:
                continue
            for storage in recipe.lastprivate:
                shared = self._shared_storage(storage, frame)
                private = self._private_storage(owner, storage)
                if log is not None:
                    for slot in range(len(shared)):
                        record_write(log, shared, slot)
                shared[:] = private

    def _effective_global(self, frame, name):
        """The storage a global's name denotes in ``frame`` (overlay-aware)."""
        overlay = frame.global_overlay.get(name)
        if overlay is not None:
            return overlay
        return self._global_storage[name]

    def _shared_storage(self, storage, frame):
        if isinstance(storage, GlobalVariable):
            return self._effective_global(frame, storage.name)
        return frame.objects[storage]

    def _private_storage(self, worker, storage):
        if isinstance(storage, GlobalVariable):
            return worker.frame.global_overlay[storage.name]
        return worker.frame.objects[storage]

    @staticmethod
    def _merge(op, a, b):
        if op == "add":
            return a + b
        if op == "mul":
            return a * b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        raise PlanError(f"unknown reduction op {op!r}")


def run_parallel(
    module,
    parallelizations,
    function_name="main",
    workers=4,
    seed=0,
    backend="simulated",
    schedule="static",
    chunk=None,
    pool_size=None,
    prelude=None,
    compile_regions=None,
    quarantine=None,
    retry_budget=None,
    failover=None,
    adaptive=None,
    replan=None,
):
    """Execute ``function_name`` with the given loop parallelizations.

    ``parallelizations`` may mix :class:`LoopParallelization` (one loop,
    one region) and :class:`RegionParallelization` (fused) entries.
    ``prelude`` optionally carries a caller-owned
    :class:`~repro.runtime.payload.PreludeCodec` so the ``processes``
    backend's resident-state stream survives across runs; ``quarantine``
    a caller-owned :class:`~repro.runtime.faults.Quarantine` so the
    degradation ladder's denylist does too.  ``retry_budget`` and
    ``failover`` override the ``REPRO_RETRY_BUDGET`` /
    ``REPRO_FAILOVER`` knobs when not None.  ``adaptive`` (default: the
    ``REPRO_ADAPTIVE`` knob) plus a planner ``replan`` context enable
    mid-run replanning of the remaining regions' cost decisions.
    """
    interpreter = ParallelInterpreter(
        module,
        parallelizations,
        workers=workers,
        seed=seed,
        backend=backend,
        schedule=schedule,
        chunk=chunk,
        pool_size=pool_size,
        prelude=prelude,
        compile_regions=compile_regions,
        quarantine=quarantine,
        retry_budget=retry_budget,
        failover=failover,
        adaptive=adaptive,
        replan=replan,
    )
    return interpreter.run(function_name)


def _default_doall_headers(plan, loops):
    """Executable DOALL headers when the plan carries no region info."""
    from repro.planner.plans import TECH_DOALL

    def inside_planned_parent(loop):
        parent = loop.parent
        while parent is not None:
            parent_plan = plan.plan_for(parent.header.name)
            if (
                parent_plan is not None
                and parent_plan.technique == TECH_DOALL
                and parent.canonical is not None
            ):
                return True
            parent = parent.parent
        return False

    headers = []
    for header, loop_plan in sorted(plan.loop_plans.items()):
        if loop_plan.technique != TECH_DOALL:
            continue
        loop = loops.get(header)
        if loop is None or loop.canonical is None:
            continue
        if inside_planned_parent(loop):
            continue
        headers.append(header)
    return headers


def recipes_from_plan(module, pspdg, plan, function):
    """Execution regions for every dispatched loop of ``plan``.

    When the plan carries optimizer-produced :class:`RegionDescriptor`
    entries, they are authoritative: fused regions become multi-member
    :class:`RegionParallelization` recipes, ``"sequential"``-overridden
    regions are dropped (the base interpreter runs those loops), and
    removed-sync/backend-override markers are carried through to the
    dispatch.  A plan without regions gets the historical one region per
    canonical-form DOALL loop (HELIX/DSWP stay analytical-only; loops
    nested inside another planned DOALL are executed by the outer
    takeover).
    """
    from repro.planner.plans import OVERRIDE_SEQUENTIAL

    loops = {
        loop.header.name: loop for loop in find_natural_loops(function)
    }
    analyses = _RecipeAnalyses(function, module)

    def recipe_for(header):
        return parallelization_from_pspdg(
            pspdg, loops[header], module, analyses
        )

    if plan.regions:
        regions = []
        for descriptor in plan.regions:
            if descriptor.backend_override == OVERRIDE_SEQUENTIAL:
                continue
            if not all(
                header in loops and loops[header].canonical is not None
                for header in descriptor.headers
            ):
                continue
            outer = descriptor.outer_header
            if outer is not None and (
                outer not in loops or loops[outer].canonical is None
            ):
                # Nest descriptor against a function where the outer
                # loop is gone/non-canonical: fall back to dispatching
                # the inner loop per outer iteration (the -O0 shape).
                outer = None
            regions.append(
                RegionParallelization(
                    recipes=[recipe_for(h) for h in descriptor.headers],
                    backend_override=descriptor.backend_override,
                    removed_sync_uids=descriptor.removed_sync_uids,
                    outer_header=outer,
                    member_shifts=tuple(descriptor.member_shifts or ()),
                    tile=descriptor.tile,
                    speculative=descriptor.speculative,
                )
            )
        return regions

    return [
        RegionParallelization(recipes=[recipe_for(header)])
        for header in _default_doall_headers(plan, loops)
    ]


def run_plan(module, pspdg, plan, function_name="main", workers=4, seed=0,
             backend="simulated", schedule="static", chunk=None,
             opt_level=None, machine=None, pool_size=None, prelude=None,
             compile_regions=None, quarantine=None, retry_budget=None,
             failover=None, adaptive=None, replan=None):
    """Execute a :class:`ProgramPlan` chosen from the PS-PDG.

    This is the runtime entry point :meth:`repro.Session.run` uses: the
    plan's DOALL loops take over with PS-PDG-derived privatization and
    reduction recipes; everything else runs sequentially.  With
    ``opt_level`` (and the plan not already optimized), the
    :mod:`repro.opt` pipeline rewrites the plan's regions first — fusing
    adjacent loops, eliding redundant locks, serializing small regions.
    """
    function = module.function(function_name)
    if opt_level is not None and not plan.regions:
        from repro.opt import OptLevel, optimize_plan

        level = OptLevel.coerce(opt_level)
        if level > OptLevel.O0:
            from repro.pdg.builder import build_pdg

            pdg = build_pdg(function, module)
            plan = optimize_plan(
                function, module, pdg, pspdg, plan, level, machine
            ).plan
    regions = recipes_from_plan(module, pspdg, plan, function)
    return run_parallel(module, regions, function_name, workers, seed,
                        backend, schedule, chunk, pool_size, prelude,
                        compile_regions, quarantine=quarantine,
                        retry_budget=retry_budget, failover=failover,
                        adaptive=adaptive, replan=replan)


def run_source_plan(module, function_name="main", workers=4, seed=0,
                    backend="simulated", schedule="static", chunk=None,
                    pool_size=None, prelude=None, compile_regions=None,
                    quarantine=None, retry_budget=None, failover=None,
                    adaptive=None, replan=None):
    """Execute the developer's OpenMP plan (all worksharing annotations)."""
    function = module.function(function_name)
    recipes = []
    for annotation in function.annotations:
        if (
            annotation.directive.declares_loop_independence()
            and annotation.loop_header is not None
        ):
            recipes.append(
                parallelization_from_annotation(annotation, function)
            )
    return run_parallel(module, recipes, function_name, workers, seed,
                        backend, schedule, chunk, pool_size, prelude,
                        compile_regions, quarantine=quarantine,
                        retry_budget=retry_budget, failover=failover,
                        adaptive=adaptive, replan=replan)
