"""Deterministic fault injection for the supervised processes backend.

The ``REPRO_FAULTS`` knob carries a scenario spec — e.g.
``crash:region=2:worker=1;hang:p=0.05:seed=7`` — that the pool dispatch
path consults before submitting each worker payload.  Scenarios are
seeded and selector-driven, so a chaos run is exactly reproducible: the
same spec against the same plan injects the same faults in the same
places, in tests, CI, and at a debugger prompt.

Spec grammar (scenarios separated by ``;`` or ``,``; fields by ``:``;
the first field is the kind, the rest are ``key=value``):

================  ====================================================
``crash``         the worker process calls ``os._exit(3)`` mid-region
``hang``          the worker sleeps ``s=`` seconds (default 60) —
                  long enough to trip the region deadline
``corrupt_wire``  the payload's delta bytes are flipped before pickle
                  sees them (guaranteed decode failure, never silent
                  garbage)
``drop_result``   the parent discards the worker's completed result,
                  as a lost wire message would
================  ====================================================

Selectors: ``region=N`` matches the N-th region *dispatch* of the
process (a global ordinal that counts retries separately), ``worker=K``
matches the K-th payload of a region, ``p=<float>`` with ``seed=<int>``
draws per (region, worker) from a string-seeded ``random.Random`` (so
draws agree across processes and runs), and ``times=N`` bounds how many
times the scenario fires (default 1; ``times=0`` is unlimited).

The module also hosts :class:`Quarantine`, the Session-scoped denylist
the graceful-degradation ladder uses to remember which rung a
(program, region) pair last needed.
"""

import dataclasses
import os
import random
import time

from repro.util.errors import PlanError

from . import knobs

_KINDS = ("crash", "hang", "corrupt_wire", "drop_result")


@dataclasses.dataclass
class FaultScenario:
    """One parsed scenario from the ``REPRO_FAULTS`` spec."""

    kind: str
    region: int | None = None
    worker: int | None = None
    p: float | None = None
    seed: int = 0
    times: int = 1
    seconds: float = 60.0
    injected: int = 0

    def matches(self, region, worker):
        """Does this scenario fire for payload ``worker`` of ``region``?"""
        if self.times and self.injected >= self.times:
            return False
        if self.region is not None and region != self.region:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.p is not None:
            draw = random.Random(f"{self.seed}:{region}:{worker}")
            if draw.random() >= self.p:
                return False
        return True

    def directive(self):
        """The in-child action tuple shipped alongside the payload."""
        if self.kind == "hang":
            return ("hang", self.seconds)
        return (self.kind,)


class FaultPlan:
    """All scenarios of one spec, with per-scenario injection budgets."""

    def __init__(self, scenarios):
        self.scenarios = list(scenarios)

    @classmethod
    def from_spec(cls, spec):
        """Parse a ``REPRO_FAULTS`` spec string; raises PlanError."""
        scenarios = []
        for clause in spec.replace(",", ";").split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, rest = clause.partition(":")
            kind = kind.strip()
            if kind not in _KINDS:
                raise PlanError(
                    f"unknown fault kind {kind!r} in REPRO_FAULTS "
                    f"(choose from {', '.join(_KINDS)})"
                )
            scenario = FaultScenario(kind)
            for field in filter(None, rest.split(":")):
                key, sep, value = field.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep:
                    raise PlanError(
                        f"malformed fault field {field!r} in "
                        f"REPRO_FAULTS clause {clause!r}"
                    )
                try:
                    if key == "region":
                        scenario.region = int(value)
                    elif key == "worker":
                        scenario.worker = int(value)
                    elif key == "p":
                        scenario.p = float(value)
                    elif key == "seed":
                        scenario.seed = int(value)
                    elif key == "times":
                        scenario.times = int(value)
                    elif key == "s":
                        scenario.seconds = float(value)
                    else:
                        raise PlanError(
                            f"unknown fault selector {key!r} in "
                            f"REPRO_FAULTS clause {clause!r}"
                        )
                except ValueError as exc:
                    raise PlanError(
                        f"bad fault value {value!r} for {key!r} in "
                        f"REPRO_FAULTS clause {clause!r}"
                    ) from exc
            scenarios.append(scenario)
        return cls(scenarios)

    def draw(self, region, worker):
        """First matching scenario (consuming its budget), or None."""
        for scenario in self.scenarios:
            if scenario.matches(region, worker):
                scenario.injected += 1
                return scenario
        return None

    def __bool__(self):
        return bool(self.scenarios)


# -- module state: the active plan and the region dispatch counter ------------

_ACTIVE_SPEC = None
_ACTIVE_PLAN = None
_REGION_ORDINAL = 0


def active_plan():
    """The FaultPlan for the current ``REPRO_FAULTS`` value, or None.

    Parsed once per distinct spec string; scenario budgets persist
    across regions until :func:`reset` (the test-suite fixture) or a
    spec change.
    """
    global _ACTIVE_SPEC, _ACTIVE_PLAN
    spec = str(knobs.REPRO_FAULTS.value or "").strip()
    if spec != _ACTIVE_SPEC:
        _ACTIVE_SPEC = spec
        _ACTIVE_PLAN = FaultPlan.from_spec(spec) if spec else None
    return _ACTIVE_PLAN


def next_region_ordinal():
    """Allocate the next region-dispatch ordinal (counts retries too)."""
    global _REGION_ORDINAL
    ordinal = _REGION_ORDINAL
    _REGION_ORDINAL += 1
    return ordinal


def reset():
    """Forget the parsed plan, its budgets, and the region counter."""
    global _ACTIVE_SPEC, _ACTIVE_PLAN, _REGION_ORDINAL
    _ACTIVE_SPEC = None
    _ACTIVE_PLAN = None
    _REGION_ORDINAL = 0


def perform(directive):
    """Execute an in-child fault directive (crash or hang)."""
    if directive[0] == "crash":
        os._exit(3)
    elif directive[0] == "hang":
        time.sleep(directive[1])


# -- the Session-scoped quarantine the degradation ladder consults ------------

_RUNG_ORDER = {"threads": 1, "serial": 2}


class Quarantine:
    """Content-hash-keyed denylist of regions that needed a lower rung.

    Keys are ``(module content hash, region label)`` so a warm re-run
    of the same program skips straight to the rung that worked, while
    an edited program gets a fresh chance at full parallel dispatch.
    Demotion is monotonic: a region never climbs back up within one
    Session (re-building the Session — or :meth:`clear` — resets it).
    """

    def __init__(self):
        self._rungs = {}

    def rung_for(self, key):
        """The quarantined rung for ``key`` ("threads"/"serial"/None)."""
        return self._rungs.get(key)

    def demote(self, key, rung):
        """Record that ``key`` needed ``rung``; never promotes."""
        current = self._rungs.get(key)
        if current is None or _RUNG_ORDER[rung] > _RUNG_ORDER[current]:
            self._rungs[key] = rung

    def clear(self):
        self._rungs.clear()

    def entries(self):
        """Snapshot of the denylist (diagnostics / tests)."""
        return dict(self._rungs)

    def __len__(self):
        return len(self._rungs)
