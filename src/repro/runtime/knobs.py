"""Environment knobs for the runtime, read in one place.

The runtime's debug/verification modes are boolean environment
variables.  They used to be scattered module-level ``os.environ`` reads
inside ``runtime/payload.py``, which made two things awkward: a test
that monkeypatched the environment saw no effect (the module had read
it at import), and every new knob re-implemented the same falsy-string
parsing.  Each knob now lives here as a :class:`Knob` instance that

* parses the same falsy set everywhere (``"" 0 false no off``),
* is truthy/falsy directly (``if knobs.VERIFY_DIFFS:``), and
* can be re-read from the environment with :func:`refresh` — the test
  suite calls that around every test so env-based tests compose.

Tests may also assign ``knob.value = True`` (or monkeypatch the module
attributes that re-export these in ``payload.py``) for a process-local
override; ``refresh()`` restores the environment's verdict.
"""

import os

_FALSY = ("", "0", "false", "no", "off")


class Knob:
    """One boolean environment knob with a cached, refreshable value."""

    __slots__ = ("name", "default", "value")

    def __init__(self, name, default=False):
        self.name = name
        self.default = default
        self.value = self._read()

    def _read(self):
        raw = os.environ.get(self.name)
        if raw is None:
            return self.default
        return raw.strip().lower() not in _FALSY

    def refresh(self):
        """Re-read the environment; returns the new value."""
        self.value = self._read()
        return self.value

    def __bool__(self):
        return bool(self.value)

    def __repr__(self):
        return f"Knob({self.name}={bool(self.value)})"


_KNOBS = {}


def flag(name, default=False):
    """Register (or fetch) the knob for environment variable ``name``."""
    knob = _KNOBS.get(name)
    if knob is None:
        knob = _KNOBS[name] = Knob(name, default)
    return knob


def refresh():
    """Re-read every registered knob from the environment."""
    for knob in _KNOBS.values():
        knob.refresh()


def as_dict():
    """Current knob values by name (diagnostics / tests)."""
    return {name: bool(knob) for name, knob in sorted(_KNOBS.items())}


#: Cross-check the write-log diff against the legacy snapshot diff in
#: every pool chunk; fail loudly on divergence.  Travels in the payload.
VERIFY_DIFFS = flag("VERIFY_DIFFS")

#: Measure what the legacy self-contained codec would have shipped
#: (fills ``RegionPayloads.naive_bytes``).  Benchmark-only.
MEASURE_NAIVE = flag("MEASURE_NAIVE")

#: Ship the full state alongside every dirty delta and compare the
#: delta-applied resident image against a fresh decode in the worker.
VERIFY_PRELUDE = flag("VERIFY_PRELUDE")

#: The resident-prelude protocol itself (off = v1-style full state on
#: every region).
RESIDENT_PRELUDE = flag("RESIDENT_PRELUDE", default=True)

#: Run every compiled chunk twice — compiled then interpreted — and
#: fail loudly unless their write-log diffs, outputs, and step counts
#: are identical.  The interpreted run's effects are kept.  Travels in
#: the payload.
VERIFY_COMPILED = flag("VERIFY_COMPILED")

#: Default for ``SessionConfig.compile_regions`` / the runtime's
#: ``compile_regions=None``: lower DOALL chunk bodies to exec-compiled
#: Python instead of the interpreter loop.
REPRO_COMPILE = flag("REPRO_COMPILE")
