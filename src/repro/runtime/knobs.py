"""Environment knobs for the runtime, read in one place.

The runtime's debug/verification modes are boolean environment
variables.  They used to be scattered module-level ``os.environ`` reads
inside ``runtime/payload.py``, which made two things awkward: a test
that monkeypatched the environment saw no effect (the module had read
it at import), and every new knob re-implemented the same falsy-string
parsing.  Each knob now lives here as a :class:`Knob` instance that

* parses the same falsy set everywhere (``"" 0 false no off``),
* is truthy/falsy directly (``if knobs.VERIFY_DIFFS:``), and
* can be re-read from the environment with :func:`refresh` — the test
  suite calls that around every test so env-based tests compose.

Tests may also assign ``knob.value = True`` (or monkeypatch the module
attributes that re-export these in ``payload.py``) for a process-local
override; ``refresh()`` restores the environment's verdict.
"""

import os

_FALSY = ("", "0", "false", "no", "off")


class Knob:
    """One boolean environment knob with a cached, refreshable value."""

    __slots__ = ("name", "default", "value", "doc")

    def __init__(self, name, default=False, doc=""):
        self.name = name
        self.default = default
        self.doc = doc
        self.value = self._read()

    def _read(self):
        raw = os.environ.get(self.name)
        if raw is None:
            return self.default
        return raw.strip().lower() not in _FALSY

    def refresh(self):
        """Re-read the environment; returns the new value."""
        self.value = self._read()
        return self.value

    def __bool__(self):
        return bool(self.value)

    def __repr__(self):
        return f"Knob({self.name}={bool(self.value)})"


class Setting(Knob):
    """A typed (non-boolean) environment knob: str, int, or float.

    Same lifecycle as :class:`Knob` — cached at registration, re-read by
    :func:`refresh`, assignable for process-local overrides — but the
    raw environment string is parsed with ``parse`` (the type of the
    default) instead of the boolean falsy-set.  Unparseable values fall
    back to the default rather than raising at import time.
    """

    __slots__ = ("parse",)

    def __init__(self, name, default, doc=""):
        self.parse = type(default)
        super().__init__(name, default, doc=doc)

    def _read(self):
        raw = os.environ.get(self.name)
        if raw is None:
            return self.default
        try:
            return self.parse(raw.strip())
        except ValueError:
            return self.default

    def __repr__(self):
        return f"Setting({self.name}={self.value!r})"


_KNOBS = {}


def flag(name, default=False, doc=""):
    """Register (or fetch) the knob for environment variable ``name``.

    Re-registering an existing name is fine — many modules share a
    knob — but only with the *same* default: a conflicting default
    would be silently ignored (the first registration won), leaving the
    loser convinced the knob behaves differently than it does.
    """
    knob = _KNOBS.get(name)
    if knob is None:
        knob = _KNOBS[name] = Knob(name, default, doc=doc)
    elif bool(knob.default) != bool(default):
        raise ValueError(
            f"knob {name} already registered with default="
            f"{knob.default!r}; conflicting re-registration with "
            f"default={default!r}"
        )
    elif doc and not knob.doc:
        knob.doc = doc
    return knob


def setting(name, default, doc=""):
    """Register (or fetch) a typed :class:`Setting` for ``name``.

    Same get-or-create/conflict rules as :func:`flag`, but the knob's
    value is parsed with ``type(default)`` (str/int/float) instead of
    boolean truthiness.
    """
    knob = _KNOBS.get(name)
    if knob is None:
        knob = _KNOBS[name] = Setting(name, default, doc=doc)
    elif not isinstance(knob, Setting) or knob.default != default:
        raise ValueError(
            f"knob {name} already registered with default="
            f"{knob.default!r}; conflicting re-registration with "
            f"default={default!r}"
        )
    elif doc and not knob.doc:
        knob.doc = doc
    return knob


def refresh():
    """Re-read every registered knob from the environment."""
    for knob in _KNOBS.values():
        knob.refresh()


def as_dict():
    """Current knob values by name (diagnostics / tests).

    Boolean knobs report ``bool``; typed :class:`Setting` knobs report
    their parsed value.
    """
    return {
        name: knob.value if isinstance(knob, Setting) else bool(knob)
        for name, knob in sorted(_KNOBS.items())
    }


def snapshot():
    """Full registry state, name -> {default, value, doc}.

    The docs' env-knob table is generated from this (and a test pins
    the table to it), so README switches can never drift from the
    registry.
    """
    def render(knob, value):
        if isinstance(knob, Setting):
            return value
        return bool(value)

    return {
        name: {
            "default": render(knob, knob.default),
            "value": render(knob, knob.value),
            "doc": knob.doc,
        }
        for name, knob in sorted(_KNOBS.items())
    }


def markdown_table():
    """The README's env-knob table, rendered from the registry.

    ``python -m repro knobs --markdown`` prints this, the README embeds
    it, and a drift test requires the embedded copy verbatim — so a new
    knob is a one-line ``flag(...)``/``setting(...)`` plus pasting the
    regenerated table.
    """
    lines = ["| Knob | Default | Effect |", "|---|---|---|"]
    for name, info in snapshot().items():
        default = info["default"]
        if isinstance(default, bool):
            default = "on" if default else "off"
        elif default == "":
            default = "(empty)"
        else:
            default = f"`{default}`"
        doc = " ".join(info["doc"].split())
        lines.append(f"| `{name}` | {default} | {doc} |")
    return "\n".join(lines)


VERIFY_DIFFS = flag(
    "VERIFY_DIFFS",
    doc="Cross-check the write-log diff against the legacy snapshot "
        "diff in every pool chunk; fail loudly on divergence. Travels "
        "in the payload.",
)

MEASURE_NAIVE = flag(
    "MEASURE_NAIVE",
    doc="Measure what the legacy self-contained codec would have "
        "shipped (fills the naive-bytes bench stat). Benchmark-only.",
)

VERIFY_PRELUDE = flag(
    "VERIFY_PRELUDE",
    doc="Ship the full state alongside every dirty delta and compare "
        "the delta-applied resident image against a fresh decode in "
        "the worker.",
)

RESIDENT_PRELUDE = flag(
    "RESIDENT_PRELUDE", default=True,
    doc="The resident-prelude protocol itself (off = v1-style full "
        "state on every region).",
)

VERIFY_COMPILED = flag(
    "VERIFY_COMPILED",
    doc="Run every compiled chunk (and sequential stretch) twice — "
        "compiled then interpreted — and fail loudly unless write-log "
        "diffs, outputs, and step counts are identical. The "
        "interpreted run's effects are kept. Travels in the payload.",
)

REPRO_COMPILE = flag(
    "REPRO_COMPILE",
    doc="Default for SessionConfig.compile_regions / the runtime's "
        "compile_regions=None: lower DOALL chunk bodies and the "
        "sequential stretches between regions to exec-compiled Python "
        "instead of the interpreter loop.",
)

REPRO_SPECULATE = flag(
    "REPRO_SPECULATE", default=True,
    doc="At -O3, let passes apply transforms whose static legality "
        "test is inconclusive and validate the candidate plan against "
        "the simulated oracle (seeded interleavings vs the sequential "
        "run) before any real backend sees it; off = inconclusive "
        "tests reject outright.",
)

REPRO_SUPERVISE = flag(
    "REPRO_SUPERVISE", default=True,
    doc="Supervised region dispatch on the processes backend: classify "
        "worker death / hang / poisoned payloads as infrastructure "
        "failures and retry the region (pool respawn + cache "
        "invalidation + re-encode) instead of failing the run; off = "
        "legacy fail-fast dispatch with no retries and no fault "
        "injection.",
)

REPRO_FAILOVER = flag(
    "REPRO_FAILOVER", default=True,
    doc="Graceful-degradation ladder: a region that exhausts its "
        "processes-backend retry budget fails over to the threads "
        "backend, then to serial interpretation, and the Session "
        "quarantine remembers the working rung for warm re-runs; off "
        "= exhausted retries raise immediately.",
)

REPRO_FAULTS = setting(
    "REPRO_FAULTS", "",
    doc="Fault-injection spec for chaos testing, e.g. "
        "`crash:region=2:worker=1;hang:p=0.05:seed=7` — scenarios "
        "separated by `;`, fields by `:`. Kinds: crash, hang, "
        "corrupt_wire, drop_result. Selectors: region=N (per-region "
        "dispatch ordinal), worker=K, p=<prob> with seed=<int>, "
        "times=N budget (default 1), s=<seconds> hang duration. Empty "
        "= no injection.",
)

REPRO_RETRY_BUDGET = setting(
    "REPRO_RETRY_BUDGET", 2,
    doc="Per-region retry budget for supervised processes dispatch: "
        "how many times an infrastructure failure (worker death, "
        "hang, poisoned payload) re-dispatches the region before the "
        "degradation ladder (or a RegionDispatchError) takes over.",
)

REPRO_RETRY_BACKOFF = setting(
    "REPRO_RETRY_BACKOFF", 0.05,
    doc="Base sleep (seconds) between region retries; attempt N waits "
        "base * 2^(N-1) after the pool respawn, bounding recovery "
        "storms under repeated faults.",
)

REPRO_REGION_TIMEOUT = setting(
    "REPRO_REGION_TIMEOUT", 0.0,
    doc="Per-region dispatch deadline (seconds) for the processes "
        "backend; 0 uses the step-budget allowance "
        "(max(120, max_steps / 50_000)). Lower it in chaos tests so "
        "injected hangs are detected quickly.",
)

REPRO_PROFILE = setting(
    "REPRO_PROFILE", "",
    doc="Path of the JSON calibration profile "
        "(machine-coefficient EWMAs + per-program region feedback). "
        "Sessions with calibration on load it at construction and "
        "append to it after each run, so warm sessions plan with "
        "measured numbers. Empty = in-memory only.",
)

REPRO_CALIBRATE = flag(
    "REPRO_CALIBRATE",
    doc="Default for SessionConfig.calibrate: distill each run's "
        "region stats into measured MachineModel coefficients "
        "(per-byte wire cost, dispatch overhead, prelude discount, "
        "compiled speedup) and plan subsequent runs with them instead "
        "of the static defaults.",
)

REPRO_ADAPTIVE = flag(
    "REPRO_ADAPTIVE",
    doc="Default for SessionConfig.adaptive / Session.run(adaptive=): "
        "mid-run replanning — after each region dispatch whose timings "
        "diverge from the plan's predictions, re-derive the remaining "
        "regions' cost-model choices (backend override, tile) through "
        "optimize_plan with the freshly calibrated machine model. "
        "Legality is untouched; only cost decisions move.",
)

REPRO_REPLAN_THRESHOLD = setting(
    "REPRO_REPLAN_THRESHOLD", 3.0,
    doc="Adaptive-replanning divergence trigger: a region whose "
        "dispatch overhead exceeds this multiple of its compute time, "
        "or whose measured bytes-per-payload land outside this factor "
        "of the planner's assumption, requests a replan of the "
        "remaining dispatches.",
)

REPRO_REPLAN_IMBALANCE = setting(
    "REPRO_REPLAN_IMBALANCE", 2.0,
    doc="Adaptive-replanning balance trigger: a region whose "
        "max-over-mean per-worker step count exceeds this factor "
        "requests a replan (workers with no iterations are excluded, "
        "as in the conformance suite's imbalance metric).",
)
