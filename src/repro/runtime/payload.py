"""Region payload codec for the ``processes`` backend (wire format v2).

The seed runtime shipped every pool worker one ``pickle.dumps(dict)``
holding the module, the full shared storage, and the worker frame —
O(program size) pickled W times per region.  Format v1 (PR 4) made the
module travel once per pool epoch and the shared prelude once per
region.  Format v2 makes the prelude itself *resident*: pool workers
keep the decoded shared state (global storage plus every shared storage
list) alive across dispatches, keyed by a content hash, and the parent
ships only the slots it actually dirtied since the previous dispatch.

Five cooperating pieces:

**Resident shared state.**  Each parent interpreter owns a
:class:`PreludeCodec` (one *stream* of dispatches).  The first region of
a stream ships the full state — the global-storage dict plus an ordered
*storage table* of every shared list — and its content hash becomes the
stream's key.  Pool workers cache the decoded state per stream
(:data:`_RESIDENT_STATES`).  Every later region ships a **dirty-slot
delta**: the parent runs with :meth:`Interpreter.enable_write_log`
active *between* regions, so the delta is exactly the ``(storage, slot)``
pairs the sequential code, the diff merges, and the joins wrote.  Keys
advance along a hash chain (``next = H(prev + H(delta))``) rooted in the
full-state content hash; a worker whose resident key matches neither the
expected nor the next key (it joined the pool mid-epoch, or the chain
diverged) reports a **prelude miss** and the parent retries that one
payload with the full state attached — the same handshake the module
codec already uses.

**Storage persistent ids.**  Shared storage lists never re-travel once
resident: every reference to one — from worker frames, registers,
object tables, pointer args — is pickled as ``("s", index)`` into the
storage table, resolved child-side against the resident table.  This is
what preserves the register→storage aliasing across *dispatches* the
way v1's shared-memo trick preserved it within one dispatch.

**Write rollback.**  A chunk's own writes would make one pool worker's
resident copy diverge from its siblings'.  After diffing, the child
rolls its write log back (restoring each slot's pre-run value), so the
resident state always equals the parent's pre-dispatch image and every
payload of a region can run in any pool process in any order.

**Module byte cache.**  Unchanged from v1: module-owned objects are
persistent ids ``("m", index)`` into the deterministic
:func:`module_objects` traversal, with the bytes broadcast once per pool
recycle epoch and a miss/retry fallback.  v2 additionally encodes the
member ``NaturalLoop`` objects as ``("l", function, header)`` ids —
the child recomputes loops from its decoded module, so region streams
no longer carry loop structure at all.

**Write-log diffing.**  Unchanged from v1: the worker's shared-state
diff is computed from its store-path write log, byte-for-byte what the
legacy snapshot+full-scan produced (:func:`diff_snapshot` keeps that
path alive for verification and the differential tests).

Verification knobs (environment or module globals; they travel inside
the payload, so no child-process configuration is involved):
``VERIFY_DIFFS=1`` cross-checks the write-log diff against the snapshot
diff in every chunk; ``VERIFY_PRELUDE=1`` ships the full state alongside
every delta and fails loudly if a worker's delta-applied resident state
diverges from it; ``RESIDENT_PRELUDE=0`` disables the resident protocol
(every region ships full state, v1-style); ``MEASURE_NAIVE=1`` also
measures the seed's naive encoding for the benchmark tables.
"""

import dataclasses
import hashlib
import io
import itertools
import math
import pickle
import random
from collections import OrderedDict

from repro.analysis.loops import find_natural_loops
from repro.emulator.interp import _Frame
from repro.runtime import knobs

#: Protocol for every codec stream.  Fixed (not HIGHEST_PROTOCOL) so the
#: parent and a pool worker running a different interpreter version of
#: the same session never disagree about opcodes.
PROTOCOL = 5

#: Persistent-id namespace tags.
MODULE_TAG = "m"  # module-owned objects, by module_objects() index
STORAGE_TAG = "s"  # shared storage lists, by resident-table index
LOOP_TAG = "l"  # NaturalLoops, by (function name, header block name)

#: Parent-side module codecs kept alive (id-keyed; strong references
#: guarantee the id cannot be recycled while the entry exists).
_MODULE_CODEC_CAP = 8

#: Pool-worker-side decoded modules kept per process.
_DECODED_MODULE_CAP = 4

#: Pool-worker-side resident prelude states kept per process (one per
#: parent-interpreter stream; LRU so interleaved sessions can share a
#: pool without unbounded memory).
_RESIDENT_CAP = 4

#: Resident storage-table entries before the parent declares the stream
#: too wide to track (regions entered from many short-lived frames) and
#: falls back to full-state shipping.
_TABLE_CAP = 4096

#: Delta-history window cap: how many past chain keys a dirty delta can
#: catch a pool worker up from.  The pool hands payloads to whichever
#: process is free, so a busy process can skip whole regions and fall
#: several keys behind; shipping the *union* dirty map (values are the
#: current ones, so applying it from any windowed state is exact) keeps
#: those processes on the resident path instead of full-state retries.
#: The live window is adaptive — it starts at ``_WINDOW_MIN``, grows by
#: one key per observed prelude miss, and decays while misses stay
#: absent — because the union's wire cost scales with its depth.
_WINDOW_KEYS = 8
_WINDOW_MIN = 2

#: Miss-free regions before the adaptive window shrinks by one key.
_WINDOW_DECAY_REGIONS = 16

#: Union-dirty entries before the window starts evicting its oldest
#: keys (a worker that far behind re-ships the full state instead).
_WINDOW_DIRTY_CAP = 8192


# The debug/verification knobs live in ``runtime/knobs.py`` (one
# parser, refreshable between tests); these module attributes re-export
# the knob objects so existing call sites and test monkeypatching of
# ``payload.VERIFY_DIFFS`` et al. keep working — a knob is truthy
# exactly when its environment variable is set truthy.
VERIFY_DIFFS = knobs.VERIFY_DIFFS
MEASURE_NAIVE = knobs.MEASURE_NAIVE
VERIFY_PRELUDE = knobs.VERIFY_PRELUDE
RESIDENT_PRELUDE = knobs.RESIDENT_PRELUDE
VERIFY_COMPILED = knobs.VERIFY_COMPILED


# -- deterministic module traversal -------------------------------------------


def module_objects(module):
    """Every module-owned object, in a deterministic traversal order.

    The parent builds its persistent-id map from this enumeration and
    the pool worker resolves persistent ids against the same enumeration
    of its *decoded* copy, so index ``i`` names the same logical object
    on both sides.  Any new object kind the IR grows must be appended
    here (order matters; append-only within one wire format).
    """
    objects = [module]
    for function in module.functions.values():
        objects.append(function)
        objects.extend(function.args)
        for block in function.blocks:
            objects.append(block)
            objects.extend(block.instructions)
        objects.extend(function.annotations)
        objects.extend(function.loop_info.values())
    objects.extend(module.globals.values())
    return objects


# -- picklers / unpicklers -----------------------------------------------------


class _RegionPickler(pickle.Pickler):
    """Pickler writing module objects, shared storages, and loops as pids."""

    def __init__(self, file, persist_map, storage_map=None, loop_map=None):
        super().__init__(file, protocol=PROTOCOL)
        self._persist = persist_map
        self._storage = storage_map
        self._loops = loop_map

    def persistent_id(self, obj):
        pid = self._persist.get(id(obj))
        if pid is not None:
            return pid
        if self._storage is not None:
            pid = self._storage.get(id(obj))
            if pid is not None:
                return pid
        if self._loops is not None:
            return self._loops.get(id(obj))
        return None


class _RegionUnpickler(pickle.Unpickler):
    """Unpickler resolving pids against decoded module / resident state.

    ``storages`` is the live resident table *list*: entries appended
    between the header and delta ``load()`` calls (dirty-delta
    application) are visible to later resolutions.
    """

    def __init__(self, file, objects, storages=None, loop_resolver=None):
        super().__init__(file)
        self._objects = objects
        self._storages = storages
        self._loop_resolver = loop_resolver

    def persistent_load(self, pid):
        tag = pid[0]
        if tag == MODULE_TAG:
            return self._objects[pid[1]]
        if tag == STORAGE_TAG:
            if self._storages is None:
                raise pickle.UnpicklingError(
                    "storage persistent id with no resident table"
                )
            return self._storages[pid[1]]
        if tag == LOOP_TAG:
            if self._loop_resolver is None:
                raise pickle.UnpicklingError(
                    "loop persistent id with no loop resolver"
                )
            return self._loop_resolver(pid[1], pid[2])
        raise pickle.UnpicklingError(
            f"unknown persistent id namespace {tag!r}"
        )


# -- parent-side module codec --------------------------------------------------


class ModuleCodec:
    """Pickled-once module bytes plus the persistent-id map for regions.

    ``key`` is the content hash of the module stream — the identity the
    pool workers cache decoded modules under, so two sessions sharing
    one pool (or one session surviving a pool recycle) can never collide
    on stale bytes.
    """

    __slots__ = ("module", "key", "module_bytes", "persist_map")

    def __init__(self, module):
        self.module = module
        buffer = io.BytesIO()
        pickle.Pickler(buffer, protocol=PROTOCOL).dump(module)
        self.module_bytes = buffer.getvalue()
        self.key = hashlib.sha256(self.module_bytes).hexdigest()
        self.persist_map = {
            id(obj): (MODULE_TAG, index)
            for index, obj in enumerate(module_objects(module))
        }


_MODULE_CODECS = OrderedDict()  # id(module) -> ModuleCodec (LRU)

#: (pool epoch, module key) pairs whose bytes were already broadcast;
#: pruned to the current epoch on every encode.
_SHIPPED_MODULES = set()


def module_codec(module):
    """The (cached) :class:`ModuleCodec` for ``module``.

    Keyed by object identity: a session's module object is stable across
    its runs, so the expensive module pickle happens once per session
    (per module), not once per region per worker.
    """
    key = id(module)
    codec = _MODULE_CODECS.get(key)
    if codec is not None and codec.module is module:
        _MODULE_CODECS.move_to_end(key)
        return codec
    codec = ModuleCodec(module)
    _MODULE_CODECS[key] = codec
    while len(_MODULE_CODECS) > _MODULE_CODEC_CAP:
        _MODULE_CODECS.popitem(last=False)
    return codec


def invalidate_pool_caches():
    """Drop every cache tied to the current pool generation's workers.

    Called on pool recycle: the recycled processes' decoded-module and
    resident-prelude caches died with them, so the broadcast bookkeeping
    (and this process's own decode caches, which forked children
    inherit) must not claim otherwise.  The parent-side
    :data:`_MODULE_CODECS` pickled-bytes LRU survives — it is keyed by
    module identity with a content-hash wire key, valid across epochs,
    and re-pickling the whole module per recycle is exactly the
    O(program-size) work it exists to avoid.
    """
    _SHIPPED_MODULES.clear()
    _DECODED_MODULES.clear()
    _RESIDENT_STATES.clear()


def reset_codec_caches():
    """Drop every module-global codec cache in this process.

    Called by the test suite's autouse fixture so no test (or session)
    depends on what a previous one happened to ship: parent-side module
    codecs and broadcast bookkeeping, and this process's decoded-module
    and resident-prelude caches (the latter matter when payloads are
    decoded in-process, as the codec tests do).  Per-interpreter
    :class:`PreludeCodec` state is not process-global and dies with its
    interpreter; the stream-id counter is deliberately never reset, so
    stale resident entries can never collide with a new stream.
    """
    _MODULE_CODECS.clear()
    invalidate_pool_caches()


# -- parent-side resident-prelude codec ---------------------------------------

_STREAM_IDS = itertools.count(1)


def _walk_storages(frame, global_storage):
    """Every shared storage list a region's payloads may reference.

    Order only matters parent-side (the child receives the table
    explicitly), but the walk must be *complete*: globals, privatized
    overlays, frame allocas, pointer-typed arguments, and any storage a
    materialized pointer register aims at.
    """
    seen = set()
    storages = []

    def add(storage):
        if id(storage) not in seen:
            seen.add(id(storage))
            storages.append(storage)

    for values in global_storage.values():
        add(values)
    for values in frame.global_overlay.values():
        add(values)
    for storage in frame.objects.values():
        add(storage)
    for value in frame.args:
        if isinstance(value, tuple) and len(value) == 2:
            add(value[0])
    for value in frame.registers.values():
        if isinstance(value, tuple) and len(value) == 2:
            add(value[0])
    return storages


def live_in_registers(loops):
    """Registers a chunk of these loops can read: operands defined outside.

    Everything defined *inside* a member loop is recomputed by the chunk
    itself, so worker payloads only ship the live-in registers — the SSA
    values (pointers computed before the loop, loop-invariant scalars)
    the body references but never defines.
    """
    from repro.ir.instructions import Instruction

    inside = set()
    for loop in loops:
        for block in loop.blocks:
            inside.update(id(inst) for inst in block.instructions)
    needed = set()
    for loop in loops:
        for block in loop.blocks:
            for inst in block.instructions:
                for operand in inst.operands:
                    if (
                        isinstance(operand, Instruction)
                        and id(operand) not in inside
                    ):
                        needed.add(operand)
    return needed


def _exact_value_match(value, before):
    """``==`` plus the distinctions resident state must not blur.

    The dirty drain elides writes that restored a slot's value — but
    ``==`` alone would also elide ``-0.0`` over ``0.0`` (and a value of
    a different type), silently diverging the workers' resident slots
    from the parent's.  Only equal-comparing values reach the extra
    checks, so the fast path stays one comparison.
    """
    if value != before:
        return False
    if type(value) is not type(before):
        return False
    if isinstance(value, float) and value == 0.0:
        return math.copysign(1.0, value) == math.copysign(1.0, before)
    return True


class PreludeCodec:
    """Parent-side resident-prelude state for one dispatch stream.

    One per parallel interpreter.  Tracks the storage table (the shared
    lists the pool workers hold resident, in persistent-id order), the
    hash-chain key of the state the workers currently hold, and the
    inter-region write log the dirty deltas are drained from.  A
    ``None`` log (or :data:`RESIDENT_PRELUDE` off, or an epoch change,
    or :meth:`invalidate`) degrades every region to full-state shipping
    — never to wrong results.
    """

    __slots__ = (
        "stream_id", "epoch", "key", "log", "table", "table_ids",
        "persist", "full_len", "livein", "history", "window_target",
        "quiet_regions", "pending_rebind", "handoff_log",
    )

    def __init__(self, log=None):
        self.stream_id = next(_STREAM_IDS)
        self.epoch = None
        self.key = None
        self.log = log
        self.table = []
        self.table_ids = {}
        self.persist = {}  # id(storage) -> ("s", index)
        self.full_len = 0  # last encoded full-state size (bytes)
        self.livein = {}  # region headers -> live-in register set
        # Delta history: [key, cumulative dirty {(index, slot): value},
        # table length at that key], oldest first.  Entry maps stay
        # cumulative (every region's dirty is merged into all of them),
        # so the oldest entry's map is the union delta the wire ships.
        self.history = []
        self.window_target = _WINDOW_MIN
        self.quiet_regions = 0
        self.pending_rebind = False
        self.handoff_log = None

    def invalidate(self):
        """Forget the chain: the next region ships the full state."""
        self.key = None
        self.table = []
        self.table_ids = {}
        self.persist = {}
        self.history = []
        self.pending_rebind = False
        self.handoff_log = None

    def add_storage(self, storage):
        index = len(self.table)
        self.table.append(storage)
        self.table_ids[id(storage)] = index
        self.persist[id(storage)] = (STORAGE_TAG, index)

    def drain_dirty(self):
        """``{(table index, slot): value}`` for every logged table write.

        Writes to storages outside the table are private scratch or
        brand-new storages (those ship whole in ``append``); writes that
        restored the original value are elided.  The log is cleared for
        the next inter-region span.
        """
        dirty = {}
        for (storage_id, slot), (storage, before) in self.log.items():
            index = self.table_ids.get(storage_id)
            if index is None:
                continue
            value = storage[slot]
            if not _exact_value_match(value, before):
                dirty[(index, slot)] = value
        self.log.clear()
        return dirty

    def window(self, dirty):
        """Advance the delta history by this region's dirty map.

        Returns ``(keys, union_dirty_map, append_base)``: the chain
        keys a worker may catch up from, the union dirty map (current
        values — exact from any windowed state), and the table index
        the shipped append pool starts at.  Call with ``self.key`` still
        at the pre-region value and the table not yet extended.
        """
        self.quiet_regions += 1
        if (
            self.quiet_regions >= _WINDOW_DECAY_REGIONS
            and self.window_target > _WINDOW_MIN
        ):
            self.window_target -= 1
            self.quiet_regions = 0
        for entry in self.history:
            entry[1].update(dirty)
        self.history.append([self.key, dict(dirty), len(self.table)])
        # Keeping old keys reachable is only worth a bounded multiple of
        # the traffic the current region genuinely has to ship.  The
        # newest entry is never evicted: with it, workers that ran the
        # previous region stay resident (its size already passed the
        # caller's delta-vs-full-state guard); without it, every payload
        # of every region would miss forever.
        budget = max(256, 4 * len(dirty))
        while len(self.history) > 1 and (
            len(self.history) > self.window_target
            or len(self.history[0][1]) > min(_WINDOW_DIRTY_CAP, budget)
        ):
            self.history.pop(0)
        keys = tuple(entry[0] for entry in self.history)
        return keys, self.history[0][1], self.history[0][2]

    def adopt_log(self, log):
        """Attach a fresh interpreter's write log (Session run handoff).

        A Session reuses one codec across its runs so the hash chain —
        and the pool workers' resident state — survives run boundaries.
        The new interpreter owns brand-new storage lists, so the next
        encode must :meth:`rebind` the table onto them before trusting
        any delta.
        """
        self.pending_rebind = self.key is not None
        self.handoff_log = self.log if self.pending_rebind else None
        self.log = log

    def rebind(self, current):
        """Re-aim the table at a new interpreter's storages via value diff.

        ``current`` is the new run's storage walk.  The pool workers'
        resident state equals the *old* table's values minus the old
        log's pending before-values; every slot where the new storages
        differ from that becomes a synthetic dirty entry in the new log,
        so the normal delta drain ships exactly the state the run
        boundary changed (for a fresh-initialized run, usually a
        fraction of the state).  Returns ``False`` — caller goes cold —
        when the shapes don't line up.
        """
        old_log = self.handoff_log or {}
        self.handoff_log = None
        # The new run's first walk matches the old stream's *cold* walk
        # — the table prefix.  Entries appended later in the old run
        # stay in place (keeping pool-worker table indices aligned);
        # they are inert — the dead run's objects can never be
        # referenced again — but their pending before-values carry over
        # so verification sees a consistent image.
        prefix = len(current)
        if self.log is None or prefix > len(self.table):
            return False
        for new, old in zip(current, self.table):
            if len(new) != len(old):
                return False
        # Recomputed below against every prefix slot, so the new log's
        # run-prefix entries (whose before-values are this run's initial
        # state, not what the workers hold) are superseded wholesale.
        self.log.clear()
        for index, (new, old) in enumerate(zip(current, self.table)):
            old_id = id(old)
            for slot, child_value in enumerate(old):
                entry = old_log.get((old_id, slot))
                if entry is not None:
                    # The old parent wrote this slot after its last
                    # encode: the workers still hold the pre-write value.
                    child_value = entry[1]
                if not _exact_value_match(new[slot], child_value):
                    self.log[(id(new), slot)] = (new, child_value)
            self.table[index] = new
        self.table_ids = {id(s): i for i, s in enumerate(self.table)}
        for key, entry in old_log.items():
            index = self.table_ids.get(key[0])
            if index is not None and index >= prefix:
                self.log[key] = entry
        self.persist = {
            id(s): (STORAGE_TAG, i) for i, s in enumerate(self.table)
        }
        return True

    def note_miss(self):
        """A pool worker fell out of the window: deepen it.

        Called by the backend when a payload comes back with a prelude
        miss; the union delta grows to cover laggards, then decays once
        misses stay absent (the wire cost of the union scales with the
        window depth, and a miss already self-healed via the full-state
        retry, so growth is gentle).
        """
        self.window_target = min(_WINDOW_KEYS, self.window_target + 1)
        self.quiet_regions = 0

    def encode_state(self, global_storage, table=None):
        """Full-state stream: the global-storage dict + the storage table.

        Plain pickle — shared storages are lists of scalars, so no
        persistent ids are needed, and the in-stream memo keeps
        ``global_storage`` values and table entries aliased.
        """
        state_bytes = pickle.dumps(
            {
                "global_storage": global_storage,
                "table": self.table if table is None else table,
            },
            protocol=PROTOCOL,
        )
        self.full_len = len(state_bytes)
        return state_bytes

    def livein_for(self, loops):
        label = tuple(loop.header.name for loop in loops)
        if label not in self.livein:
            self.livein[label] = live_in_registers(loops)
        return self.livein[label]

    def clone(self):
        """An independent copy (tests re-encode a region deterministically)."""
        twin = PreludeCodec(
            log=dict(self.log) if self.log is not None else None
        )
        twin.stream_id = self.stream_id
        twin.epoch = self.epoch
        twin.key = self.key
        twin.table = list(self.table)
        twin.table_ids = dict(self.table_ids)
        twin.persist = dict(self.persist)
        twin.full_len = self.full_len
        twin.livein = dict(self.livein)
        twin.history = [
            [key, dict(dirty), length] for key, dirty, length in self.history
        ]
        twin.window_target = self.window_target
        twin.quiet_regions = self.quiet_regions
        twin.pending_rebind = self.pending_rebind
        twin.handoff_log = (
            dict(self.handoff_log) if self.handoff_log is not None else None
        )
        return twin


# -- wire format ---------------------------------------------------------------


@dataclasses.dataclass
class WorkerPayload:
    """One pool dispatch (wire format v2).

    ``module_bytes`` rides along only on the epoch broadcast or a
    module-miss retry; ``state_bytes`` only on a cold stream, a
    prelude-miss retry, or under ``VERIFY_PRELUDE``.  Steady state is
    ``header_bytes`` (the shared dirty delta + region metadata, identical
    across the region's workers) plus this worker's ``delta_bytes``.
    """

    module_key: str
    module_bytes: bytes  # None when the pool epoch already has them
    stream_id: int
    keys: tuple  # chain keys the delta can catch a worker up from
    next_key: str  # key of the state after this region's delta
    state_bytes: bytes  # full state, or None on the resident path
    verify_state: bool  # compare resident vs state_bytes (VERIFY_PRELUDE)
    header_bytes: bytes
    delta_bytes: bytes

    @property
    def wire_bytes(self):
        return (
            len(self.header_bytes)
            + len(self.delta_bytes)
            + (len(self.state_bytes) if self.state_bytes else 0)
            + (len(self.module_bytes) if self.module_bytes else 0)
        )

    def wire(self):
        return (
            self.module_key,
            self.module_bytes,
            self.stream_id,
            self.keys,
            self.next_key,
            self.state_bytes,
            self.verify_state,
            self.header_bytes,
            self.delta_bytes,
        )

    def with_module(self, codec):
        """A copy carrying the module bytes (miss-retry path)."""
        return dataclasses.replace(self, module_bytes=codec.module_bytes)

    def with_state(self, state_bytes):
        """A copy carrying the full state (prelude-miss retry path)."""
        return dataclasses.replace(
            self, state_bytes=state_bytes, verify_state=False
        )

    def corrupted(self, seed=0):
        """A copy with deterministically flipped delta bytes (chaos only).

        Byte 0 — the pickle ``PROTO`` opcode — is always flipped, so the
        child's decode *fails loudly* rather than deserializing to
        silent garbage; a few seeded positions are flipped on top to
        exercise longer-prefix parses.
        """
        blob = bytearray(self.delta_bytes)
        if blob:
            blob[0] ^= 0xFF
            draw = random.Random(f"corrupt:{seed}:{len(blob)}")
            for _ in range(min(4, len(blob) - 1)):
                blob[draw.randrange(1, len(blob))] ^= 0xFF
        return dataclasses.replace(self, delta_bytes=bytes(blob))


@dataclasses.dataclass
class RegionPayloads:
    """The encoded region: one :class:`WorkerPayload` per active worker."""

    codec: ModuleCodec
    prelude: PreludeCodec
    workers: list
    shipped_module: bool
    shipped_state: bool  # full state attached to every payload (cold)
    next_key: str
    naive_bytes: int = 0  # legacy-codec bytes (MEASURE_NAIVE only)
    _table: list = None  # table snapshot for the lazy state encode
    _global_storage: dict = None
    _state_bytes: bytes = None

    @property
    def wire_bytes(self):
        return sum(payload.wire_bytes for payload in self.workers)

    def state_bytes(self):
        """The region's full-state stream, encoded at most once.

        Lazy: steady-state regions never pay the full pickle; a
        prelude-miss retry (or ``VERIFY_PRELUDE``) forces it.  Safe to
        call mid-collection because the parent applies no worker
        effects until every result is in.
        """
        if self._state_bytes is None:
            self._state_bytes = self.prelude.encode_state(
                self._global_storage, self._table
            )
        return self._state_bytes


def _pack_dirty(dirty_map):
    """Split a dirty map into flat singles and contiguous value runs.

    Dense rewrites (a region refilling a whole array) dominate many
    kernels' deltas; a run ``(index, start, [values...])`` ships one
    value per slot instead of an ``index, slot, value`` triple per slot.
    Returns ``(singles, runs)`` where ``singles`` is the flat
    ``[index, slot, value, ...]`` list for isolated marks.
    """
    by_index = {}
    for (index, slot), value in dirty_map.items():
        by_index.setdefault(index, []).append((slot, value))
    singles = []
    runs = []
    for index in sorted(by_index):
        marks = sorted(by_index[index])
        i = 0
        while i < len(marks):
            j = i
            while j + 1 < len(marks) and marks[j + 1][0] == marks[j][0] + 1:
                j += 1
            if j - i + 1 >= 3:
                runs.append((
                    index, marks[i][0], [value for _s, value in marks[i:j + 1]]
                ))
            else:
                for slot, value in marks[i:j + 1]:
                    singles.extend((index, slot, value))
            i = j + 1
    return singles, runs


def _dirty_cost(singles, runs):
    """Rough wire bytes of a packed dirty delta (full-state guard)."""
    return (
        5 * len(singles)
        + sum(16 + 10 * len(values) for _i, _s, values in runs)
    )


def _pack_iterations(values):
    """Run-length-compress an iteration list (chunks are arithmetic runs)."""
    n = len(values)
    if values and isinstance(values[0], tuple):
        # Interchanged-nest chunks are (outer, inner) pairs — almost
        # always an exact outer-major cross product, which wires as the
        # two factor lists instead of trip(outer)*trip(inner) tuples.
        packed = _pack_pairs(values)
        return packed if packed is not None else ("v", list(values))
    if n < 8:
        return ("v", list(values))
    runs = []
    i = 0
    while i < n:
        j = i + 1
        if j < n:
            step = values[j] - values[i]
            if step != 0:
                while j + 1 < n and values[j + 1] - values[j] == step:
                    j += 1
                if j > i + 1:
                    runs.append((values[i], j - i + 1, step))
                    i = j + 1
                    continue
        runs.append((values[i], 1, 1))
        i += 1
    if 3 * len(runs) < n:
        return ("r", runs)
    return ("v", list(values))


def _pack_pairs(values):
    """``("x", (outer pack, inner pack))`` for exact cross products."""
    outer = []
    for t, _ in values:
        if not outer or outer[-1] != t:
            outer.append(t)
    count, remainder = divmod(len(values), len(outer))
    if remainder:
        return None
    inner = [i for _t, i in values[:count]]
    if values != [(t, i) for t in outer for i in inner]:
        return None
    return ("x", (_pack_iterations(outer), _pack_iterations(inner)))


def _unpack_iterations(packed):
    tag, data = packed
    if tag == "v":
        return data
    if tag == "x":
        outer = _unpack_iterations(data[0])
        inner = _unpack_iterations(data[1])
        return [(t, i) for t in outer for i in inner]
    values = []
    for start, count, step in data:
        values.extend(range(start, start + count * step, step))
    return values


def encode_region(module, frame, loops, global_storage, max_steps,
                  workers, epoch, prelude=None, compile_regions=False,
                  nest=None):
    """Encode one region's pool payloads.

    ``workers`` are the active ``_Worker`` instances; ``frame`` is the
    enclosing sequential frame whose storages the worker frames alias;
    ``epoch`` identifies the current pool generation (module bytes are
    broadcast, and resident streams reset, once per epoch); ``prelude``
    is the dispatching interpreter's :class:`PreludeCodec` (omitted by
    standalone callers, who then ship full state every region);
    ``compile_regions`` asks the pool worker to run each chunk through
    its exec-compiled body (``repro.codegen``) where one lowers — the
    flag travels in the header, so children need no environment.
    ``nest`` is an interchanged nest's outer loop: it travels in the
    header (by loop reference) and the workers' iteration values are
    ``(outer, inner)`` pairs.
    """
    codec = module_codec(module)
    if prelude is None:
        prelude = PreludeCodec(log=None)
    if prelude.epoch != epoch:
        # Fresh pool generation: the workers' resident states died with
        # the old processes.
        prelude.epoch = epoch
        prelude.invalidate()

    current = _walk_storages(frame, global_storage)
    if prelude.pending_rebind:
        # Session run handoff: the chain survives, but the table must
        # be re-aimed at this run's storage objects (with the state
        # difference turned into synthetic dirty entries) first.
        prelude.pending_rebind = False
        if prelude.key is not None and not prelude.rebind(current):
            prelude.invalidate()
    resident = (
        RESIDENT_PRELUDE
        and prelude.key is not None
        and prelude.log is not None
        and len(current) <= _TABLE_CAP
    )
    if resident:
        fresh = [s for s in current if id(s) not in prelude.table_ids]
        if len(prelude.table) + len(fresh) > _TABLE_CAP:
            prelude.invalidate()
            resident = False
    if resident:
        keys, union, append_base = prelude.window(prelude.drain_dirty())
        singles, runs = _pack_dirty(union)
        if prelude.full_len and _dirty_cost(singles, runs) > prelude.full_len:
            # The delta would outweigh the state itself (a region that
            # rewrote most shared slots): re-ship the full state — which
            # also resyncs every pool worker — and restart the chain.
            prelude.invalidate()
            resident = False
    if not resident:
        prelude.invalidate()
        for storage in current:
            prelude.add_storage(storage)
        fresh = []
        singles = []
        runs = []
        keys = ()
        append_base = len(prelude.table)
        if prelude.log is not None:
            prelude.log.clear()

    loop_map = {
        id(loop): (LOOP_TAG, loop.header.parent.name, loop.header.name)
        for loop in list(loops) + ([nest] if nest is not None else [])
    }
    # The append pool (every table storage a windowed worker may still
    # lack) must travel *by value*: exclude it from the header's
    # storage-pid map.  Worker deltas still reference pool storages
    # compactly — via the header pickler's memo.
    header_persist = {
        storage_id: pid
        for storage_id, pid in prelude.persist.items()
        if pid[1] < append_base
    }

    buffer = io.BytesIO()
    header_pickler = _RegionPickler(
        buffer, codec.persist_map, header_persist, loop_map
    )
    # Positional header (see the matching unpack in decode_payload):
    # (loops, nest, max_steps, verify_diffs, compile_regions,
    # verify_compiled, append_base, append pool, dirty singles, dirty
    # runs).  ``append`` is the table suffix from ``append_base`` on —
    # the window's new storages by value, this region's ``fresh`` last.
    header_pickler.dump((
        loops,
        nest,
        max_steps,
        bool(VERIFY_DIFFS),
        bool(compile_regions),
        bool(VERIFY_COMPILED),
        append_base,
        prelude.table[append_base:] + fresh,
        singles,
        runs,
    ))
    header_bytes = buffer.getvalue()
    # Memo snapshot after the header: each worker's delta pickler is
    # primed with its own copy, so deltas reference header objects
    # (loops, append-pool storages) by memo id and one worker's private
    # objects can never leak into another's stream.
    base_memo = header_pickler.memo.copy()
    for storage in fresh:
        prelude.add_storage(storage)

    if resident:
        next_key = hashlib.sha256(
            (prelude.key + hashlib.sha256(header_bytes).hexdigest())
            .encode()
        ).hexdigest()
        state_bytes = None
        if VERIFY_PRELUDE:
            state_bytes = prelude.encode_state(global_storage)
    else:
        state_bytes = prelude.encode_state(global_storage)
        next_key = hashlib.sha256(state_bytes).hexdigest()
    prelude.key = next_key

    needed = prelude.livein_for(loops)
    ship = (epoch, codec.key) not in _SHIPPED_MODULES
    payloads = []
    naive_bytes = 0
    for worker in workers:
        delta_buffer = io.BytesIO()
        delta_pickler = _RegionPickler(
            delta_buffer, codec.persist_map, prelude.persist, loop_map
        )
        delta_pickler.memo = dict(base_memo)
        # Positional worker delta: the frame travels as its fields
        # (function, args, live-in registers, objects, overlay) — no
        # class/slot-name framing — plus packed segments and the
        # private sets.  Registers are pruned to the region's live-ins:
        # everything defined inside a member loop is recomputed by the
        # chunk itself.
        delta_pickler.dump((
            worker.frame.function,
            worker.frame.args,
            {
                inst: value
                for inst, value in worker.frame.registers.items()
                if inst in needed
            },
            worker.frame.objects,
            worker.frame.global_overlay,
            [
                (loop, _pack_iterations(iterations))
                for loop, iterations in worker.segments
            ],
            worker.private_globals,
            {inst.uid for inst in worker.private_allocas},
        ))
        payloads.append(WorkerPayload(
            module_key=codec.key,
            module_bytes=codec.module_bytes if ship else None,
            stream_id=prelude.stream_id,
            keys=keys,
            next_key=next_key,
            state_bytes=state_bytes,
            verify_state=bool(VERIFY_PRELUDE and resident),
            header_bytes=header_bytes,
            delta_bytes=delta_buffer.getvalue(),
        ))
        if MEASURE_NAIVE:
            naive_bytes += len(pickle.dumps({
                "module": module,
                "frame": worker.frame,
                "segments": worker.segments,
                "global_storage": global_storage,
                "max_steps": max_steps,
                "private_globals": worker.private_globals,
                "private_alloca_uids": {
                    inst.uid for inst in worker.private_allocas
                },
            }))
    if ship and payloads:
        _SHIPPED_MODULES.add((epoch, codec.key))
        # Entries for dead pool generations can never be consulted again.
        stale = {entry for entry in _SHIPPED_MODULES if entry[0] != epoch}
        _SHIPPED_MODULES.difference_update(stale)
    return RegionPayloads(
        codec=codec,
        prelude=prelude,
        workers=payloads,
        shipped_module=ship,
        shipped_state=state_bytes is not None,
        next_key=next_key,
        naive_bytes=naive_bytes,
        _table=list(prelude.table),
        _global_storage=global_storage,
        _state_bytes=state_bytes,
    )


# -- pool-worker-side decoding -------------------------------------------------

_DECODED_MODULES = OrderedDict()  # module key -> (module, objects, loops)


class ResidentState:
    """One stream's resident shared state inside a pool worker."""

    __slots__ = ("key", "global_storage", "table")

    def __init__(self, key, global_storage, table):
        self.key = key
        self.global_storage = global_storage
        self.table = table


_RESIDENT_STATES = OrderedDict()  # stream id -> ResidentState (LRU)


def discard_resident(stream_id):
    """Drop a stream's resident state (worker-side error recovery)."""
    _RESIDENT_STATES.pop(stream_id, None)


def _decoded_module(module_key, module_bytes):
    entry = _DECODED_MODULES.get(module_key)
    if entry is None:
        if module_bytes is None:
            return None
        module = pickle.loads(module_bytes)
        entry = (module, module_objects(module), {})
        _DECODED_MODULES[module_key] = entry
        while len(_DECODED_MODULES) > _DECODED_MODULE_CAP:
            _DECODED_MODULES.popitem(last=False)
    else:
        _DECODED_MODULES.move_to_end(module_key)
    return entry


def _loop_resolver(module, loop_cache):
    def resolve(function_name, header_name):
        loops = loop_cache.get(function_name)
        if loops is None:
            loops = {
                loop.header.name: loop
                for loop in find_natural_loops(module.function(function_name))
            }
            loop_cache[function_name] = loops
        return loops[header_name]

    return resolve


def _install_resident(stream_id, key, state_bytes):
    state = pickle.loads(state_bytes)
    resident = ResidentState(key, state["global_storage"], state["table"])
    _RESIDENT_STATES[stream_id] = resident
    _RESIDENT_STATES.move_to_end(stream_id)
    while len(_RESIDENT_STATES) > _RESIDENT_CAP:
        _RESIDENT_STATES.popitem(last=False)
    return resident


class PreludeVerificationError(ValueError):
    """A ``VERIFY_PRELUDE`` divergence: the oracle caught a real bug.

    Distinct from ordinary decode failures so the supervised dispatch
    path treats it as *fatal*: retrying would re-ship the full (already
    mutated) state and silently bless exactly the unlogged mutation the
    verification mode exists to catch.
    """


def _verify_resident(resident, state_bytes, stream_id):
    fresh = pickle.loads(state_bytes)
    table = fresh["table"]
    if len(table) != len(resident.table):
        raise PreludeVerificationError(
            f"resident prelude diverged (stream {stream_id}): table has "
            f"{len(resident.table)} storages, fresh state {len(table)}"
        )
    for index, (have, want) in enumerate(zip(resident.table, table)):
        if have != want:
            raise PreludeVerificationError(
                f"resident prelude diverged (stream {stream_id}) at "
                f"storage {index}: resident={have!r} fresh={want!r} — "
                "a parent-side mutation bypassed the write log"
            )
    have_names = set(resident.global_storage)
    want_names = set(fresh["global_storage"])
    if have_names != want_names:
        raise ValueError(
            f"resident prelude diverged (stream {stream_id}): global "
            f"names {sorted(have_names ^ want_names)} differ"
        )


def decode_payload(wire):
    """Decode one :meth:`WorkerPayload.wire` tuple inside a pool worker.

    Returns ``(payload, miss)``: the payload dict the chunk entry
    executes and ``None``, or ``(None, "module")`` / ``(None,
    "prelude")`` when this worker lacks the module bytes or the resident
    state the payload references (the caller reports the miss and the
    parent retries with the missing stream attached).
    """
    (module_key, module_bytes, stream_id, keys, next_key,
     state_bytes, verify_state, header_bytes, delta_bytes) = wire
    entry = _decoded_module(module_key, module_bytes)
    if entry is None:
        return None, "module"
    module, objects, loop_cache = entry

    resident = _RESIDENT_STATES.get(stream_id)
    known = resident is not None and (
        resident.key == next_key or resident.key in keys
    )
    if state_bytes is not None and not (verify_state and known):
        # Full state (cold stream, miss retry, or verify-with-nothing-
        # to-verify): install and ignore the header's delta sections.
        resident = _install_resident(stream_id, next_key, state_bytes)
        advance = False
    elif not known:
        return None, "prelude"
    else:
        _RESIDENT_STATES.move_to_end(stream_id)
        # A sibling payload of this same region may have applied the
        # delta already (the rollback protocol keeps that exact).
        advance = resident.key != next_key

    unpickler = _RegionUnpickler(
        io.BytesIO(header_bytes + delta_bytes),
        objects,
        resident.table,
        _loop_resolver(module, loop_cache),
    )
    (loops, nest, max_steps, verify_diffs, compile_regions,
     verify_compiled, append_base, append, dirty,
     dirty_runs) = unpickler.load()
    if advance:
        table = resident.table
        # Catch up from wherever in the window this worker is: first
        # the table suffix it lacks, then the union dirty map (values
        # are current, so applying from any windowed state is exact).
        missing = len(table) - append_base
        table.extend(append[missing:])
        flat = iter(dirty)
        for index, slot, value in zip(flat, flat, flat):
            table[index][slot] = value
        for index, start, values in dirty_runs:
            table[index][start:start + len(values)] = values
        resident.key = next_key
    if verify_state and state_bytes is not None and known:
        _verify_resident(resident, state_bytes, stream_id)
    (function, args, registers, frame_objects, overlay,
     segments, private_globals, private_alloca_uids) = unpickler.load()
    frame = _Frame(function, args)
    frame.registers = registers
    frame.objects = frame_objects
    frame.global_overlay = overlay
    return {
        "module": module,
        "module_key": module_key,
        "global_storage": resident.global_storage,
        "frame": frame,
        "segments": [
            (loop, _unpack_iterations(packed))
            for loop, packed in segments
        ],
        "private_globals": private_globals,
        "private_alloca_uids": private_alloca_uids,
        "loops": loops,
        "nest": nest,
        "max_steps": max_steps,
        "verify_diffs": verify_diffs,
        "compile_regions": compile_regions,
        "verify_compiled": verify_compiled,
    }, None


def rollback_writes(log):
    """Undo every logged write (restore each slot's pre-run value).

    The pool worker calls this after diffing so its resident state
    returns to the parent's pre-dispatch image: sibling payloads of the
    same region (and the next region's delta) always find the state the
    parent's hash chain says they should.
    """
    for (_storage_id, slot), (storage, before) in log.items():
        storage[slot] = before


# -- shared-state diffing ------------------------------------------------------
#
# The index, the snapshot, and both diff functions iterate the shared
# objects in the same fixed order (globals in storage-dict order,
# allocas in frame-object order, pointer args by index; slots ascending)
# so the write-log diff is byte-for-byte the snapshot diff.


def shared_index(frame, global_storage, private_alloca_uids):
    """Which objects a worker's writes must flow back through.

    Captured *before* the chunk runs: an alloca first executed inside
    the chunk is per-worker scratch, never merged (matching the legacy
    snapshot's pre-run capture).  Returns three ordered lists of
    ``(key, live storage)`` pairs — globals by name, allocas by
    instruction, pointer-typed arguments by index (those alias
    caller-owned storage the parent also shares).
    """
    globals_ = [
        (name, values)
        for name, values in global_storage.items()
        if name not in frame.global_overlay
    ]
    allocas = [
        (inst, storage)
        for inst, storage in frame.objects.items()
        if inst.uid not in private_alloca_uids
    ]
    args = [
        (index, value[0])
        for index, value in enumerate(frame.args)
        if isinstance(value, tuple) and len(value) == 2
    ]
    return globals_, allocas, args


def snapshot_shared(index):
    """Legacy pre-run capture: a full copy of every shared object."""
    globals_, allocas, args = index
    return (
        [list(values) for _name, values in globals_],
        [list(storage) for _inst, storage in allocas],
        [list(storage) for _index, storage in args],
    )


def diff_snapshot(snapshot, index):
    """Legacy full-scan diff of ``index`` against its pre-run snapshot."""
    globals_before, allocas_before, args_before = snapshot
    globals_, allocas, args = index
    global_diffs = []
    for (name, after), before in zip(globals_, globals_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                global_diffs.append((name, slot, value))
    alloca_diffs = []
    for (inst, after), before in zip(allocas, allocas_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                alloca_diffs.append((inst.uid, slot, value))
    arg_diffs = []
    for (index_, after), before in zip(args, args_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                arg_diffs.append((index_, slot, value))
    return global_diffs, alloca_diffs, arg_diffs


def diff_write_log(log, index):
    """Shared-state diff of ``index`` from the interpreter's write log.

    ``log`` maps ``(id(storage), slot) -> (storage, value before the
    first write)`` — see :meth:`Interpreter.enable_write_log`.  Cost is
    O(dirty slots), and a slot rewritten to its original value is
    elided, exactly as the snapshot scan would.
    """
    marks_by_storage = {}
    for (storage_id, slot), (_storage, before) in log.items():
        marks_by_storage.setdefault(storage_id, []).append((slot, before))
    for marks in marks_by_storage.values():
        marks.sort()

    globals_, allocas, args = index
    global_diffs = []
    for name, values in globals_:
        marks = marks_by_storage.get(id(values))
        if not marks:
            continue
        for slot, before in marks:
            value = values[slot]
            if value != before:
                global_diffs.append((name, slot, value))
    alloca_diffs = []
    for inst, storage in allocas:
        marks = marks_by_storage.get(id(storage))
        if not marks:
            continue
        for slot, before in marks:
            value = storage[slot]
            if value != before:
                alloca_diffs.append((inst.uid, slot, value))
    arg_diffs = []
    for index_, storage in args:
        marks = marks_by_storage.get(id(storage))
        if not marks:
            continue
        for slot, before in marks:
            value = storage[slot]
            if value != before:
                arg_diffs.append((index_, slot, value))
    return global_diffs, alloca_diffs, arg_diffs
