"""Region payload codec for the ``processes`` backend.

The seed runtime shipped every pool worker one ``pickle.dumps(dict)``
holding the module, the full shared storage, and the worker frame —
O(program size) pickled W times per region, with the module (the largest
single component) re-encoded on every dispatch.  This codec makes the
wire format reflect what the PS-PDG already knows: the shared part of a
region is identical across workers, and the module is identical across
the whole run.

Three cooperating pieces:

**Shared-prelude pickling.**  Each region's shared state (global
storage, the enclosing sequential frame, the member loops) is dumped
once into a *shared prelude* stream; every worker's delta stream is then
produced by a pickler whose memo is primed with the prelude pickler's
memo, so the delta references shared objects by memo id instead of
re-serializing them.  The pool worker decodes with a single unpickler
over ``prelude + delta`` (two ``load()`` calls share one memo), which is
what preserves the register→storage aliasing the child's diff and
write-back rely on: a pointer register in the decoded worker frame *is*
a reference into the decoded shared storage, exactly as in the parent.
(The naive two-stream split — independent picklers — would duplicate
the storage lists and silently drop every store made through a
pre-materialized pointer.)

**Module byte cache.**  The module never changes across the regions of a
run, so its pickled bytes are produced once per module identity
(:func:`module_codec`, a strong-reference LRU so an id can never be
reused while cached) and shipped to the pool at most once per pool
recycle epoch.  Region streams never contain the module at all: every
module-owned object (functions, blocks, instructions, annotations,
canonical-loop records, globals) is pickled as a *persistent id* —
``("m", index)`` into the deterministic :func:`module_objects`
traversal — and resolved by the pool worker against its decoded-module
cache.  A worker that has not yet decoded the module (it joined the pool
after the epoch's broadcast region) reports a miss and the parent
retries that one payload with the bytes attached.

**Write-log diffing.**  The worker interpreter's store path records
``(object, slot)`` dirty marks (:meth:`Interpreter.enable_write_log`),
and :func:`diff_write_log` emits the shared-state diff from the log —
cost proportional to the writes the chunk actually made, not to the
size of every shared object.  The emitted diff is byte-for-byte the one
the legacy snapshot+full-scan produced (:func:`diff_snapshot` keeps that
path alive for the verification mode and the differential tests).
"""

import dataclasses
import hashlib
import io
import pickle
from collections import OrderedDict

#: Protocol for every codec stream.  Fixed (not HIGHEST_PROTOCOL) so the
#: parent and a pool worker running a different interpreter version of
#: the same session never disagree about opcodes.
PROTOCOL = 5

#: Persistent-id namespace tag for module-owned objects.
MODULE_TAG = "m"

#: Parent-side module codecs kept alive (id-keyed; strong references
#: guarantee the id cannot be recycled while the entry exists).
_MODULE_CODEC_CAP = 8

#: Pool-worker-side decoded modules kept per process.
_DECODED_MODULE_CAP = 4

#: When true, every encoded region asks the pool worker to compute the
#: legacy snapshot diff alongside the write-log diff and fail loudly on
#: any divergence.  Set by the differential tests; travels inside the
#: payload, so no child-process state is involved.
VERIFY_DIFFS = False

#: When true, :func:`encode_region` also measures what the legacy codec
#: (one self-contained ``pickle.dumps`` per worker) would have shipped,
#: filling ``RegionPayloads.naive_bytes``.  Benchmark-only: it performs
#: the very re-pickling the codec exists to avoid.
MEASURE_NAIVE = False


# -- deterministic module traversal -------------------------------------------


def module_objects(module):
    """Every module-owned object, in a deterministic traversal order.

    The parent builds its persistent-id map from this enumeration and
    the pool worker resolves persistent ids against the same enumeration
    of its *decoded* copy, so index ``i`` names the same logical object
    on both sides.  Any new object kind the IR grows must be appended
    here (order matters; append-only within one wire format).
    """
    objects = [module]
    for function in module.functions.values():
        objects.append(function)
        objects.extend(function.args)
        for block in function.blocks:
            objects.append(block)
            objects.extend(block.instructions)
        objects.extend(function.annotations)
        objects.extend(function.loop_info.values())
    objects.extend(module.globals.values())
    return objects


# -- picklers / unpicklers -----------------------------------------------------


class _RegionPickler(pickle.Pickler):
    """Pickler that writes module-owned objects as persistent ids."""

    def __init__(self, file, persist_map):
        super().__init__(file, protocol=PROTOCOL)
        self._persist = persist_map

    def persistent_id(self, obj):
        return self._persist.get(id(obj))


class _RegionUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids against decoded module objects."""

    def __init__(self, file, objects):
        super().__init__(file)
        self._objects = objects

    def persistent_load(self, pid):
        tag, index = pid
        if tag != MODULE_TAG:
            raise pickle.UnpicklingError(
                f"unknown persistent id namespace {tag!r}"
            )
        return self._objects[index]


# -- parent-side module codec --------------------------------------------------


class ModuleCodec:
    """Pickled-once module bytes plus the persistent-id map for regions.

    ``key`` is the content hash of the module stream — the identity the
    pool workers cache decoded modules under, so two sessions sharing
    one pool (or one session surviving a pool recycle) can never collide
    on stale bytes.
    """

    __slots__ = ("module", "key", "module_bytes", "persist_map")

    def __init__(self, module):
        self.module = module
        buffer = io.BytesIO()
        pickle.Pickler(buffer, protocol=PROTOCOL).dump(module)
        self.module_bytes = buffer.getvalue()
        self.key = hashlib.sha256(self.module_bytes).hexdigest()
        self.persist_map = {
            id(obj): (MODULE_TAG, index)
            for index, obj in enumerate(module_objects(module))
        }


_MODULE_CODECS = OrderedDict()  # id(module) -> ModuleCodec (LRU)

#: (pool epoch, module key) pairs whose bytes were already broadcast;
#: pruned to the current epoch on every encode.
_SHIPPED_MODULES = set()


def module_codec(module):
    """The (cached) :class:`ModuleCodec` for ``module``.

    Keyed by object identity: a session's module object is stable across
    its runs, so the expensive module pickle happens once per session
    (per module), not once per region per worker.
    """
    key = id(module)
    codec = _MODULE_CODECS.get(key)
    if codec is not None and codec.module is module:
        _MODULE_CODECS.move_to_end(key)
        return codec
    codec = ModuleCodec(module)
    _MODULE_CODECS[key] = codec
    while len(_MODULE_CODECS) > _MODULE_CODEC_CAP:
        _MODULE_CODECS.popitem(last=False)
    return codec


def reset_codec_caches():
    """Drop every codec cache in this process (tests/benchmarks only)."""
    _MODULE_CODECS.clear()
    _SHIPPED_MODULES.clear()
    _DECODED_MODULES.clear()


# -- wire format ---------------------------------------------------------------


@dataclasses.dataclass
class WorkerPayload:
    """One pool dispatch: shared prelude + this worker's delta.

    ``module_bytes`` rides along only when the parent is broadcasting
    the module for this pool epoch (or retrying a worker-side miss).
    """

    module_key: str
    module_bytes: bytes  # None when the pool epoch already has them
    shared_bytes: bytes
    delta_bytes: bytes

    @property
    def wire_bytes(self):
        return (
            len(self.shared_bytes)
            + len(self.delta_bytes)
            + (len(self.module_bytes) if self.module_bytes else 0)
        )

    def wire(self):
        return (
            self.module_key,
            self.module_bytes,
            self.shared_bytes,
            self.delta_bytes,
        )

    def with_module(self, codec):
        """A copy carrying the module bytes (miss-retry path)."""
        return dataclasses.replace(self, module_bytes=codec.module_bytes)


@dataclasses.dataclass
class RegionPayloads:
    """The encoded region: one :class:`WorkerPayload` per active worker."""

    codec: ModuleCodec
    workers: list
    shipped_module: bool
    naive_bytes: int = 0  # legacy-codec bytes (MEASURE_NAIVE only)

    @property
    def wire_bytes(self):
        return sum(payload.wire_bytes for payload in self.workers)


def encode_region(module, frame, loops, global_storage, max_steps,
                  workers, epoch):
    """Encode one region's pool payloads.

    ``workers`` are the active ``_Worker`` instances; ``frame`` is the
    enclosing sequential frame whose storages the worker frames alias;
    ``epoch`` identifies the current pool generation (module bytes are
    broadcast once per epoch).
    """
    codec = module_codec(module)

    buffer = io.BytesIO()
    prelude_pickler = _RegionPickler(buffer, codec.persist_map)
    prelude_pickler.dump({
        "global_storage": global_storage,
        "region_frame": frame,
        "loops": loops,
        "max_steps": max_steps,
        "verify_diffs": VERIFY_DIFFS,
    })
    shared_bytes = buffer.getvalue()
    # Memo snapshot after the prelude: each worker's delta pickler is
    # primed with its own copy (dict() below — the C pickler's memo
    # setter copies anyway, the pure-Python one would share), so deltas
    # reference prelude objects by memo id and one worker's private
    # objects can never leak into another's stream.
    base_memo = prelude_pickler.memo.copy()

    ship = (epoch, codec.key) not in _SHIPPED_MODULES
    payloads = []
    naive_bytes = 0
    for worker in workers:
        delta_buffer = io.BytesIO()
        delta_pickler = _RegionPickler(delta_buffer, codec.persist_map)
        delta_pickler.memo = dict(base_memo)
        delta_pickler.dump({
            "frame": worker.frame,
            "segments": worker.segments,
            "private_globals": worker.private_globals,
            "private_alloca_uids": {
                inst.uid for inst in worker.private_allocas
            },
        })
        payloads.append(WorkerPayload(
            module_key=codec.key,
            module_bytes=codec.module_bytes if ship else None,
            shared_bytes=shared_bytes,
            delta_bytes=delta_buffer.getvalue(),
        ))
        if MEASURE_NAIVE:
            naive_bytes += len(pickle.dumps({
                "module": module,
                "frame": worker.frame,
                "segments": worker.segments,
                "global_storage": global_storage,
                "max_steps": max_steps,
                "private_globals": worker.private_globals,
                "private_alloca_uids": {
                    inst.uid for inst in worker.private_allocas
                },
            }))
    if ship and payloads:
        _SHIPPED_MODULES.add((epoch, codec.key))
        # Entries for dead pool generations can never be consulted again.
        stale = {entry for entry in _SHIPPED_MODULES if entry[0] != epoch}
        _SHIPPED_MODULES.difference_update(stale)
    return RegionPayloads(
        codec=codec,
        workers=payloads,
        shipped_module=ship,
        naive_bytes=naive_bytes,
    )


# -- pool-worker-side decoding -------------------------------------------------

_DECODED_MODULES = OrderedDict()  # module key -> (module, objects)


def decode_payload(wire):
    """Decode one :meth:`WorkerPayload.wire` tuple inside a pool worker.

    Returns the payload dict the chunk entry executes, or ``None`` when
    this worker has not seen the module's bytes yet (the caller reports
    a miss and the parent retries with the bytes attached).  The decoded
    module — and its :func:`module_objects` enumeration — is cached per
    process, so steady-state payloads deserialize no module at all.
    """
    module_key, module_bytes, shared_bytes, worker_bytes = wire
    entry = _DECODED_MODULES.get(module_key)
    if entry is None:
        if module_bytes is None:
            return None
        module = pickle.loads(module_bytes)
        entry = (module, module_objects(module))
        _DECODED_MODULES[module_key] = entry
        while len(_DECODED_MODULES) > _DECODED_MODULE_CAP:
            _DECODED_MODULES.popitem(last=False)
    else:
        _DECODED_MODULES.move_to_end(module_key)
    module, objects = entry
    # One unpickler, two loads: the delta's memo references resolve
    # against the prelude's memo entries, preserving aliasing.
    unpickler = _RegionUnpickler(
        io.BytesIO(shared_bytes + worker_bytes), objects
    )
    payload = unpickler.load()
    payload.update(unpickler.load())
    payload["module"] = module
    return payload


# -- shared-state diffing ------------------------------------------------------
#
# The index, the snapshot, and both diff functions iterate the shared
# objects in the same fixed order (globals in storage-dict order,
# allocas in frame-object order, pointer args by index; slots ascending)
# so the write-log diff is byte-for-byte the snapshot diff.


def shared_index(frame, global_storage, private_alloca_uids):
    """Which objects a worker's writes must flow back through.

    Captured *before* the chunk runs: an alloca first executed inside
    the chunk is per-worker scratch, never merged (matching the legacy
    snapshot's pre-run capture).  Returns three ordered lists of
    ``(key, live storage)`` pairs — globals by name, allocas by
    instruction, pointer-typed arguments by index (those alias
    caller-owned storage the parent also shares).
    """
    globals_ = [
        (name, values)
        for name, values in global_storage.items()
        if name not in frame.global_overlay
    ]
    allocas = [
        (inst, storage)
        for inst, storage in frame.objects.items()
        if inst.uid not in private_alloca_uids
    ]
    args = [
        (index, value[0])
        for index, value in enumerate(frame.args)
        if isinstance(value, tuple) and len(value) == 2
    ]
    return globals_, allocas, args


def snapshot_shared(index):
    """Legacy pre-run capture: a full copy of every shared object."""
    globals_, allocas, args = index
    return (
        [list(values) for _name, values in globals_],
        [list(storage) for _inst, storage in allocas],
        [list(storage) for _index, storage in args],
    )


def diff_snapshot(snapshot, index):
    """Legacy full-scan diff of ``index`` against its pre-run snapshot."""
    globals_before, allocas_before, args_before = snapshot
    globals_, allocas, args = index
    global_diffs = []
    for (name, after), before in zip(globals_, globals_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                global_diffs.append((name, slot, value))
    alloca_diffs = []
    for (inst, after), before in zip(allocas, allocas_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                alloca_diffs.append((inst.uid, slot, value))
    arg_diffs = []
    for (index_, after), before in zip(args, args_before):
        for slot, value in enumerate(after):
            if value != before[slot]:
                arg_diffs.append((index_, slot, value))
    return global_diffs, alloca_diffs, arg_diffs


def diff_write_log(log, index):
    """Shared-state diff of ``index`` from the interpreter's write log.

    ``log`` maps ``(id(storage), slot) -> (storage, value before the
    first write)`` — see :meth:`Interpreter.enable_write_log`.  Cost is
    O(dirty slots), and a slot rewritten to its original value is
    elided, exactly as the snapshot scan would.
    """
    marks_by_storage = {}
    for (storage_id, slot), (_storage, before) in log.items():
        marks_by_storage.setdefault(storage_id, []).append((slot, before))
    for marks in marks_by_storage.values():
        marks.sort()

    globals_, allocas, args = index
    global_diffs = []
    for name, values in globals_:
        marks = marks_by_storage.get(id(values))
        if not marks:
            continue
        for slot, before in marks:
            value = values[slot]
            if value != before:
                global_diffs.append((name, slot, value))
    alloca_diffs = []
    for inst, storage in allocas:
        marks = marks_by_storage.get(id(storage))
        if not marks:
            continue
        for slot, before in marks:
            value = storage[slot]
            if value != before:
                alloca_diffs.append((inst.uid, slot, value))
    arg_diffs = []
    for index_, storage in args:
        marks = marks_by_storage.get(id(storage))
        if not marks:
            continue
        for slot, before in marks:
            value = storage[slot]
            if value != before:
                arg_diffs.append((index_, slot, value))
    return global_diffs, alloca_diffs, arg_diffs
