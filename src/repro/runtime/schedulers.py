"""Chunk schedulers: how a DOALL iteration space is split across workers.

Partitioning is decided *once*, here, and shared by every execution
backend (simulated, threads, processes), so the same ``(schedule,
chunk, workers)`` triple yields the same iteration-to-worker assignment
everywhere.  That determinism is what lets the differential conformance
suite compare backends value-for-value: a per-worker reduction
accumulates its iterations in a fixed order, and the join merges worker
results in worker order, so the only allowed divergence from the
sequential run is floating-point reassociation.

The three schedules mirror OpenMP's:

* ``static`` — fixed-size chunks dealt round-robin to workers (the
  historical behavior of the simulated runtime);
* ``dynamic`` — fixed-size chunks assigned greedily to the least-loaded
  worker, a deterministic model of a work queue;
* ``guided`` — exponentially shrinking chunks (half the fair share of
  the remaining work), assigned greedily, never smaller than ``chunk``.
"""

from repro.util.errors import PlanError


def _validate_chunk(chunk):
    if chunk is None:
        return None
    if not isinstance(chunk, int) or isinstance(chunk, bool) or chunk < 1:
        raise PlanError(
            f"chunk size must be a positive integer, got {chunk!r}"
        )
    return chunk


def _validate_workers(workers):
    if (
        not isinstance(workers, int)
        or isinstance(workers, bool)
        or workers < 1
    ):
        raise PlanError(f"workers must be a positive integer, got {workers!r}")
    return workers


class ChunkScheduler:
    """Deterministically partitions iteration values over W workers."""

    name = None

    def __init__(self, chunk=None):
        self.chunk = _validate_chunk(chunk)

    def partition(self, values, workers):
        """Per-worker iteration lists (len == ``workers``, order fixed)."""
        _validate_workers(workers)
        values = list(values)
        assignment = [[] for _ in range(workers)]
        for worker_index, chunk in self._deal(values, workers):
            assignment[worker_index].extend(chunk)
        return assignment

    def _deal(self, values, workers):
        """Yield (worker index, chunk of iteration values)."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} chunk={self.chunk}>"


def _fixed_chunks(values, size):
    return [values[i : i + size] for i in range(0, len(values), size)]


def _least_loaded(loads):
    """Index of the worker with the fewest assigned iterations (ties: lowest)."""
    best = 0
    for index in range(1, len(loads)):
        if loads[index] < loads[best]:
            best = index
    return best


class StaticScheduler(ChunkScheduler):
    """Fixed-size chunks, round-robin.  ``chunk`` defaults to 1 (cyclic)."""

    name = "static"

    def _deal(self, values, workers):
        size = self.chunk or 1
        for index, chunk in enumerate(_fixed_chunks(values, size)):
            yield index % workers, chunk


class DynamicScheduler(ChunkScheduler):
    """Fixed-size chunks to the least-loaded worker (work-queue model)."""

    name = "dynamic"

    def _deal(self, values, workers):
        size = self.chunk or 1
        loads = [0] * workers
        for chunk in _fixed_chunks(values, size):
            index = _least_loaded(loads)
            loads[index] += len(chunk)
            yield index, chunk


class GuidedScheduler(ChunkScheduler):
    """Shrinking chunks (half the fair share of what remains), greedy."""

    name = "guided"

    def _deal(self, values, workers):
        minimum = self.chunk or 1
        loads = [0] * workers
        cursor = 0
        while cursor < len(values):
            remaining = len(values) - cursor
            size = max(minimum, remaining // (2 * workers))
            chunk = values[cursor : cursor + size]
            cursor += len(chunk)
            index = _least_loaded(loads)
            loads[index] += len(chunk)
            yield index, chunk


SCHEDULERS = {
    scheduler.name: scheduler
    for scheduler in (StaticScheduler, DynamicScheduler, GuidedScheduler)
}


def schedule_names():
    return sorted(SCHEDULERS)


def make_scheduler(schedule, chunk=None):
    """A :class:`ChunkScheduler` for a schedule name (or pass one through)."""
    if isinstance(schedule, ChunkScheduler):
        return schedule
    if schedule not in SCHEDULERS:
        raise PlanError(
            f"unknown schedule {schedule!r}; choose from {schedule_names()}"
        )
    return SCHEDULERS[schedule](chunk)
