"""``repro.Session`` — the staged, cached pipeline API.

One session owns one program and materializes the paper's Fig. 12
pipeline lazily, exactly once per artifact::

    from repro import Session

    s = Session.from_source(source_text, name="demo")
    s.pspdg                  # compiles, profiles, builds PDG + PS-PDG
    plan = s.plan()          # best PS-PDG plan by ideal critical path
    result = s.run(plan)     # validated simulated-parallel execution

Every property triggers only the stages it needs (module -> profile ->
pdg -> pspdg -> views -> options / critical paths); artifacts live in a
content-hash keyed :class:`~repro.pipeline.cache.PipelineCache`, so a
second ``s.plan()`` or ``s.options()`` performs zero rebuilds — the hot
path of every benchmark.  Per-stage wall time and artifact statistics
are recorded in ``s.diagnostics``.  Reassigning ``s.source`` or calling
``s.reconfigure(...)`` re-keys the affected stages; nothing stale can be
returned.
"""

from repro.pipeline.cache import PipelineCache, content_key
from repro.pipeline.config import SessionConfig
from repro.pipeline.diagnostics import Diagnostics
from repro.pipeline.stages import STAGES
from repro.planner.critical_path import CriticalPathEvaluator
from repro.planner.options import count_options
from repro.planner.plans import abstraction_plan, openmp_source_plan

#: Config fields each stage's *own* builder reads.  A stage's cache key
#: covers these plus — transitively through the stage graph's ``deps``
#: edges — every upstream stage's fields, so changing e.g. the config
#: ``name`` (which re-keys the ``module`` stage) re-keys everything
#: downstream, while a machine-model change re-enumerates options
#: without invalidating the PS-PDG.
_STAGE_PARAMS = {
    "module": ("name",),
    "function": ("function_name",),
    "profile": ("function_name",),
    "alias": (),
    "pdg": (),
    "loops": (),
    "pspdg": (),
    "views": ("abstractions",),
    # The calibration stage reads the base machine plus the calibration
    # switches; the *measured* coefficients are not config — they travel
    # in every calibrated stage's key as the store-version extra (see
    # ``_stage_key``).
    "calibrate": ("machine", "calibrate", "profile_path"),
    # ``optimize`` re-runs the pass pipeline when the level, the machine
    # model (cost thresholds), or the planning knobs change — and only
    # then: the graph stages upstream keep their keys.  Its builder
    # reaches ``critical_paths`` through the session, so that query's
    # key fields — including ``abstractions``, which decides the views
    # the planner iterates — are folded in here explicitly.
    "optimize": (
        "opt_level",
        "machine",
        "abstractions",
        "name",
        "plan_hierarchical",
        "plan_all_loops",
        # The small-region pass scales cost estimates by the machine's
        # compiled speedup when region compilation is on.
        "compile_regions",
    ),
    "recipes": (),
    "compile_regions": ("compile_regions",),
    # Query stages: the effective machine/min_coverage of ``options``
    # travel as explicit key extras, not config fields.
    "options": ("name",),
    "critical_paths": ("name", "plan_hierarchical", "plan_all_loops"),
}

#: Upstream stages of the query methods (not in STAGES themselves).
_QUERY_DEPS = {
    "options": ("function", "loops", "profile", "views"),
    "critical_paths": ("function", "profile", "views"),
}

#: Stages whose artifact depends on the calibration store's *contents*
#: (not just config): their cache keys carry the store version, so a new
#: observation re-prices plans while the graph stages upstream stay put.
_CALIBRATED_STAGES = frozenset(
    {"calibrate", "optimize", "recipes", "compile_regions"}
)


def _key_fields(stage_name, _cache={}):
    """Config fields covering ``stage_name`` and its transitive deps."""
    if stage_name not in _cache:
        fields = set(_STAGE_PARAMS.get(stage_name, ()))
        deps = (
            STAGES[stage_name].deps
            if stage_name in STAGES
            else _QUERY_DEPS[stage_name]
        )
        for dep in deps:
            fields.update(_key_fields(dep))
        _cache[stage_name] = tuple(sorted(fields))
    return _cache[stage_name]


class Session:
    """Owns one program; materializes pipeline artifacts lazily, once."""

    def __init__(self, source=None, module=None, config=None, **overrides):
        if (source is None) == (module is None):
            raise ValueError("provide exactly one of source= or module=")
        config = config if config is not None else SessionConfig()
        if overrides:
            config = config.derive(**overrides)
        self._source = source
        self._module = module
        self._generation = 0
        self.config = config
        self.cache = PipelineCache()
        self.diagnostics = Diagnostics()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_source(cls, source, name=None, config=None, **overrides):
        """Session over MiniOMP/Cilk source text.

        An explicit ``name=`` wins; otherwise the name comes from
        ``config``/``overrides`` (default: "session").
        """
        if name is not None:
            overrides.setdefault("name", name)
        return cls(source=source, config=config, **overrides)

    @classmethod
    def from_module(cls, module, name=None, config=None, **overrides):
        """Session over an already-compiled IR module.

        Defaults the session name to the module's name unless the
        caller supplies one (directly or via ``config``).
        """
        if name is None and config is None and "name" not in overrides:
            name = getattr(module, "name", None)
        if name is not None:
            overrides.setdefault("name", name)
        return cls(module=module, config=config, **overrides)

    @classmethod
    def from_kernel(cls, kernel_name, config=None, **overrides):
        """Session over one of the NAS mini-kernels ("IS", "MG", ...)."""
        from repro.workloads import build_kernel

        if config is None:
            overrides.setdefault("name", kernel_name)
        return cls(module=build_kernel(kernel_name), config=config,
                   **overrides)

    # -- cache plumbing -------------------------------------------------------

    def _source_identity(self):
        if self._source is not None:
            return content_key(self._source)
        return f"module:{id(self._module)}"

    def _stage_key(self, stage_name, extra=()):
        params = tuple(
            (field, getattr(self.config, field))
            for field in _key_fields(stage_name)
        )
        if stage_name in _CALIBRATED_STAGES:
            token = (
                self.calibration.version if self.calibrate_enabled else 0
            )
            extra = (("calibration", token),) + tuple(extra)
        return content_key(
            self._source_identity(), self._generation, params, extra
        )

    def _stage(self, stage_name):
        stage = STAGES[stage_name]
        return self.cache.get_or_build(
            stage_name,
            self._stage_key(stage_name),
            lambda: stage.build(self),
            self.diagnostics,
            stage.stats,
        )

    def invalidate(self):
        """Drop every cached artifact; the next query rebuilds from source."""
        self._generation += 1
        return self.cache.invalidate()

    def reconfigure(self, **changes):
        """Apply config changes in place.

        Stages whose keys involve a changed field rebuild on next access;
        everything else (typically the expensive graph builds) stays
        cached.  Returns ``self`` for chaining.
        """
        self.config = self.config.derive(**changes)
        return self

    # -- the program ----------------------------------------------------------

    @property
    def source(self):
        return self._source

    @source.setter
    def source(self, text):
        """Replace the program; invalidates every downstream artifact."""
        self._source = text
        self._module = None
        self._generation += 1

    # -- pipeline artifacts (lazy, cached) ------------------------------------

    @property
    def module(self):
        """Annotated IR module (stage: frontend)."""
        return self._stage("module")

    @property
    def function(self):
        """The profiled entry-point function."""
        return self._stage("function")

    @property
    def execution(self):
        """Sequential :class:`ExecutionResult` with loop-nest profile."""
        return self._stage("profile")

    @property
    def profile(self):
        """The dynamic loop-nest profile of the sequential run."""
        return self.execution.profile

    @property
    def alias(self):
        """Module-wide alias analysis."""
        return self._stage("alias")

    @property
    def pdg(self):
        """The sequential Program Dependence Graph."""
        return self._stage("pdg")

    @property
    def loops(self):
        """Natural loops of the entry function."""
        return self._stage("loops")

    @property
    def pspdg(self):
        """The Parallel-Semantics PDG (the paper's contribution)."""
        return self._stage("pspdg")

    @property
    def views(self):
        """Abstraction name -> :class:`DependenceView` per the config."""
        return self._stage("views")

    @property
    def optimizations(self):
        """Abstraction name -> :class:`OptimizationResult` at the config's
        ``opt_level`` (stage: optimize)."""
        return self._stage("optimize")

    @property
    def region_recipes(self):
        """Abstraction name -> runtime region recipes (stage: recipes)."""
        return self._stage("recipes")

    @property
    def compile_regions_enabled(self):
        """The config's ``compile_regions`` knob, env-resolved.

        ``None`` defers to the ``REPRO_COMPILE`` environment flag, so an
        unconfigured session follows the same switch the bare runtime
        entry points do.
        """
        from repro.runtime import knobs

        configured = self.config.compile_regions
        return bool(knobs.REPRO_COMPILE) if configured is None \
            else bool(configured)

    @property
    def compiled_regions(self):
        """Codegen warm-up summary for the planned loops (stage:
        compile_regions)."""
        return self._stage("compile_regions")

    @property
    def calibrated(self):
        """Effective machine model + measured wire feedback (stage:
        calibrate).  Static defaults unless calibration is on."""
        return self._stage("calibrate")

    @property
    def calibrate_enabled(self):
        """The config's ``calibrate`` knob, env-resolved
        (``REPRO_CALIBRATE``)."""
        from repro.runtime import knobs

        configured = self.config.calibrate
        return bool(knobs.REPRO_CALIBRATE) if configured is None \
            else bool(configured)

    @property
    def adaptive_enabled(self):
        """The config's ``adaptive`` knob, env-resolved
        (``REPRO_ADAPTIVE``)."""
        from repro.runtime import knobs

        configured = self.config.adaptive
        return bool(knobs.REPRO_ADAPTIVE) if configured is None \
            else bool(configured)

    @property
    def profile_path(self):
        """Where the calibration profile persists (``None`` = in-memory).

        The config's ``profile_path`` wins; ``None`` defers to the
        ``REPRO_PROFILE`` environment knob; empty means no file.
        """
        from repro.runtime import knobs

        configured = self.config.profile_path
        if configured is None:
            configured = knobs.REPRO_PROFILE.value
        return configured or None

    @property
    def calibration(self):
        """This session's :class:`CalibrationStore` (lazy, session-scoped).

        One store for the session's lifetime, loaded from
        ``profile_path`` on first touch — so a warm session plans with
        the coefficients earlier sessions measured, and this session's
        observations accumulate on top.
        """
        store = getattr(self, "_calibration_obj", None)
        if store is None:
            from repro.planner.calibration import CalibrationStore

            store = CalibrationStore(self.profile_path)
            self._calibration_obj = store
        return store

    def program_key(self):
        """Content hash keying this program's calibration feedback.

        The module's wire key (its content identity on the process-pool
        wire), so profiles survive session restarts and never leak
        between different programs.
        """
        from repro.runtime.payload import module_codec

        return module_codec(self.module).key

    def optimization(self, abstraction="PS-PDG"):
        """The pass pipeline's result (plan + report) for one abstraction."""
        results = self.optimizations
        if abstraction not in results:
            raise KeyError(
                f"no optimized plan for abstraction {abstraction!r}; "
                f"have {sorted(results)}"
            )
        return results[abstraction]

    def optimized_plan(self, abstraction="PS-PDG"):
        """The chosen plan after the ``-O`` passes (regions populated)."""
        return self.optimization(abstraction).plan

    # -- planning queries ------------------------------------------------------

    def options(self, machine=None, min_coverage=None):
        """Fig. 13 option enumeration (cached per machine/coverage)."""
        machine = machine if machine is not None else self.config.machine
        if min_coverage is None:
            min_coverage = self.config.min_coverage
        key = self._stage_key("options", (machine, min_coverage))
        return self.cache.get_or_build(
            "options",
            key,
            lambda: count_options(
                self.config.name,
                self.function,
                self.loops,
                self.profile,
                self.views,
                machine,
                min_coverage,
            ),
            self.diagnostics,
            lambda report: dict(report.totals),
        )

    def critical_paths(self):
        """Fig. 14 per-abstraction critical paths, speedups, and plans."""
        return self.cache.get_or_build(
            "critical_paths",
            self._stage_key("critical_paths"),
            self._build_critical_paths,
            self.diagnostics,
            lambda results: {
                name: round(entry["speedup"], 3)
                for name, entry in results.items()
                if entry.get("speedup") is not None
            },
        )

    def _build_critical_paths(self):
        profile = self.profile
        config = self.config

        def evaluator_factory(plan):
            return CriticalPathEvaluator(profile, plan)

        results = {}
        results["Sequential"] = {
            "critical_path": profile.total(),
            "speedup": None,
        }
        openmp_plan = openmp_source_plan(self.function)
        openmp_cp = CriticalPathEvaluator(profile, openmp_plan).evaluate()
        results["OpenMP"] = {
            "critical_path": openmp_cp,
            "speedup": 1.0,
            "plan": openmp_plan,
        }
        for name, view in self.views.items():
            plan = abstraction_plan(
                name,
                self.function,
                view,
                profile,
                hierarchical_inner=name in config.plan_hierarchical,
                evaluator_factory=evaluator_factory,
                plan_all_loops=name in config.plan_all_loops,
            )
            cp = CriticalPathEvaluator(profile, plan).evaluate()
            results[name] = {
                "critical_path": cp,
                "speedup": openmp_cp / cp if cp else float("inf"),
                "plan": plan,
            }
        return results

    def plan(self, abstraction="PS-PDG"):
        """The chosen plan for ``abstraction`` ("OpenMP" for the source plan)."""
        results = self.critical_paths()
        if abstraction not in results:
            raise KeyError(
                f"no plan for abstraction {abstraction!r}; "
                f"have {sorted(results)}"
            )
        entry = results[abstraction]
        if "plan" not in entry:
            raise KeyError(f"{abstraction!r} has no executable plan")
        return entry["plan"]

    # -- execution -------------------------------------------------------------

    def run(self, plan=None, workers=None, seed=None, backend=None,
            schedule=None, chunk=None, opt=None, compile_regions=None,
            adaptive=None):
        """Execute the program under ``plan`` on a parallel backend.

        ``plan`` may be a :class:`ProgramPlan`, an abstraction name
        (planned — and ``-O``-optimized — on demand), or
        ``None``/"source" for the developer's OpenMP plan.  ``backend``
        ("simulated" | "threads" | "processes"), ``schedule`` ("static" |
        "dynamic" | "guided"), ``workers``, ``seed``, ``chunk``, and
        ``opt`` (the optimization level) default to the session config.
        Abstraction-name runs at the config's level reuse the cached
        ``optimize``/``recipes`` stages; an explicit different ``opt``
        optimizes on the fly without touching the caches.  The
        ``processes`` chunk pool is sized from the machine model's core
        count.  Per-region, per-worker timing is recorded in
        ``self.diagnostics`` (see ``diagnostics.parallel_report()``).

        ``adaptive`` (default: the config's ``adaptive`` knob) turns on
        mid-run replanning: dispatches whose measured timings diverge
        from the plan's predictions re-derive the remaining regions'
        cost decisions with a freshly calibrated machine model (see
        ``result.replan_events``).  With calibration on, the run's
        region stats are distilled into the session's
        :class:`CalibrationStore` afterwards (and persisted to
        ``profile_path``), so the *next* plan starts from measured
        coefficients.
        """
        from repro.opt import OptLevel
        from repro.runtime.executor import (
            run_parallel,
            run_plan,
            run_source_plan,
        )

        workers = workers if workers is not None else self.config.workers
        seed = seed if seed is not None else self.config.seed
        backend = backend if backend is not None else self.config.backend
        schedule = schedule if schedule is not None else self.config.schedule
        chunk = chunk if chunk is not None else self.config.chunk
        level = (OptLevel.coerce(opt) if opt is not None
                 else self.config.opt_level)
        pool_size = self.config.machine.cores
        prelude = self._prelude_codec()
        quarantine = self._quarantine()
        retry_budget = self.config.retry_budget
        failover = self.config.failover
        adaptive_on = (
            self.adaptive_enabled if adaptive is None else bool(adaptive)
        )
        compile_on = (
            self.compile_regions_enabled if compile_regions is None
            else bool(compile_regions)
        )
        if compile_on and isinstance(plan, str) and plan not in (
            "source", "OpenMP"
        ):
            # Warm the codegen cache (and record its stage stats) before
            # the first region dispatch.  Source-plan runs skip the
            # warm-up — it would drag the whole planning pipeline in —
            # and compile lazily at dispatch instead.
            self._stage("compile_regions")
        if plan is None or plan in ("source", "OpenMP"):
            replan = (
                self._replan_context(openmp_source_plan(self.function),
                                     level)
                if adaptive_on else None
            )
            result = run_source_plan(
                self.module, self.config.function_name, workers, seed,
                backend, schedule, chunk, pool_size, prelude,
                compile_on, quarantine=quarantine,
                retry_budget=retry_budget, failover=failover,
                adaptive=adaptive_on, replan=replan,
            )
        elif isinstance(plan, str):
            if level == self.config.opt_level:
                regions = self._cached_regions(plan)
            else:
                regions = self._regions_at_level(plan, level)
            replan = (
                self._replan_context(self.plan(plan), level)
                if adaptive_on else None
            )
            result = run_parallel(
                self.module, regions, self.config.function_name, workers,
                seed, backend, schedule, chunk, pool_size, prelude,
                compile_on, quarantine=quarantine,
                retry_budget=retry_budget, failover=failover,
                adaptive=adaptive_on, replan=replan,
            )
        else:
            # Explicit ProgramPlan: optimize here, against the session's
            # cached pdg/loops — run_plan's standalone opt path would
            # rebuild the dependence analyses on every call.
            base_plan = plan
            if level > OptLevel.O0 and not plan.regions:
                plan = self._optimize_plan_object(plan, level)
            replan = (
                self._replan_context(base_plan, level)
                if adaptive_on else None
            )
            result = run_plan(
                self.module,
                self.pspdg,
                plan,
                self.config.function_name,
                workers,
                seed,
                backend,
                schedule,
                chunk,
                pool_size=pool_size,
                prelude=prelude,
                compile_regions=compile_on,
                quarantine=quarantine,
                retry_budget=retry_budget,
                failover=failover,
                adaptive=adaptive_on,
                replan=replan,
            )
        for region in result.parallel_regions:
            self.diagnostics.record_parallel(region)
        if self.calibrate_enabled or adaptive_on:
            # Mid-run replans already fed the store up to
            # ``calibrated_upto``; distill only the regions after that so
            # nothing is counted twice, then persist for warm sessions.
            start = getattr(result, "calibrated_upto", 0)
            self.calibration.observe_run(
                result.parallel_regions[start:],
                program_key=self.program_key(),
            )
            if self.calibrate_enabled and self.profile_path:
                self.calibration.save()
        return result

    def _replan_context(self, base_plan, level):
        """The planner context mid-run replanning re-optimizes against.

        Carries the session's cached analyses, the *unoptimized* base
        plan (``optimize_plan`` re-derives region descriptors from
        scratch every call), the effective machine model, the shared
        calibration store, and the per-label payload-bytes predictions
        the divergence detector compares measurements against.
        """
        from repro.planner.calibration import ReplanContext

        calibrated = self.calibrated
        return ReplanContext(
            function=self.function,
            module=self.module,
            pdg=self.pdg,
            pspdg=self.pspdg,
            plan=base_plan,
            level=level,
            machine=calibrated["machine"],
            loops=self.loops,
            store=self.calibration,
            program_key=self.program_key(),
            predicted_bytes=dict(calibrated["payload_bytes"]),
        )

    def _prelude_codec(self):
        """This session's resident-prelude stream (processes backend).

        One codec for the session's lifetime: the pool workers' resident
        shared state — and its hash chain — survives across ``run``
        calls, so only the state a run boundary actually changed is
        re-shipped (the codec rebinds itself onto each fresh
        interpreter's storages by value diff).
        """
        codec = getattr(self, "_prelude_codec_obj", None)
        if codec is None:
            from repro.runtime.payload import PreludeCodec

            codec = PreludeCodec()
            self._prelude_codec_obj = codec
        return codec

    def _quarantine(self):
        """This session's degradation-ladder denylist.

        One :class:`~repro.runtime.faults.Quarantine` for the session's
        lifetime: a region that exhausted its processes retries and
        failed over is remembered (keyed by program content hash +
        region label), so warm re-runs skip straight to the rung that
        worked instead of re-paying the doomed retries.
        """
        quarantine = getattr(self, "_quarantine_obj", None)
        if quarantine is None:
            from repro.runtime.faults import Quarantine

            quarantine = Quarantine()
            self._quarantine_obj = quarantine
        return quarantine

    def _cached_regions(self, abstraction):
        recipes = self.region_recipes
        if abstraction not in recipes:
            # Raise the same error an unknown abstraction always raised.
            self.plan(abstraction)
            raise KeyError(f"{abstraction!r} has no executable plan")
        return recipes[abstraction]

    def _optimize_plan_object(self, plan, level):
        """Run the -O passes over an explicit plan, on cached artifacts."""
        from repro.opt import optimize_plan

        calibrated = self.calibrated
        return optimize_plan(
            self.function,
            self.module,
            self.pdg,
            self.pspdg,
            plan,
            level,
            machine=calibrated["machine"],
            loops=self.loops,
            payload_bytes=calibrated["payload_bytes"] or None,
            prelude_warm=calibrated["prelude_warm"] or None,
            compiled_speedup=calibrated["compiled_speedup"] or None,
        ).plan

    def _regions_at_level(self, abstraction, level):
        """Regions for an explicit ``opt=`` override (cache-bypassing)."""
        from repro.runtime.executor import recipes_from_plan

        optimized = self._optimize_plan_object(self.plan(abstraction), level)
        return recipes_from_plan(
            self.module, self.pspdg, optimized, self.function
        )

    # -- ablation / canonical form --------------------------------------------

    def signature(self):
        """Canonical signature of the full PS-PDG."""
        from repro.core.ablation import full
        from repro.core.canonical import signature

        return signature(full(self.pspdg))

    def reduced_signature(self, projection=None):
        """Signature after ablating features (Section 4 necessity knob).

        ``projection`` is a callable (e.g.
        :func:`repro.core.ablation.without_traits`); when omitted, the
        config's ``ablate_features`` are projected out.
        """
        from repro.core.ablation import project

        if projection is not None:
            return _canonical_signature(projection(self.pspdg))
        reduced = project(self.pspdg, self.config.ablate_features)
        return _canonical_signature(reduced)

    # -- interop ---------------------------------------------------------------

    def benchmark_setup(self):
        """This session's artifacts as a typed :class:`BenchmarkSetup`."""
        from repro.planner.experiments import BenchmarkSetup

        return BenchmarkSetup(
            name=self.config.name,
            session=self,
            module=self.module,
            function=self.function,
            profile=self.profile,
            execution=self.execution,
            pdg=self.pdg,
            pspdg=self.pspdg,
            loops=self.loops,
            views=self.views,
        )

    def describe(self):
        """One-line summary plus the per-stage diagnostics table."""
        header = (
            f"Session {self.config.name!r} "
            f"(function={self.config.function_name}, "
            f"cache entries={len(self.cache)}, "
            f"hits={self.cache.hits}, misses={self.cache.misses})"
        )
        return header + "\n" + self.diagnostics.report()

    def __repr__(self):
        origin = "source" if self._source is not None else "module"
        return (
            f"<Session {self.config.name!r} from {origin}, "
            f"{len(self.cache)} cached artifacts>"
        )


def _canonical_signature(reduced):
    from repro.core.canonical import signature

    return signature(reduced)
