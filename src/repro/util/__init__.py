"""Small shared utilities used across the repro packages."""

from repro.util.errors import (
    IRError,
    FrontendError,
    AnalysisError,
    PlanError,
    VerificationError,
)
from repro.util.ids import IdAllocator
from repro.util.orderedset import OrderedSet

__all__ = [
    "IRError",
    "FrontendError",
    "AnalysisError",
    "PlanError",
    "VerificationError",
    "IdAllocator",
    "OrderedSet",
]
