"""Exception hierarchy for the repro library.

Every package raises a subclass of :class:`ReproError` so callers can catch
library failures without catching unrelated Python errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised for malformed IR construction or manipulation."""


class VerificationError(IRError):
    """Raised by the IR verifier when a structural invariant is violated."""


class FrontendError(ReproError):
    """Raised for MiniOMP / Cilk source errors (lexing, parsing, sema)."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{line}:{column or 0}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when an analysis is queried with invalid inputs."""


class PlanError(ReproError):
    """Raised for illegal parallelization plans (failed legality checks)."""


class EmulationError(ReproError):
    """Raised by the interpreter for runtime faults (OOB access, div0...)."""


class RegionDispatchError(EmulationError):
    """Raised when region dispatch infrastructure fails beyond recovery.

    Worker death, hangs, and poisoned payloads are retried by the
    supervised processes backend; this error means the retry budget is
    exhausted.  It is *not* a program error — the degradation ladder
    catches it and re-runs the region on a lower rung, while genuine
    program faults stay plain :class:`EmulationError` and propagate.
    """
