"""Deterministic unique-id allocation.

Contexts, hierarchical nodes, and IR values all need stable unique
identifiers.  Ids are allocated per-allocator and are deterministic for a
given construction order, which keeps printed IR and canonical graph forms
stable across runs (important for golden tests).
"""


class IdAllocator:
    """Hands out consecutive integer ids, optionally tagged with a prefix.

    >>> ids = IdAllocator("ctx")
    >>> ids.fresh()
    'ctx0'
    >>> ids.fresh()
    'ctx1'
    >>> IdAllocator().fresh()
    0
    """

    def __init__(self, prefix=None):
        self._prefix = prefix
        self._next = 0

    def fresh(self):
        """Return the next unused id."""
        value = self._next
        self._next += 1
        if self._prefix is None:
            return value
        return f"{self._prefix}{value}"

    def peek(self):
        """Return the id that the next call to :meth:`fresh` would produce."""
        if self._prefix is None:
            return self._next
        return f"{self._prefix}{self._next}"

    def reset(self):
        """Restart allocation from zero (used by tests)."""
        self._next = 0
