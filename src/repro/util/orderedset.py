"""An insertion-ordered set.

Compiler data structures (worklists, block sets, node sets) need set
semantics *and* deterministic iteration order; plain ``set`` iteration order
depends on hash seeds.  ``OrderedSet`` is a thin wrapper over ``dict`` (which
preserves insertion order) exposing the small set API the library uses.
"""


class OrderedSet:
    """A set that iterates in insertion order.

    >>> s = OrderedSet([3, 1, 2, 1])
    >>> list(s)
    [3, 1, 2]
    >>> s.add(1); s.add(4); list(s)
    [3, 1, 2, 4]
    """

    def __init__(self, items=()):
        self._items = dict.fromkeys(items)

    def add(self, item):
        self._items[item] = None

    def discard(self, item):
        self._items.pop(item, None)

    def remove(self, item):
        del self._items[item]

    def pop_first(self):
        """Remove and return the oldest item (FIFO worklist behaviour)."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    def update(self, items):
        for item in items:
            self.add(item)

    def __contains__(self, item):
        return item in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)

    def __eq__(self, other):
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._items))

    def __repr__(self):
        return f"OrderedSet({list(self._items)!r})"

    def union(self, other):
        result = OrderedSet(self)
        result.update(other)
        return result

    def intersection(self, other):
        other = set(other)
        return OrderedSet(item for item in self if item in other)

    def difference(self, other):
        other = set(other)
        return OrderedSet(item for item in self if item not in other)
