"""repro.workloads — evaluation programs: NAS mini-kernels + Fig 11 gallery."""

from repro.workloads import nas
from repro.workloads.nas import (
    KERNELS,
    build_kernel,
    build_session,
    kernel_names,
)
from repro.workloads.necessity import (
    PAIRS,
    NecessityPair,
    build_pair_graphs,
    build_pair_sessions,
    demonstrate,
)

__all__ = [
    "nas",
    "KERNELS",
    "build_kernel",
    "build_session",
    "kernel_names",
    "PAIRS",
    "NecessityPair",
    "build_pair_graphs",
    "build_pair_sessions",
    "demonstrate",
]
