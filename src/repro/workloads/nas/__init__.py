"""Mini NAS Parallel Benchmarks (paper §6: BT, CG, EP, FT, IS, LU, MG, SP).

Each kernel is a MiniOMP program that preserves the *OpenMP structure* of
the original NAS benchmark — which loops the programmer parallelized,
which variables are private/threadprivate/reductions, where criticals and
recurrences sit — at laptop-scale problem sizes.  Fig. 13 (option counts)
and Fig. 14 (ideal-machine critical path) depend on exactly this
structure, not on the class B/C problem sizes, so the shapes of both
results are preserved while each kernel interprets in well under a second.
"""

from repro.workloads.nas import bt, cg, ep, ft, is_, lu, mg, sp

KERNELS = {
    "BT": bt,
    "CG": cg,
    "EP": ep,
    "FT": ft,
    "IS": is_,
    "LU": lu,
    "MG": mg,
    "SP": sp,
}


def kernel_names():
    """Benchmark names in the paper's presentation order."""
    return list(KERNELS)


def build_kernel(name):
    """Compile one kernel to an annotated IR module."""
    return KERNELS[name].build_module()


def build_session(name, **overrides):
    """A :class:`repro.Session` over one kernel (backend/schedule/...

    overrides flow into the session config — e.g.
    ``build_session("EP", backend="processes", workers=8)``).
    """
    from repro.session import Session

    return Session.from_kernel(name, **overrides)


def kernel_source(name):
    return KERNELS[name].SOURCE
