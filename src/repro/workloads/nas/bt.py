"""Mini BT — block-tridiagonal ADI solver skeleton.

NAS BT computes a stencil right-hand side, then sweeps lines with a
forward recurrence into per-line working storage before updating the
grid.  The line buffer is declared ``private``: a data-semantics clause a
worksharing-only improvement cannot use (the buffer is rewritten every
line, so the sequential analysis sees carried WAW/RAW on it).  The
residual norm is a workshared ``reduction``.
"""

NAME = "BT"

SOURCE = """
global u: float[20][20];
global rhs: float[20][20];

func main() {
  for i in 0..20 {
    for j in 0..20 {
      u[i][j] = float((i * 7 + j * 3) % 11) * 0.1;
    }
  }
  for it in 0..2 {
    pragma omp parallel_for
    for i in 1..19 {
      for j in 1..19 {
        rhs[i][j] = u[i][j - 1] + u[i][j + 1] + u[i - 1][j] + u[i + 1][j] - 4.0 * u[i][j];
      }
    }
    var line: float[20];
    pragma omp parallel_for private(line)
    for i in 1..19 {
      line[0] = 0.0;
      for j in 1..19 {
        line[j] = (rhs[i][j] - 0.3 * line[j - 1]) * 0.5;
      }
      for j in 1..19 {
        u[i][j] = u[i][j] + 0.2 * line[j];
      }
    }
  }
  var norm: float = 0.0;
  pragma omp parallel_for reduction(+: norm)
  for i in 0..20 {
    for j in 0..20 {
      norm = norm + rhs[i][j] * rhs[i][j];
    }
  }
  print("norm", norm);
  print("u", u[5][5], u[12][17]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-bt")
