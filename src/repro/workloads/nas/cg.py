"""Mini CG — conjugate-gradient iteration (sparse matvec + reductions).

Structure from NAS CG's main loop: a sequential CSR matrix build, then an
iteration loop whose ``parallel`` region contains the workshared sparse
matrix-vector product (inner while-loop over a row's nonzeros, reading
``p[colidx[k]]`` through an indirection), a workshared dot-product
``reduction``, and a vector update the original authors left *unannotated*
— the loop the PS-PDG-driven compiler can still pick up but a source-plan-
bound compiler cannot.
"""

NAME = "CG"

SOURCE = """
global rowstart: int[33];
global colidx: int[160];
global aval: float[160];
global p: float[32];
global w: float[32];

func main() {
  var nz: int = 0;
  for i in 0..32 {
    rowstart[i] = nz;
    for d in 0..5 {
      var c: int = i + d - 2;
      if (c >= 0 && c < 32) {
        colidx[nz] = c;
        aval[nz] = 1.0 / float(1 + i + d);
        nz = nz + 1;
      }
    }
    p[i] = 1.0 + float(i) * 0.5;
  }
  rowstart[32] = nz;

  var rho: float = 0.0;
  for it in 0..3 {
    pragma omp parallel
    {
      pragma omp for
      for i in 0..32 {
        var sum: float = 0.0;
        var k: int = rowstart[i];
        var ke: int = rowstart[i + 1];
        while (k < ke) {
          sum = sum + aval[k] * p[colidx[k]];
          k = k + 1;
        }
        w[i] = sum;
      }
      pragma omp for reduction(+: rho)
      for i in 0..32 {
        rho = rho + w[i] * w[i];
      }
      for i in 0..32 {
        p[i] = p[i] + 0.5 * w[i];
      }
    }
  }
  print("rho", rho);
  print("p", p[0], p[31]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-cg")
