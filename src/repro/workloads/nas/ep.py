"""Mini EP — embarrassingly parallel (random-pair counting).

The NAS EP structure: one big ``parallel for`` whose body derives
per-iteration pseudo-randoms (a per-iteration-seeded LCG), classifies the
point, and accumulates counts and coordinate sums through ``reduction``
clauses.  The paper uses EP as the flat case: the programmer's plan is
already near-optimal, every abstraction proves the loop parallel, and the
PS-PDG's job is only to *not lose* any parallelism.
"""

NAME = "EP"

SOURCE = """
func main() {
  var q0: int = 0;
  var q1: int = 0;
  var q2: int = 0;
  var q3: int = 0;
  var sx: float = 0.0;
  var sy: float = 0.0;
  pragma omp parallel_for reduction(+: q0, q1, q2, q3) reduction(+: sx, sy) schedule(static)
  for k in 0..256 {
    var s1: int = (k * 1103515245 + 12345) % 65536;
    var s2: int = (s1 * 1103515245 + 12345) % 65536;
    var x: float = float(s1) / 32768.0 - 1.0;
    var y: float = float(s2) / 32768.0 - 1.0;
    var r: float = x * x + y * y;
    if (r <= 1.0) {
      var bin: int = int(4.0 * r);
      if (bin == 0) { q0 = q0 + 1; }
      if (bin == 1) { q1 = q1 + 1; }
      if (bin == 2) { q2 = q2 + 1; }
      if (bin == 3) { q3 = q3 + 1; }
      sx = sx + x;
      sy = sy + y;
    }
  }
  print("counts", q0, q1, q2, q3);
  print("sums", sx, sy);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-ep")
