"""Mini FT — row-wise FFT-style butterfly passes.

NAS FT applies 1-D FFTs along each dimension; rows are independent, which
the source encodes with worksharing.  The butterfly indexing
(``(k / half) * half * 2 + (k % half)``) is *not affine*, so a sequential
dependence analysis must assume the in-place row updates conflict across
rows — only the worksharing declaration (J&K and PS-PDG) recovers the
row-level parallelism.  A second, fully affine scaling loop (the
``evolve`` step) stays provable for everyone.
"""

NAME = "FT"

SOURCE = """
global re: float[16][16];
global im: float[16][16];

func main() {
  for i in 0..16 {
    for j in 0..16 {
      re[i][j] = float((i * 16 + j) % 9) * 0.3;
      im[i][j] = float((i + j) % 5) * 0.2;
    }
  }
  for it in 0..2 {
    pragma omp parallel_for
    for row in 0..16 {
      var half: int = 8;
      while (half >= 1) {
        for k in 0..8 {
          var a: int = (k / half) * half * 2 + (k % half);
          var b: int = a + half;
          var tr: float = re[row][a] - re[row][b];
          var ti: float = im[row][a] - im[row][b];
          re[row][a] = re[row][a] + re[row][b];
          im[row][a] = im[row][a] + im[row][b];
          re[row][b] = tr * 0.7 - ti * 0.7;
          im[row][b] = tr * 0.7 + ti * 0.7;
        }
        half = half / 2;
      }
    }
    pragma omp parallel_for
    for r2 in 0..16 {
      for c in 0..16 {
        re[r2][c] = re[r2][c] * 0.99;
        im[r2][c] = im[r2][c] * 0.99;
      }
    }
  }
  print("re", re[0][0], re[7][9]);
  print("im", im[3][4], im[15][15]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-ft")
