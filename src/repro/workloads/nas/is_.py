"""Mini IS — integer sort (bucket ranking), the paper's running example.

Structure mirrors NAS IS's hot kernel (paper Fig. 3):

* a sequential key generator (``create_seq``);
* a time-step loop around an ``omp parallel`` region containing
  - loop 1: per-thread zeroing of the **threadprivate** work buffer
    ``prv`` (not workshared: every thread initializes its own copy),
  - loop 2: workshared ranking ``prv[key[j]] += 1`` (indirect index —
    race-free only because ``prv`` is threadprivate; no sequential
    analysis can prove this),
  - loop 3: per-thread prefix sum over ``prv`` (a true recurrence),
  - loop 4: merge into the shared ``key_buff`` under ``omp critical``.

What each abstraction can do with this is exactly the paper's argument:
the PDG is stuck behind the indirect index and the critical; J&K recovers
only the loops the developer workshared; the PS-PDG knows ``prv`` is
privatizable, the critical is orderless, and loop 4 is independent.
"""

NAME = "IS"

SOURCE = """
global key: int[512];
global prv: int[64];
global key_buff: int[64];
pragma omp threadprivate(prv)

func main() {
  var seed: int = 314159;
  for g in 0..512 {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    key[g] = seed % 64;
  }
  for t in 0..3 {
    pragma omp parallel
    {
      for i in 0..64 {
        prv[i] = 0;
      }
      pragma omp for
      for j in 0..512 {
        var k: int = key[j];
        prv[k] = prv[k] + 1;
      }
      for i in 1..64 {
        prv[i] = prv[i] + prv[i - 1];
      }
      pragma omp critical
      {
        for i in 0..64 {
          key_buff[i] = key_buff[i] + prv[i];
        }
      }
    }
  }
  print("checksum", key_buff[0], key_buff[32], key_buff[63]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-is")
