"""Mini LU — SSOR wavefront sweep.

NAS LU's lower/upper solves carry dependences along both grid dimensions;
the classic parallelization sweeps anti-diagonals: the wavefront index
``k`` advances sequentially while the elements *on* each anti-diagonal are
independent — something the developer declares with worksharing but that
no sequential analysis proves (the second index is computed, hence
non-affine to the analysis).  A workshared residual ``reduction`` follows.
"""

NAME = "LU"

SOURCE = """
global u: float[20][20];

func main() {
  for i in 0..20 {
    for j in 0..20 {
      u[i][j] = float((i * 3 + j * 7) % 19) * 0.1;
    }
  }
  var rsd: float = 0.0;
  for it in 0..2 {
    pragma omp parallel
    {
      for k in 2..38 {
        pragma omp for
        for i in 1..19 {
          var j: int = k - i;
          if (j >= 1 && j < 19) {
            u[i][j] = u[i][j] + 0.2 * (u[i - 1][j] + u[i][j - 1]);
          }
        }
      }
      pragma omp for reduction(+: rsd)
      for i in 0..20 {
        for j in 0..20 {
          rsd = rsd + u[i][j] * u[i][j];
        }
      }
    }
  }
  print("rsd", rsd);
  print("u", u[10][10], u[18][1]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-lu")
