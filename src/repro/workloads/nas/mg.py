"""Mini MG — multigrid smoother (plane-wise relaxation with line buffers).

NAS MG's smoother (``psinv``/``resid``) iterates over planes, computing a
line of intermediate values into small *private* buffers (``r1``, ``r2``)
before updating the grid.  The buffer is written every plane iteration, so
a sequential dependence analysis sees loop-carried WAW/RAW on it — and the
``private`` clause is *data* semantics that worksharing-only dependence
improvement (J&K) cannot represent.  The paper calls MG out for exactly
this: "utilizing the PDG with workshare improved loop dependence analysis
is insufficient to match the PS-PDG, as seen in the MG benchmark".
"""

NAME = "MG"

SOURCE = """
global v: float[256];
global r: float[256];

func main() {
  for i in 0..256 {
    r[i] = float((i * 13) % 17) * 0.1;
  }
  for it in 0..3 {
    var t: float[16];
    pragma omp parallel_for private(t)
    for plane in 0..16 {
      for j in 0..16 {
        t[j] = 0.25 * (r[plane * 16 + j] + r[(plane * 16 + j + 1) % 256]);
      }
      for j in 0..16 {
        v[plane * 16 + j] = v[plane * 16 + j] + t[j];
      }
    }
    pragma omp parallel_for
    for m in 0..256 {
      r[m] = r[m] * 0.95 + v[m] * 0.05;
    }
  }
  print("v", v[0], v[128], v[255]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-mg")
