"""Mini SP — scalar-pentadiagonal solver skeleton.

Like BT but with fully affine in-place sweeps (no private line buffer), so
worksharing-only dependence improvement does nearly as well as the
PS-PDG — except for the per-line *atomic* bin update (tracking per-band
maxima through a critical), whose orderless nature only the PS-PDG
represents.
"""

NAME = "SP"

SOURCE = """
global u: float[20][20];
global res: float[20][20];
global binmax: float[4];

func main() {
  for i in 0..20 {
    for j in 0..20 {
      u[i][j] = float((i * 5 + j * 11) % 13) * 0.1;
    }
  }
  for it in 0..2 {
    pragma omp parallel_for
    for i in 1..19 {
      for j in 1..19 {
        res[i][j] = u[i][j - 1] + u[i][j + 1] + u[i - 1][j] + u[i + 1][j] - 4.0 * u[i][j];
      }
    }
    pragma omp parallel_for
    for i in 1..19 {
      for j in 1..19 {
        u[i][j] = u[i][j] + 0.25 * res[i][j];
      }
      pragma omp critical
      { binmax[i % 4] = max(binmax[i % 4], res[i][10]); }
    }
  }
  print("binmax", binmax[0], binmax[1], binmax[2], binmax[3]);
  print("u", u[9][9], u[14][3]);
}
"""


def build_module():
    from repro.frontend import compile_source

    return compile_source(SOURCE, "nas-sp")
